//! The in-memory JSON value tree shared by `serde` (the derive target)
//! and `serde_json` (the text layer).

use std::fmt;
use std::ops::Index;

/// A JSON number. Integers and floats are kept apart so integer values
/// print without a trailing `.0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A signed integer (covers every integer the workspace serializes).
    Int(i128),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// Wrap an integer.
    pub fn from_i128(n: i128) -> Self {
        Number::Int(n)
    }

    /// Wrap a float.
    pub fn from_f64(n: f64) -> Self {
        Number::Float(n)
    }

    /// This number as `f64`.
    pub fn as_f64(self) -> f64 {
        match self {
            Number::Int(n) => n as f64,
            Number::Float(n) => n,
        }
    }

    /// This number as `i64`, when integral and in range.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::Int(n) => i64::try_from(n).ok(),
            Number::Float(n) if n.fract() == 0.0 && n.abs() < 9e15 => Some(n as i64),
            Number::Float(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::Int(n) => write!(f, "{n}"),
            Number::Float(n) if n.is_finite() => write!(f, "{n}"),
            // JSON has no Inf/NaN; mirror serde_json's lossy `null`.
            Number::Float(_) => f.write_str("null"),
        }
    }
}

/// An owned JSON document tree. Objects preserve insertion order (like
/// `serde_json` with its default map), which keeps derived field order in
/// the rendered text.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric payload as `i64`, if this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The bool payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object member by key, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// True when this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn write_escaped(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn render(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => Self::write_escaped(s, out),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if let Some(level) = indent {
                        out.push('\n');
                        out.push_str(&"  ".repeat(level + 1));
                    }
                    item.render(out, indent.map(|l| l + 1));
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level));
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if let Some(level) = indent {
                        out.push('\n');
                        out.push_str(&"  ".repeat(level + 1));
                    }
                    Self::write_escaped(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.render(out, indent.map(|l| l + 1));
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level));
                }
                out.push('}');
            }
        }
    }

    /// Compact single-line JSON text.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, None);
        out
    }

    /// Two-space-indented pretty JSON text.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(0));
        out
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact_string())
    }
}

/// Missing members index as `Null`, mirroring `serde_json`'s shared-index
/// behaviour so `value["absent"]` never panics.
static NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

macro_rules! eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
eq_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}
