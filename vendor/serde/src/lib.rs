//! Offline shim for `serde`: a value-model serialization framework
//! covering exactly what this workspace uses — `#[derive(Serialize,
//! Deserialize)]` on plain structs and unit enums, serialized through an
//! in-memory [`Value`] tree that `serde_json` renders as JSON text.
//! See `vendor/README.md` for the vendoring policy.

pub use serde_derive::{Deserialize, Serialize};

mod value;

pub use value::{Number, Value};

/// A serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Build an error from any displayable message.
    pub fn msg(m: impl std::fmt::Display) -> Self {
        Self(m.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// This value as a [`Value`] tree.
    fn serialize_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse `v` into this type.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

// ---- Serialize impls for the primitive universe the workspace uses ----

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::from_i128(*self as i128))
            }
        }
    )*};
}
ser_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::from_f64(f64::from(*self)))
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.serialize_value()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

// ---- Deserialize impls ----

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::msg(format!("expected integer, got {v}")))?;
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::msg(format!("expected number, got {v}")))
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other}"))),
        }
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(Error::msg(format!("expected array, got {other}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

macro_rules! de_tuple {
    ($(($len:literal; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($t::deserialize_value(&items[$n])?,)+))
                    }
                    other => Err(Error::msg(format!(
                        "expected {}-tuple, got {other}", $len
                    ))),
                }
            }
        }
    )*};
}
de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
