//! Offline shim for `serde_json`: JSON text rendering and parsing over
//! the vendored `serde` value model. Covers `to_string` /
//! `to_string_pretty` / `from_str` / [`Value`] — the full surface this
//! workspace consumes. See `vendor/README.md` for the vendoring policy.

pub use serde::{Error, Number, Value};

use serde::{Deserialize, Serialize};

/// Serialize `value` as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.serialize_value().to_compact_string())
}

/// Serialize `value` as two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.serialize_value().to_pretty_string())
}

/// Parse JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing data at byte {}", p.pos)));
    }
    T::deserialize_value(&v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected ',' or ']', got {other:?} at byte {}",
                        self.pos
                    )));
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected ',' or '}}', got {other:?} at byte {}",
                        self.pos
                    )));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "invalid escape \\{}",
                                other as char
                            )));
                        }
                    }
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let s = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(s, 16).map_err(|_| Error::msg("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(|n| Value::Number(Number::from_f64(n)))
                .map_err(|_| Error::msg(format!("invalid number {text:?}")))
        } else {
            text.parse::<i128>()
                .map(|n| Value::Number(Number::from_i128(n)))
                .map_err(|_| Error::msg(format!("invalid number {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_document() {
        let text = r#"{"name": "néws", "k": [1, 2.5, -3], "ok": true, "none": null}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["name"], "néws");
        assert_eq!(v["k"][0], 1);
        assert_eq!(v["k"][1], 2.5);
        assert_eq!(v["k"][2], -3);
        assert_eq!(v["ok"], true);
        assert!(v["none"].is_null());
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
        let back: Value = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_format_matches_serde_json_style() {
        let v = Value::Object(vec![
            ("corpus".into(), Value::String("CNN".into())),
            ("ratio".into(), Value::Number(Number::from_f64(0.975))),
            ("queries".into(), Value::Number(Number::from_i128(60))),
        ]);
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\"corpus\": \"CNN\""), "{text}");
        assert!(text.contains("0.975"), "{text}");
        assert!(text.contains("\"queries\": 60"), "{text}");
    }

    #[test]
    fn typed_from_str() {
        let pairs: Vec<(usize, f64)> = from_str("[[5, 0.9], [10, 0.8]]").unwrap();
        assert_eq!(pairs, vec![(5, 0.9), (10, 0.8)]);
        let s: String = from_str("\"hi\\n\"").unwrap();
        assert_eq!(s, "hi\n");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2") .is_err());
        assert!(from_str::<Value>("nope").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
    }
}
