//! Offline shim for `crossbeam`: the scoped-thread API
//! (`crossbeam::thread::scope`), implemented over `std::thread::scope`.
//! Matches crossbeam's contract — child panics surface as `Err` from
//! `scope` rather than unwinding through the caller. See
//! `vendor/README.md` for the vendoring policy.

pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result of a scope or a joined scoped thread.
    pub type Result<T> = std::thread::Result<T>;

    /// Handle to a spawned scoped thread.
    pub type ScopedJoinHandle<'scope, T> = std::thread::ScopedJoinHandle<'scope, T>;

    /// The scope passed to the `scope` closure and to spawned threads.
    #[derive(Clone, Copy, Debug)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope again so
        /// spawned threads can spawn siblings, as in crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Run `f` with a scope in which borrowing, non-`'static` threads can
    /// be spawned; all are joined before this returns. A panic in any
    /// child (or in `f` itself) is returned as `Err` with its payload.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_can_borrow() {
        let data = [1, 2, 3, 4];
        let total: i32 = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<i32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn child_panic_becomes_err() {
        let r = crate::thread::scope(|s| {
            s.spawn(|_| panic!("child died"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn threads_can_spawn_siblings() {
        let n = crate::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
