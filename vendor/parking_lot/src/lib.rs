//! Offline shim for `parking_lot`: `Mutex`/`RwLock` with parking_lot's
//! no-poisoning, guard-returning API, implemented over `std::sync`. The
//! perf characteristics differ from the real crate, but the semantics the
//! workspace relies on (non-poisoning locks, `read`/`write`/`lock`
//! returning guards directly) are identical. See `vendor/README.md`.

use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that does not poison on panic.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that does not poison on panic.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire the exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire the exclusive write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn locks_do_not_poison() {
        let rw = std::sync::Arc::new(RwLock::new(0));
        let rw2 = rw.clone();
        let _ = std::thread::spawn(move || {
            let _g = rw2.write();
            panic!("poison attempt");
        })
        .join();
        *rw.write() = 7;
        assert_eq!(*rw.read(), 7);
    }
}
