//! Offline `#[derive(Serialize, Deserialize)]` for the vendored serde
//! shim. Hand-parses the item token stream (no `syn`/`quote` available
//! offline) and supports exactly the shapes this workspace derives on:
//! named structs, tuple structs, and unit-variant enums — all without
//! generics. Anything else produces a `compile_error!`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What kind of item we are deriving for.
enum Item {
    /// `struct Name { field, ... }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct Name(T, ...);` with the field count.
    TupleStruct { name: String, arity: usize },
    /// `enum Name { A, B, ... }` (unit variants only).
    UnitEnum { name: String, variants: Vec<String> },
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter = input.into_iter().peekable();
    // Skip attributes (`#[...]`) and visibility (`pub`, `pub(crate)`).
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // `(crate)` etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err("generic types are not supported by the vendored serde derive".into());
        }
    }
    match (kind.as_str(), iter.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream())?,
            })
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Ok(Item::TupleStruct {
                name,
                arity: count_tuple_fields(g.stream()),
            })
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Item::UnitEnum {
                name,
                variants: parse_unit_variants(g.stream())?,
            })
        }
        (k, other) => Err(format!("unsupported item shape: {k} followed by {other:?}")),
    }
}

/// Field names of `{ attr* vis? name: Ty, ... }`. Commas inside generic
/// arguments are skipped by tracking `<`/`>` depth (parenthesised types
/// arrive as single token groups already).
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tt) = iter.next() else { break };
        let TokenTree::Ident(field) = tt else {
            return Err(format!("expected field name, got {tt:?}"));
        };
        fields.push(field.to_string());
        // Skip `: Ty` up to the next top-level comma.
        let mut angle = 0i32;
        for tt in iter.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
    }
    Ok(fields)
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut arity = 0;
    let mut angle = 0i32;
    let mut in_field = false;
    for tt in body {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => in_field = false,
            _ => {
                if !in_field {
                    arity += 1;
                    in_field = true;
                }
            }
        }
    }
    arity
}

fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                _ => break,
            }
        }
        let Some(tt) = iter.next() else { break };
        let TokenTree::Ident(variant) = tt else {
            return Err(format!("expected variant name, got {tt:?}"));
        };
        variants.push(variant.to_string());
        match iter.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(other) => {
                return Err(format!(
                    "only unit enum variants are supported by the vendored serde derive, \
                     found {other:?} after variant"
                ));
            }
        }
    }
    Ok(variants)
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derive `serde::Serialize` (value-model shim).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return error(&e),
    };
    let (name, body) = match &item {
        Item::NamedStruct { name, fields } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::serialize_value(&self.{f}))"
                    )
                })
                .collect();
            (
                name,
                format!("::serde::Value::Object(<[_]>::into_vec(::std::boxed::Box::new([{}])))",
                    pairs.join(", ")),
            )
        }
        Item::TupleStruct { name, arity: 1 } => {
            (name, "::serde::Serialize::serialize_value(&self.0)".to_string())
        }
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            (
                name,
                format!("::serde::Value::Array(<[_]>::into_vec(::std::boxed::Box::new([{}])))",
                    items.join(", ")),
            )
        }
        Item::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::String(\
                         ::std::string::String::from({v:?}))"
                    )
                })
                .collect();
            (name, format!("match *self {{ {} }}", arms.join(", ")))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

/// Derive `serde::Deserialize` (value-model shim).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return error(&e),
    };
    let (name, body) = match &item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize_value(\
                         v.get({f:?}).unwrap_or(&::serde::Value::Null))?"
                    )
                })
                .collect();
            (
                name,
                format!("::std::result::Result::Ok({name} {{ {} }})", inits.join(", ")),
            )
        }
        Item::TupleStruct { name, arity: 1 } => (
            name,
            format!(
                "::std::result::Result::Ok({name}(\
                 ::serde::Deserialize::deserialize_value(v)?))"
            ),
        ),
        Item::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::deserialize_value(\
                         &v[{i}usize])?"
                    )
                })
                .collect();
            (
                name,
                format!("::std::result::Result::Ok({name}({}))", inits.join(", ")),
            )
        }
        Item::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("::std::option::Option::Some({v:?}) => \
                    ::std::result::Result::Ok({name}::{v})"))
                .collect();
            (
                name,
                format!(
                    "match v.as_str() {{ {}, _ => ::std::result::Result::Err(\
                     ::serde::Error::msg(::std::format!(\
                     \"invalid {name} variant: {{v}}\"))) }}",
                    arms.join(", ")
                ),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
