//! Offline shim for the `rand` crate: exactly the API surface this
//! workspace consumes (`RngCore` + `Error`), so the build needs no
//! registry access. See `vendor/README.md` for the vendoring policy.

/// Error type produced by fallible RNG operations. Infallible here — the
/// workspace only uses deterministic in-memory generators.
#[derive(Debug)]
pub struct Error {
    _private: (),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator interface, mirroring `rand::RngCore`.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible [`fill_bytes`](Self::fill_bytes).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}
