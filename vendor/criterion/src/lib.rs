//! Offline shim for `criterion`: a plain wall-clock micro-benchmark
//! harness with criterion's registration API (`criterion_group!` /
//! `criterion_main!` / `bench_function` / `Bencher::iter`). No
//! statistical analysis — each benchmark reports mean time per
//! iteration over an adaptively sized run. See `vendor/README.md`.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark registry/driver handed to every target function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks (`group/name` reporting).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside this group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{name}", self.name));
        self
    }

    /// Finish the group (reporting happens eagerly; kept for API parity).
    pub fn finish(self) {}
}

/// Times a closure over an adaptively chosen iteration count.
#[derive(Debug, Default)]
pub struct Bencher {
    result: Option<(Duration, u64)>,
}

/// Minimum measured wall-clock per benchmark.
const TARGET: Duration = Duration::from_millis(200);

impl Bencher {
    /// Measure `f`, growing the iteration count until the run is long
    /// enough to time reliably.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET || iters >= 1 << 24 {
                self.result = Some((elapsed, iters));
                return;
            }
            // Aim past the target with some headroom.
            let scale = (TARGET.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)) * 1.5;
            iters = ((iters as f64 * scale) as u64).clamp(iters + 1, 1 << 24);
        }
    }

    fn report(&self, name: &str) {
        match self.result {
            Some((elapsed, iters)) => {
                let per = elapsed.as_secs_f64() / iters as f64;
                println!("bench {name:<40} {:>12} /iter ({iters} iters)", fmt_time(per));
            }
            None => println!("bench {name:<40} (no measurement)"),
        }
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Register benchmark target functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.bench_function("inner", |b| b.iter(|| black_box(2 * 2)));
        g.finish();
    }
}
