//! The [`Strategy`] trait and the combinators/instances the workspace's
//! property tests use: integer and float ranges, tuples, `Just`,
//! `any::<T>()`, `prop_map`, `prop_flat_map`, and regex-subset string
//! literals.

use std::marker::PhantomData;
use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` derives
    /// from it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, wide-magnitude coverage.
        let mag = rng.unit() * 1e12;
        if rng.next() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                if self.start >= self.end {
                    return self.start;
                }
                let span = (self.end - self.start) as u64;
                self.start + (rng.below(span) as $t)
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize);

macro_rules! range_sint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                if self.start >= self.end {
                    return self.start;
                }
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}
range_sint!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// String literals are regex-subset strategies, as in proptest:
/// `"[a-c]{1,3}"` generates matching strings.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}
