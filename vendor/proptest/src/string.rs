//! Regex-subset string generation.
//!
//! Supports the pattern features this workspace's tests use: literal
//! characters, character classes (`[a-zA-Z ]`), groups, the `\PC`
//! printable-character escape, and the quantifiers `{m}`, `{m,n}`, `*`,
//! `+`, `?`. Unsupported syntax panics — better a loud failure than a
//! silently wrong distribution.

use crate::test_runner::TestRng;

/// Cap for unbounded (`*` / `+`) repetition.
const STAR_MAX: u32 = 32;

#[derive(Debug, Clone)]
enum Atom {
    /// A literal character.
    Literal(char),
    /// A character class as inclusive ranges.
    Class(Vec<(char, char)>),
    /// `\PC`: any non-control character (ASCII + a sprinkle of wider
    /// Unicode so byte-offset/char-boundary bugs get exercised).
    Printable,
    /// A parenthesised group.
    Group(Vec<Piece>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

/// Generate one string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0;
    let pieces = parse_seq(&chars, &mut pos, false);
    assert!(
        pos == chars.len(),
        "unsupported regex pattern {pattern:?} (stopped at char {pos})"
    );
    let mut out = String::new();
    emit_seq(&pieces, rng, &mut out);
    out
}

fn parse_seq(chars: &[char], pos: &mut usize, in_group: bool) -> Vec<Piece> {
    let mut pieces = Vec::new();
    while *pos < chars.len() {
        let c = chars[*pos];
        let atom = match c {
            ')' if in_group => {
                *pos += 1;
                return pieces;
            }
            '(' => {
                *pos += 1;
                Atom::Group(parse_seq(chars, pos, true))
            }
            '[' => {
                *pos += 1;
                Atom::Class(parse_class(chars, pos))
            }
            '\\' => {
                *pos += 1;
                match chars.get(*pos) {
                    Some('P') => {
                        // `\PC`: not-a-control-character.
                        assert!(
                            chars.get(*pos + 1) == Some(&'C'),
                            "unsupported escape in regex strategy"
                        );
                        *pos += 2;
                        Atom::Printable
                    }
                    Some(&e @ ('\\' | '.' | '(' | ')' | '[' | ']' | '{' | '}' | '*' | '+'
                    | '?' | '|')) => {
                        *pos += 1;
                        Atom::Literal(e)
                    }
                    other => panic!("unsupported escape \\{other:?} in regex strategy"),
                }
            }
            '.' => {
                *pos += 1;
                Atom::Printable
            }
            c => {
                assert!(
                    !"|^$".contains(c),
                    "unsupported regex feature {c:?} in strategy pattern"
                );
                *pos += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = parse_quantifier(chars, pos);
        pieces.push(Piece { atom, min, max });
    }
    assert!(!in_group, "unterminated group in regex strategy");
    pieces
}

fn parse_quantifier(chars: &[char], pos: &mut usize) -> (u32, u32) {
    match chars.get(*pos) {
        Some('*') => {
            *pos += 1;
            (0, STAR_MAX)
        }
        Some('+') => {
            *pos += 1;
            (1, STAR_MAX)
        }
        Some('?') => {
            *pos += 1;
            (0, 1)
        }
        Some('{') => {
            *pos += 1;
            let mut min = String::new();
            while chars[*pos].is_ascii_digit() {
                min.push(chars[*pos]);
                *pos += 1;
            }
            let min: u32 = min.parse().expect("digits in {m,n}");
            let max = if chars[*pos] == ',' {
                *pos += 1;
                let mut max = String::new();
                while chars[*pos].is_ascii_digit() {
                    max.push(chars[*pos]);
                    *pos += 1;
                }
                max.parse().expect("digits in {m,n}")
            } else {
                min
            };
            assert!(chars[*pos] == '}', "unterminated {{m,n}} quantifier");
            *pos += 1;
            (min, max)
        }
        _ => (1, 1),
    }
}

fn parse_class(chars: &[char], pos: &mut usize) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    assert!(
        chars.get(*pos) != Some(&'^'),
        "negated classes unsupported in regex strategy"
    );
    while *pos < chars.len() && chars[*pos] != ']' {
        let lo = chars[*pos];
        *pos += 1;
        if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1).is_some_and(|&c| c != ']') {
            let hi = chars[*pos + 1];
            *pos += 2;
            ranges.push((lo, hi));
        } else {
            ranges.push((lo, lo));
        }
    }
    assert!(chars.get(*pos) == Some(&']'), "unterminated class");
    *pos += 1;
    ranges
}

/// The `\PC` sample pool: mostly ASCII printable, plus multi-byte chars
/// (and a few astral ones) so UTF-8 boundary handling gets stressed.
const WIDE: &[char] = &[
    'é', 'ß', 'ñ', 'α', 'Ω', 'د', 'あ', '中', '한', '–', '“', '”', '…', '€', '🦀', '𝕊',
];

fn emit_seq(pieces: &[Piece], rng: &mut TestRng, out: &mut String) {
    for piece in pieces {
        let span = piece.max - piece.min + 1;
        let n = piece.min + rng.below(u64::from(span)) as u32;
        for _ in 0..n {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(ranges) => {
                    let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
                    let span = (hi as u32) - (lo as u32) + 1;
                    let c = char::from_u32(lo as u32 + rng.below(u64::from(span)) as u32)
                        .unwrap_or(lo);
                    out.push(c);
                }
                Atom::Printable => {
                    if rng.below(8) == 0 {
                        out.push(WIDE[rng.below(WIDE.len() as u64) as usize]);
                    } else {
                        // ASCII 0x20..=0x7E.
                        out.push(char::from(0x20 + rng.below(0x5f) as u8));
                    }
                }
                Atom::Group(inner) => emit_seq(inner, rng, out),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(42)
    }

    #[test]
    fn class_with_quantifier() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_matching("[a-c]{1,3}", &mut r);
            assert!((1..=3).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn optional_group_with_space() {
        let mut r = rng();
        let mut saw_two_words = false;
        for _ in 0..300 {
            let s = generate_matching("[a-c]{1,3}( [a-c]{1,3})?", &mut r);
            let words: Vec<&str> = s.split(' ').collect();
            assert!(words.len() <= 2, "{s:?}");
            saw_two_words |= words.len() == 2;
            assert!(words.iter().all(|w| !w.is_empty()), "{s:?}");
        }
        assert!(saw_two_words, "optional group never expanded");
    }

    #[test]
    fn printable_escape_has_no_controls_and_valid_boundaries() {
        let mut r = rng();
        let mut saw_multibyte = false;
        for _ in 0..200 {
            let s = generate_matching("\\PC{0,40}", &mut r);
            assert!(s.chars().count() <= 40);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
            saw_multibyte |= s.len() > s.chars().count();
        }
        assert!(saw_multibyte, "printable pool never produced multi-byte");
    }

    #[test]
    fn star_is_bounded() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate_matching("\\PC*", &mut r);
            assert!(s.chars().count() <= STAR_MAX as usize);
        }
    }

    #[test]
    fn alpha_space_class() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate_matching("[a-zA-Z ]{0,80}", &mut r);
            assert!(s.chars().all(|c| c.is_ascii_alphabetic() || c == ' '));
        }
    }
}
