//! Offline shim for `proptest`: a deterministic property-test runner
//! with the strategy combinators, range/collection/regex-string
//! strategies, and macros this workspace's property tests use. No
//! shrinking — a failing case reports its generated inputs instead. See
//! `vendor/README.md` for the vendoring policy.

pub mod strategy;
pub mod string;
pub mod test_runner;

/// The `prop::` namespace (`prop::collection::vec(...)` etc.).
pub mod prop {
    pub use crate::collection;
}

/// Collection strategies.
pub mod collection {
    use std::collections::BTreeSet;
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size drawn from
    /// `size` (duplicates collapse, so sets may come out smaller).
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.usize_in(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.usize_in(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test file imports.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert inside a property test; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Discard the current case (the runner retries with fresh inputs).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            $crate::test_runner::reject();
        }
    };
}

/// Define property tests: each `fn name(binding in strategy, ...) { .. }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run($cfg, stringify!($name), |__rng, __inputs| {
                $(
                    let __value = $crate::strategy::Strategy::generate(&($strat), __rng);
                    __inputs.push(::std::format!(
                        "{} = {:?}", stringify!($pat), &__value
                    ));
                    let $pat = __value;
                )+
                $body
            });
        }
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
}
