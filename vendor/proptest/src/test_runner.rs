//! The deterministic case runner behind the `proptest!` macro.

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases to generate per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Marker payload thrown by `prop_assume!` rejections.
#[derive(Debug, Clone, Copy)]
pub struct AssumeRejected;

/// Discard the current case (used by `prop_assume!`).
pub fn reject() -> ! {
    std::panic::panic_any(AssumeRejected);
}

/// The deterministic generator handed to strategies: splitmix64, seeded
/// per `(test name, case index)` so failures reproduce exactly.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with an explicit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 random bits (splitmix64).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; returns 0 for `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.next() % bound
    }

    /// Uniform draw from a `usize` range; `start` when empty.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        if range.start >= range.end {
            return range.start;
        }
        range.start + self.below((range.end - range.start) as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn seed_for(name: &str, case: u64) -> u64 {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ case.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// Execute `case_fn` for each configured case. A `prop_assume!`
/// rejection retries with the next seed (bounded); any other panic
/// reports the test name, case seed, and generated inputs, then
/// propagates so the harness records the failure.
pub fn run(
    config: ProptestConfig,
    name: &str,
    mut case_fn: impl FnMut(&mut TestRng, &mut Vec<String>),
) {
    let mut inputs: Vec<String> = Vec::new();
    let mut accepted: u64 = 0;
    let max_attempts = u64::from(config.cases) * 16 + 100;
    let mut attempt: u64 = 0;
    while accepted < u64::from(config.cases) {
        assert!(
            attempt < max_attempts,
            "proptest '{name}': too many prop_assume! rejections \
             ({accepted}/{} cases after {attempt} attempts)",
            config.cases
        );
        let seed = seed_for(name, attempt);
        attempt += 1;
        inputs.clear();
        let mut rng = TestRng::new(seed);
        match catch_unwind(AssertUnwindSafe(|| case_fn(&mut rng, &mut inputs))) {
            Ok(()) => accepted += 1,
            Err(payload) if payload.is::<AssumeRejected>() => continue,
            Err(payload) => {
                eprintln!("proptest '{name}' failed (case seed {seed:#x}); inputs:");
                for line in &inputs {
                    eprintln!("    {line}");
                }
                resume_unwind(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_is_deterministic() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for out in [&mut a, &mut b] {
            run(ProptestConfig::with_cases(16), "det", |rng, _| {
                out.push(rng.next());
            });
        }
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn rejections_retry_with_fresh_seeds() {
        let mut seen = 0u32;
        run(ProptestConfig::with_cases(8), "retry", |rng, _| {
            let v = rng.below(4);
            if v == 0 {
                reject();
            }
            seen += 1;
            assert!(v > 0);
        });
        assert_eq!(seen, 8);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_propagate() {
        run(ProptestConfig::with_cases(4), "fail", |_, inputs| {
            inputs.push("x = 1".into());
            panic!("boom");
        });
    }
}
