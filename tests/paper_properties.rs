//! Property-based integration tests of the paper's formal claims, run on
//! randomly generated graphs and label sets (proptest).

use proptest::prelude::*;

use newslink::embed::{compactness_cmp, find_lcag, find_tree_embedding, SearchConfig};
use newslink::kg::{EntityType, GraphBuilder, KnowledgeGraph, LabelIndex, NodeId};
use newslink::util::FxHashMap;

/// Build a random connected graph: a spanning chain plus random extra
/// edges. Node labels are `n0..n{n-1}` (unique, so `S(l)` is a singleton).
fn random_graph(n: usize, extra_edges: &[(usize, usize)]) -> KnowledgeGraph {
    let mut b = GraphBuilder::new();
    let nodes: Vec<NodeId> = (0..n)
        .map(|i| b.add_node(&format!("n{i}"), EntityType::Gpe))
        .collect();
    for w in nodes.windows(2) {
        b.add_edge(w[0], w[1], "chain", 1);
    }
    for &(u, v) in extra_edges {
        let (u, v) = (u % n, v % n);
        if u != v {
            b.add_edge(nodes[u], nodes[v], "extra", 1);
        }
    }
    b.freeze()
}

/// All-pairs BFS distance from `src` in the bidirected graph.
fn bfs(graph: &KnowledgeGraph, src: NodeId) -> FxHashMap<NodeId, u32> {
    let mut dist = FxHashMap::default();
    dist.insert(src, 0);
    let mut q = std::collections::VecDeque::from([src]);
    while let Some(v) = q.pop_front() {
        let d = dist[&v];
        for e in graph.neighbors(v) {
            dist.entry(e.to).or_insert_with(|| {
                q.push_back(e.to);
                d + 1
            });
        }
    }
    dist
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lemma 1: `G*` has the smallest depth over all common ancestor
    /// graphs — i.e. its depth equals min over roots of max label→root
    /// distance (verified against brute-force BFS).
    #[test]
    fn lcag_depth_is_optimal(
        n in 3usize..24,
        extra in prop::collection::vec((0usize..24, 0usize..24), 0..12),
        picks in prop::collection::vec(0usize..24, 2..5),
    ) {
        let g = random_graph(n, &extra);
        let labels: Vec<String> = {
            let mut v: Vec<usize> = picks.iter().map(|p| p % n).collect();
            v.sort_unstable();
            v.dedup();
            v.into_iter().map(|i| format!("n{i}")).collect()
        };
        prop_assume!(labels.len() >= 2);
        let idx = LabelIndex::build(&g);
        let e = find_lcag(&g, &idx, &labels, &SearchConfig::default()).unwrap();

        // Brute force: per label BFS, min over roots of max distance.
        let dists: Vec<FxHashMap<NodeId, u32>> = labels
            .iter()
            .map(|l| bfs(&g, idx.exact(l).next().expect("label resolves")))
            .collect();
        let best = g
            .nodes()
            .map(|r| dists.iter().map(|d| d[&r]).max().unwrap())
            .min()
            .unwrap();
        prop_assert_eq!(e.depth(), best, "depth not optimal");
    }

    /// The full compactness key of `G*` is lexicographically minimal over
    /// all roots (Definition 5 exactness, not just depth).
    #[test]
    fn lcag_key_is_lexicographically_minimal(
        n in 3usize..20,
        extra in prop::collection::vec((0usize..20, 0usize..20), 0..10),
        picks in prop::collection::vec(0usize..20, 2..4),
    ) {
        let g = random_graph(n, &extra);
        let labels: Vec<String> = {
            let mut v: Vec<usize> = picks.iter().map(|p| p % n).collect();
            v.sort_unstable();
            v.dedup();
            v.into_iter().map(|i| format!("n{i}")).collect()
        };
        prop_assume!(labels.len() >= 2);
        let idx = LabelIndex::build(&g);
        let e = find_lcag(&g, &idx, &labels, &SearchConfig::default()).unwrap();
        let got = e.compactness_key();

        let dists: Vec<FxHashMap<NodeId, u32>> = labels
            .iter()
            .map(|l| bfs(&g, idx.exact(l).next().expect("label resolves")))
            .collect();
        for r in g.nodes() {
            let mut key: Vec<u32> = dists.iter().map(|d| d[&r]).collect();
            key.sort_unstable_by(|a, b| b.cmp(a));
            prop_assert_ne!(
                compactness_cmp(&key, &got),
                std::cmp::Ordering::Less,
                "root {:?} strictly more compact than returned G*", r
            );
        }
    }

    /// Lemma 2: any two nodes of `G*` are within `2·d(G*)` of each other.
    #[test]
    fn lemma2_bound_holds(
        n in 3usize..20,
        extra in prop::collection::vec((0usize..20, 0usize..20), 0..10),
        picks in prop::collection::vec(0usize..20, 2..4),
    ) {
        let g = random_graph(n, &extra);
        let labels: Vec<String> = {
            let mut v: Vec<usize> = picks.iter().map(|p| p % n).collect();
            v.sort_unstable();
            v.dedup();
            v.into_iter().map(|i| format!("n{i}")).collect()
        };
        prop_assume!(labels.len() >= 2);
        let idx = LabelIndex::build(&g);
        let e = find_lcag(&g, &idx, &labels, &SearchConfig::default()).unwrap();
        let bound = 2 * e.depth();
        for &a in &e.nodes {
            let d = bfs(&g, a);
            for &b in &e.nodes {
                prop_assert!(d[&b] <= bound);
            }
        }
    }

    /// The tree embedding is always a sub-structure: no more nodes than
    /// `G*` for the same label set, and at most |nodes|-1 edges.
    #[test]
    fn tree_is_never_wider_than_lcag(
        n in 3usize..20,
        extra in prop::collection::vec((0usize..20, 0usize..20), 0..10),
        picks in prop::collection::vec(0usize..20, 2..4),
    ) {
        let g = random_graph(n, &extra);
        let labels: Vec<String> = {
            let mut v: Vec<usize> = picks.iter().map(|p| p % n).collect();
            v.sort_unstable();
            v.dedup();
            v.into_iter().map(|i| format!("n{i}")).collect()
        };
        prop_assume!(labels.len() >= 2);
        let idx = LabelIndex::build(&g);
        let cfg = SearchConfig::default();
        let tree = find_tree_embedding(&g, &idx, &labels, &cfg).unwrap();
        prop_assert!(tree.edges.len() <= tree.nodes.len().saturating_sub(1));
        // Tree sum-of-distances <= LCAG sum (star root minimizes sum).
        let lcag = find_lcag(&g, &idx, &labels, &cfg).unwrap();
        let tsum: u32 = tree.distances.iter().sum();
        let lsum: u32 = lcag.distances.iter().sum();
        prop_assert!(tsum <= lsum, "tree sum {tsum} > lcag sum {lsum}");
    }

    /// Embedding edges always step exactly one unit of label-distance
    /// toward the root, so every edge lies on a genuine shortest path.
    #[test]
    fn lcag_edges_lie_on_shortest_paths(
        n in 3usize..20,
        extra in prop::collection::vec((0usize..20, 0usize..20), 0..10),
        picks in prop::collection::vec(0usize..20, 2..4),
    ) {
        let g = random_graph(n, &extra);
        let labels: Vec<String> = {
            let mut v: Vec<usize> = picks.iter().map(|p| p % n).collect();
            v.sort_unstable();
            v.dedup();
            v.into_iter().map(|i| format!("n{i}")).collect()
        };
        prop_assume!(labels.len() >= 2);
        let idx = LabelIndex::build(&g);
        let e = find_lcag(&g, &idx, &labels, &SearchConfig::default()).unwrap();
        let root_dist = bfs(&g, e.root);
        for edge in &e.edges {
            // Edges are oriented entity→root, so `to` is strictly closer
            // to the root than `from`.
            prop_assert!(root_dist[&edge.to] < root_dist[&edge.from]);
            prop_assert_eq!(root_dist[&edge.from] - root_dist[&edge.to], 1);
        }
    }
}
