//! FST ≡ HashMap parity property suite (proptest).
//!
//! The byte-trie automaton backend ([`newslink::kg::FstLabelIndex`]) must be
//! observationally identical to the two-HashMap oracle
//! ([`newslink::kg::HashLabelIndex`]) at every layer it touches:
//!
//! 1. `S(l)` — exact-match node sets, token-containment candidates and
//!    prefix enumeration agree on random graphs with aliases, shared
//!    surfaces and unicode labels, both for the in-memory build and after
//!    an encode/decode round trip of the serialized blob.
//! 2. Gazetteer NER — the recognizer emits bit-identical mention spans
//!    over sentences assembled from the graph's own surface forms.
//! 3. End-to-end search — a `NewsLink` engine over a synthetic world
//!    returns bit-identical ranked results (doc ids and raw score bits)
//!    whichever backend resolves labels.

use proptest::prelude::*;

use newslink::core::{NewsLink, NewsLinkConfig};
use newslink::kg::{
    normalize_label, synth, EntityType, FstLabelIndex, GraphBuilder, KnowledgeGraph, LabelIndex,
    SynthConfig,
};
use newslink::nlp::{tokenize, Recognizer};

/// Word pool mixing plain ASCII, multi-byte unicode, and words whose
/// lowercase expands (`İ` → `i̇`), so normalization edge cases are always
/// in play.
const WORDS: &[&str] = &[
    "Earth", "Union", "Bernie", "Sanders", "Vermont", "Senate", "café", "München", "Zürich",
    "İstanbul", "北京", "Über", "naïve", "ØRSTED", "election", "treaty", "harbor", "ALBANY",
];

/// Strategy: one surface form of 1..=3 words from the pool.
fn surface_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..WORDS.len(), 1..4)
        .prop_map(|idx| idx.iter().map(|&i| WORDS[i]).collect::<Vec<_>>().join(" "))
}

/// Build a connected graph whose labels (and aliases) come from `labels`.
/// Aliasing re-uses earlier surfaces, so shared surfaces — several nodes
/// behind one normalized form — occur by construction.
fn graph_from_labels(labels: &[String], alias_picks: &[(usize, usize)]) -> KnowledgeGraph {
    let mut b = GraphBuilder::new();
    let types = [
        EntityType::Person,
        EntityType::Organization,
        EntityType::Gpe,
        EntityType::Event,
        EntityType::Location,
    ];
    let nodes: Vec<_> = labels
        .iter()
        .enumerate()
        .map(|(i, l)| b.add_node(l, types[i % types.len()]))
        .collect();
    for w in nodes.windows(2) {
        b.add_edge(w[0], w[1], "linked to", 1);
    }
    for &(node, label) in alias_picks {
        b.add_alias(nodes[node % nodes.len()], &labels[label % labels.len()]);
    }
    b.freeze()
}

/// Assert full observational parity between the hash oracle and an FST
/// backend over every surface the oracle knows, plus the given probes.
fn assert_resolver_parity(
    graph: &KnowledgeGraph,
    hash: &LabelIndex,
    fst: &LabelIndex,
    probes: &[String],
) {
    assert_eq!(hash.len(), fst.len(), "surface count");
    assert_eq!(hash.max_label_tokens(), fst.max_label_tokens());
    assert_eq!(hash.surface_postings(), fst.surface_postings());
    for (surface, expect) in hash.surface_postings() {
        let got: Vec<_> = fst.exact(&surface).collect();
        assert_eq!(got, expect, "exact postings for {surface:?}");
    }
    for probe in probes {
        let norm = normalize_label(probe);
        let h: Vec<_> = hash.exact(&norm).collect();
        let f: Vec<_> = fst.exact(&norm).collect();
        assert_eq!(h, f, "exact probe {norm:?}");
        assert_eq!(hash.has_exact(&norm), fst.has_exact(&norm));
        let mut hc = hash.candidates(graph, &norm);
        let mut fc = fst.candidates(graph, &norm);
        hc.sort_unstable();
        fc.sort_unstable();
        assert_eq!(hc, fc, "candidates for {norm:?}");
        // Prefix enumeration over the first few bytes of the probe
        // (always on a char boundary: take chars, not bytes).
        let prefix: String = norm.chars().take(2).collect();
        assert_eq!(
            hash.prefix_postings(&prefix),
            fst.prefix_postings(&prefix),
            "prefix postings for {prefix:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Layer 1: S(l) parity on random alias-heavy unicode graphs, for the
    /// in-memory FST build and for its serialized round trip.
    #[test]
    fn fst_matches_hash_oracle_on_random_graphs(
        labels in prop::collection::vec(surface_strategy(), 2..24),
        aliases in prop::collection::vec((0usize..24, 0usize..24), 0..8),
        probes in prop::collection::vec(surface_strategy(), 0..8),
    ) {
        let graph = graph_from_labels(&labels, &aliases);
        let hash = LabelIndex::build(&graph);
        let fst = LabelIndex::build_fst(&graph);
        let mut all_probes = probes;
        all_probes.extend(labels.iter().cloned());
        assert_resolver_parity(&graph, &hash, &fst, &all_probes);

        // Serialized round trip: decode(encode()) must be the same index.
        let LabelIndex::Fst(ref built) = fst else { unreachable!() };
        let blob = built.encode();
        let back = FstLabelIndex::decode(blob.into()).expect("round trip");
        assert_resolver_parity(&graph, &hash, &LabelIndex::Fst(back), &all_probes);
    }

    /// Layer 2: gazetteer NER parity — sentences assembled from the
    /// graph's own surfaces plus filler produce identical mention spans.
    #[test]
    fn recognizer_spans_agree_across_backends(
        labels in prop::collection::vec(surface_strategy(), 2..16),
        aliases in prop::collection::vec((0usize..16, 0usize..16), 0..6),
        picks in prop::collection::vec(0usize..16, 1..6),
    ) {
        let graph = graph_from_labels(&labels, &aliases);
        let hash = LabelIndex::build(&graph);
        let fst = LabelIndex::build_fst(&graph);
        let mentioned: Vec<&str> = picks
            .iter()
            .map(|&p| labels[p % labels.len()].as_str())
            .collect();
        let sentence = format!(
            "Reports said {} met near {} yesterday.",
            mentioned.join(" and "),
            mentioned[0]
        );
        let tokens = tokenize(&sentence);
        let h = Recognizer::new(&graph, &hash).recognize(&sentence, &tokens);
        let f = Recognizer::new(&graph, &fst).recognize(&sentence, &tokens);
        prop_assert_eq!(h, f, "mention spans diverged for {:?}", sentence);
    }

    /// Layer 3: end-to-end search parity on a synthetic world — ranked
    /// docs and raw score bits are identical under either backend.
    #[test]
    fn search_results_are_bit_identical(seed in 0u64..512, k in 1usize..8) {
        let world = synth::generate(&SynthConfig::small(seed));
        let corpus = newslink::corpus::generate_fact_corpus(
            &world,
            &newslink::corpus::FactCorpusConfig::new(seed, 24),
        );
        let texts: Vec<&str> = corpus.docs.iter().map(|d| d.text.as_str()).collect();

        let hash = LabelIndex::build(&world.graph);
        let fst = LabelIndex::build_fst(&world.graph);
        let eh = NewsLink::new(&world.graph, &hash, NewsLinkConfig::default());
        let ef = NewsLink::new(&world.graph, &fst, NewsLinkConfig::default());
        let ih = eh.index_corpus(&texts);
        let if_ = ef.index_corpus(&texts);

        for query in texts.iter().take(4) {
            let rh = eh.search(&ih, query, k);
            let rf = ef.search(&if_, query, k);
            prop_assert_eq!(rh.results.len(), rf.results.len());
            for (a, b) in rh.results.iter().zip(rf.results.iter()) {
                prop_assert_eq!(a.doc, b.doc);
                prop_assert_eq!(a.score.to_bits(), b.score.to_bits(), "score bits");
                prop_assert_eq!(a.bow.to_bits(), b.bow.to_bits(), "bow bits");
                prop_assert_eq!(a.bon.to_bits(), b.bon.to_bits(), "bon bits");
            }
        }
    }
}
