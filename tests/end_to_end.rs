//! Cross-crate integration tests: the full NewsLink pipeline over the
//! synthetic world, exercised through the facade crate's public API.

use newslink::core::{EmbeddingModel, NewsLink, NewsLinkConfig};
use newslink::corpus::{generate_corpus, CorpusConfig, CorpusFlavor, Split};
use newslink::kg::{synth, LabelIndex, SynthConfig};
use newslink::nlp::NlpPipeline;

fn fixture() -> (synth::SynthWorld, LabelIndex, Vec<String>) {
    let world = synth::generate(&SynthConfig::small(1234));
    let labels = LabelIndex::build(&world.graph);
    let corpus = generate_corpus(&world, &CorpusConfig::new(99, 60, CorpusFlavor::CnnLike));
    let texts = corpus.docs.iter().map(|d| d.text.clone()).collect();
    (world, labels, texts)
}

#[test]
fn pipeline_indexes_and_searches() {
    let (world, labels, texts) = fixture();
    let engine = NewsLink::new(&world.graph, &labels, NewsLinkConfig::default());
    let index = engine.index_corpus(&texts);
    assert_eq!(index.doc_count(), 60);
    assert!(index.embedded_ratio() > 0.8, "{}", index.embedded_ratio());

    // Query with each document's first sentence; the source should appear
    // in the top 5 for the clear majority.
    let mut hits = 0;
    for (i, text) in texts.iter().enumerate().take(20) {
        let first = text.split('.').next().unwrap();
        let outcome = engine.search(&index, first, 5);
        if outcome.results.iter().any(|r| r.doc.index() == i) {
            hits += 1;
        }
    }
    assert!(hits >= 14, "only {hits}/20 first-sentence queries recovered");
}

#[test]
fn explanations_reference_real_graph_labels() {
    let (world, labels, texts) = fixture();
    let engine = NewsLink::new(
        &world.graph,
        &labels,
        NewsLinkConfig::default().with_beta(1.0),
    );
    let index = engine.index_corpus(&texts);
    let mut explained = 0;
    for text in texts.iter().take(10) {
        let first = text.split('.').next().unwrap();
        let outcome = engine.search(&index, first, 3);
        for hit in &outcome.results {
            for path in engine.explain(&index, &outcome.embedding, hit.doc, 5, 5) {
                let rendered = path.render(&world.graph);
                assert!(!rendered.is_empty());
                assert!(rendered.contains('—') || rendered.contains('←'));
                explained += 1;
            }
        }
    }
    assert!(explained > 0, "no explanations produced at all");
}

#[test]
fn beta_sweep_is_monotone_in_components() {
    let (world, labels, texts) = fixture();
    // At β=0 the BON component must be zero everywhere; at β=1 the BOW
    // component must be zero everywhere.
    for (beta, check_bow_zero, check_bon_zero) in
        [(0.0, false, true), (1.0, true, false)]
    {
        let engine = NewsLink::new(
            &world.graph,
            &labels,
            NewsLinkConfig::default().with_beta(beta),
        );
        let index = engine.index_corpus(&texts);
        let outcome = engine.search(&index, texts[0].split('.').next().unwrap(), 5);
        for r in &outcome.results {
            if check_bow_zero {
                assert_eq!(r.bow, 0.0);
            }
            if check_bon_zero {
                assert_eq!(r.bon, 0.0);
            }
        }
    }
}

#[test]
fn tree_and_lcag_models_agree_on_doc_alignment() {
    let (world, labels, texts) = fixture();
    for model in [EmbeddingModel::Lcag, EmbeddingModel::Tree] {
        let engine = NewsLink::new(
            &world.graph,
            &labels,
            NewsLinkConfig::default().with_model(model),
        );
        let index = engine.index_corpus(&texts);
        assert_eq!(index.doc_count(), texts.len());
        for seg in index.segments() {
            assert_eq!(seg.bow().doc_count(), seg.bon().doc_count());
        }
    }
}

#[test]
fn nlp_matching_ratio_in_paper_range() {
    let (world, labels, texts) = fixture();
    let nlp = NlpPipeline::new(&world.graph, &labels);
    let mut identified = 0;
    let mut matched = 0;
    for t in &texts {
        let a = nlp.analyze_document(t);
        identified += a.stats.identified;
        matched += a.stats.matched;
    }
    let ratio = matched as f64 / identified.max(1) as f64;
    assert!(
        (0.85..=1.0).contains(&ratio),
        "matching ratio {ratio} outside plausible range"
    );
}

#[test]
fn splits_are_usable_for_training() {
    let (_, _, texts) = fixture();
    let split = Split::new(texts.len(), 5);
    assert_eq!(split.train.len(), 48);
    assert_eq!(split.validation.len(), 6);
    assert_eq!(split.test.len(), 6);
}

#[test]
fn deterministic_end_to_end() {
    let (world, labels, texts) = fixture();
    let engine = NewsLink::new(&world.graph, &labels, NewsLinkConfig::default());
    let index1 = engine.index_corpus(&texts);
    let index2 = engine.index_corpus(&texts);
    let q = texts[3].split('.').next().unwrap();
    let r1: Vec<u32> = engine.search(&index1, q, 10).results.iter().map(|r| r.doc.0).collect();
    let r2: Vec<u32> = engine.search(&index2, q, 10).results.iter().map(|r| r.doc.0).collect();
    assert_eq!(r1, r2);
}
