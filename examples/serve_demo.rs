//! Serving demo: start the HTTP search service on an ephemeral port,
//! drive it with the crate's own one-shot HTTP client (single request,
//! batch, health, metrics), then shut it down gracefully.
//!
//! Run with: `cargo run --release --example serve_demo`

use newslink::core::{NewsLink, NewsLinkConfig};
use newslink::kg::{synth, LabelIndex, SynthConfig};
use newslink::serve::{client, ServeConfig, Server};

fn main() {
    // 1. A synthetic world and a tiny corpus to serve.
    let world = synth::generate(&SynthConfig::small(42));
    let labels = LabelIndex::build(&world.graph);
    let engine = NewsLink::new(&world.graph, &labels, NewsLinkConfig::default());
    let country = world.graph.label(world.countries[0]);
    let city = world.graph.label(world.cities[0]);
    let docs = vec![
        format!("Tensions rose in {country} as officials met in {city}."),
        format!("A festival in {city} drew visitors from across {country}."),
        "Unrelated filler text with no entity names at all.".to_string(),
    ];
    let index = parking_lot::RwLock::new(engine.index_corpus(&docs));
    println!("indexed {} docs", index.read().doc_count());

    // 2. Bind an ephemeral port and serve from a background thread. The
    // engine borrows the graph, so the server runs inside a scope.
    let config = ServeConfig::default()
        .with_workers(2)
        .with_default_timeout(std::time::Duration::from_secs(2));
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let handle = server.handle();
    let addr = handle.addr();
    println!("serving on http://{addr}\n");

    std::thread::scope(|scope| {
        scope.spawn(|| server.run(&engine, &index).expect("server run"));

        // 3. One search request, with explanations.
        let body = format!(r#"{{"query": "news about {country}", "k": 3, "explain": true}}"#);
        let (status, text) = client::request(addr, "POST", "/search", &body).expect("search");
        println!("POST /search -> {status}");
        let v: serde::Value = serde_json::from_str(&text).expect("response JSON");
        for hit in v["results"].as_array().unwrap_or(&[]) {
            println!(
                "  doc {} score {:.3}",
                hit["doc"].as_i64().unwrap_or(-1),
                hit["score"].as_f64().unwrap_or(0.0),
            );
        }

        // 4. A batch: the repeated query is served from the engine cache.
        let body = format!(
            r#"{{"requests": [{{"query": "events in {city}"}}, {{"query": "news about {country}"}}]}}"#
        );
        let (status, text) =
            client::request(addr, "POST", "/search/batch", &body).expect("batch");
        let v: serde::Value = serde_json::from_str(&text).expect("batch JSON");
        let responses = v["responses"].as_array().map(<[_]>::len).unwrap_or(0);
        println!("POST /search/batch -> {status} ({responses} responses)");

        // 5. Live mutation: insert a document, then tombstone it.
        let body = format!(r#"{{"text": "Breaking update from {city} in {country}."}}"#);
        let (status, text) = client::request(addr, "POST", "/docs", &body).expect("insert");
        let v: serde::Value = serde_json::from_str(&text).expect("insert JSON");
        let id = v["id"].as_i64().unwrap_or(-1);
        println!("POST /docs -> {status} (doc {id}, {} segments)", v["index"]["segments"]);
        let (status, _) =
            client::request(addr, "DELETE", &format!("/docs/{id}"), "").expect("delete");
        println!("DELETE /docs/{id} -> {status}");

        // 6. Health and metrics.
        let (status, _) = client::request(addr, "GET", "/healthz", "").expect("healthz");
        println!("GET /healthz -> {status}");
        let (status, text) = client::request(addr, "GET", "/metrics", "").expect("metrics");
        let v: serde::Value = serde_json::from_str(&text).expect("metrics JSON");
        println!(
            "GET /metrics -> {status}: {} requests, p50 {}µs, query-cache hits {}, \
             {} segments / {} tombstones / {} compactions",
            v["requests_total"],
            v["latency_us"]["p50"],
            v["cache"]["queries"]["hits"],
            v["index"]["segments"],
            v["index"]["tombstones"],
            v["index"]["compactions"],
        );

        // 7. Graceful shutdown: in-flight requests drain, the pool joins.
        handle.shutdown();
    });
    println!("\nserver drained and stopped");
}
