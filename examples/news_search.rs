//! Full-pipeline news search on a generated world and corpus — the
//! workload the paper's evaluation runs, end to end.
//!
//! Generates a synthetic Wikidata-like KG, generates a CNN-like corpus
//! over its events, indexes it with NewsLink(0.2), then answers a batch of
//! partial queries drawn from test documents, comparing NewsLink's blended
//! ranking against pure BM25.
//!
//! Run with: `cargo run --release --example news_search [-- <num-docs>]`

use newslink::core::{NewsLink, NewsLinkConfig, SearchRequest};
use newslink::corpus::{generate_corpus, CorpusConfig, CorpusFlavor, Split};
use newslink::kg::{synth, GraphStats, LabelIndex, SynthConfig};
use newslink::nlp::analyze;

fn main() {
    let n_docs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(400);

    // 1. World + corpus.
    let world = synth::generate(&SynthConfig::medium(42));
    println!("world: {}", GraphStats::compute(&world.graph));
    let labels = LabelIndex::build(&world.graph);
    let corpus = generate_corpus(
        &world,
        &CorpusConfig::new(7, n_docs, CorpusFlavor::CnnLike),
    );
    let texts: Vec<String> = corpus.docs.iter().map(|d| d.text.clone()).collect();
    let split = Split::new(texts.len(), 7);

    // 2. Index with NewsLink(0.2).
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let engine = NewsLink::new(
        &world.graph,
        &labels,
        NewsLinkConfig::default().with_threads(threads),
    );
    let t = std::time::Instant::now();
    let index = engine.index_corpus(&texts);
    println!(
        "indexed {} docs in {:.2}s ({:.1}% with embeddings)\n",
        index.doc_count(),
        t.elapsed().as_secs_f64(),
        index.embedded_ratio() * 100.0
    );

    // 3. Query with partial texts (headlines of test docs).
    let mut newslink_hits = 0usize;
    let mut bm25_hits = 0usize;
    let n_queries = split.test.len().min(20);
    for &doc in split.test.iter().take(n_queries) {
        let query = &corpus.docs[doc].title;
        let response = engine.execute(&index, &SearchRequest::new(query).with_k(5));
        if response.results.iter().any(|r| r.doc.index() == doc) {
            newslink_hits += 1;
        }
        if index
            .bow_topk(&analyze(query), 5)
            .iter()
            .any(|(hit, _)| hit.index() == doc)
        {
            bm25_hits += 1;
        }
    }
    println!(
        "HIT@5 on {n_queries} headline queries: NewsLink(0.2) {}/{n_queries}, BM25 {}/{n_queries}",
        newslink_hits, bm25_hits
    );

    // 4. Show one query in detail.
    if let Some(&doc) = split.test.first() {
        let query = &corpus.docs[doc].title;
        println!("\nexample query (from doc {doc}): {query:?}");
        let request = SearchRequest::new(query).with_k(3).explained();
        let response = engine.execute(&index, &request);
        for hit in &response.results {
            let text = &texts[hit.doc.index()];
            println!(
                "  doc {:<4} score={:.3}  {}",
                hit.doc.0,
                hit.score,
                &text[..80.min(text.len())]
            );
        }
        if let Some(top) = response.explanations.first() {
            println!("  explanations:");
            for p in top.paths.iter().take(3) {
                println!("    {}", p.render(&world.graph));
            }
        }
    }
}
