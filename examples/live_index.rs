//! Operating NewsLink as a *running service*: incremental indexing with
//! Lucene-style segments, deletions, merges — and full-index persistence
//! so a built NewsLink index survives restarts.
//!
//! Run with: `cargo run --release --example live_index`

use newslink::core::{
    load_newslink_index, save_newslink_index, NewsLink, NewsLinkConfig, SearchRequest,
};
use newslink::kg::{synth, LabelIndex, SynthConfig};
use newslink::nlp::analyze;
use newslink::text::SegmentedIndex;

fn main() {
    // --- Part 1: a live segmented text index -----------------------------
    println!("== live segmented index ==");
    let mut live = SegmentedIndex::new(3);
    let id_a = live.add_document(&analyze("Taliban attack shakes the Khyber region"));
    let id_b = live.add_document(&analyze("Election results announced in the capital"));
    live.commit();
    println!(
        "after first commit: {} docs in {} segment(s)",
        live.doc_count(),
        live.segment_count()
    );
    // A late correction: the election story is retracted.
    live.delete_document(id_b);
    // A stream of follow-ups arrives.
    for i in 0..6 {
        live.add_document(&analyze(&format!(
            "Follow-up {i}: authorities in Khyber said the investigation continues"
        )));
        live.commit();
    }
    println!(
        "after follow-ups: {} docs in {} segment(s) (merge policy capped)",
        live.doc_count(),
        live.segment_count()
    );
    let hits = live.search(&analyze("khyber attack"), 3);
    println!("top hits for 'khyber attack':");
    for (id, score) in &hits {
        println!("  doc {id} score {score:.3}");
    }
    assert_eq!(hits[0].0, id_a);

    // --- Part 2: persist a full NewsLink index ---------------------------
    println!("\n== NewsLink index persistence ==");
    let world = synth::generate(&SynthConfig::small(99));
    let labels = LabelIndex::build(&world.graph);
    let engine = NewsLink::new(&world.graph, &labels, NewsLinkConfig::default());
    let country = world.graph.label(world.countries[0]);
    let docs: Vec<String> = (0..50)
        .map(|i| format!("Story {i} about developments in {country} and beyond."))
        .collect();
    let index = engine.index_corpus(&docs);

    let path = std::env::temp_dir().join("newslink_example_index.nlnk");
    save_newslink_index(&index, &world.graph, &path).expect("save");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!("saved index for {} docs ({bytes} bytes)", index.doc_count());

    let restored = load_newslink_index(&world.graph, &path).expect("load");
    let request = SearchRequest::new(format!("news about {country}")).with_k(3);
    let fresh = engine.execute(&index, &request);
    let reloaded = engine.execute(&restored, &request);
    assert_eq!(
        fresh.results.iter().map(|r| r.doc).collect::<Vec<_>>(),
        reloaded.results.iter().map(|r| r.doc).collect::<Vec<_>>()
    );
    println!(
        "restored index answers identically: top doc {} (score {:.3})",
        reloaded.results[0].doc.0, reloaded.results[0].score
    );
    std::fs::remove_file(&path).ok();
}
