//! Quickstart: build a tiny knowledge graph by hand, index three news
//! snippets, run a blended NewsLink query, and print the relationship-path
//! explanations.
//!
//! Run with: `cargo run --release --example quickstart`

use newslink::core::{NewsLink, NewsLinkConfig, SearchRequest};
use newslink::kg::{EntityType, GraphBuilder, LabelIndex};

fn main() {
    // 1. A hand-built slice of the paper's Figure 1 world.
    let mut b = GraphBuilder::new();
    let khyber = b.add_node("Khyber", EntityType::Gpe);
    let kunar = b.add_node("Kunar", EntityType::Gpe);
    let waziristan = b.add_node("Waziristan", EntityType::Gpe);
    let taliban = b.add_node("Taliban", EntityType::Organization);
    let pakistan = b.add_node("Pakistan", EntityType::Gpe);
    let upper_dir = b.add_node("Upper Dir", EntityType::Gpe);
    let swat = b.add_node("Swat Valley", EntityType::Location);
    let lahore = b.add_node("Lahore", EntityType::Gpe);
    let peshawar = b.add_node("Peshawar", EntityType::Gpe);
    b.add_edge(kunar, khyber, "shares border with", 1);
    b.add_edge(waziristan, khyber, "located in", 1);
    b.add_edge(taliban, kunar, "operates in", 1);
    b.add_edge(taliban, waziristan, "operates in", 1);
    b.add_edge(upper_dir, khyber, "located in", 1);
    b.add_edge(swat, khyber, "located in", 1);
    b.add_edge(khyber, pakistan, "located in", 1);
    b.add_edge(lahore, pakistan, "located in", 1);
    b.add_edge(peshawar, khyber, "located in", 1);
    let graph = b.freeze();
    let labels = LabelIndex::build(&graph);
    println!(
        "knowledge graph: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    // 2. Index a tiny corpus.
    let engine = NewsLink::new(&graph, &labels, NewsLinkConfig::default());
    let docs = vec![
        "Military conflicts between Pakistan and Taliban spread to Upper Dir and Swat Valley."
            .to_string(),
        "A bombing attack struck Lahore; Peshawar authorities blamed Taliban operatives."
            .to_string(),
        "The annual cricket festival concluded peacefully with record attendance.".to_string(),
    ];
    let index = engine.index_corpus(&docs);
    println!(
        "indexed {} docs ({} with subgraph embeddings)\n",
        index.doc_count(),
        index.embedded_docs
    );

    // 3. Search with a partial query (vocabulary differs from doc 1!),
    // asking for relationship-path explanations in the same request.
    let request = SearchRequest::new("Taliban violence near Kunar")
        .with_k(3)
        .explained();
    let response = engine.execute(&index, &request);
    println!("query: {:?}", request.query);
    for hit in &response.results {
        println!(
            "  doc {} score={:.3} (bow={:.3} bon={:.3}): {}",
            hit.doc.0,
            hit.score,
            hit.bow,
            hit.bon,
            &docs[hit.doc.index()][..60.min(docs[hit.doc.index()].len())]
        );
    }

    // 4. The explanations rode along with the response.
    if let Some(top) = response.explanations.first() {
        println!("\nwhy is doc {} related? relationship paths:", top.doc.0);
        for path in top.paths.iter().take(5) {
            println!("  {}", path.render(&graph));
        }
    }

    // 5. Repeats are answered from the engine's caches.
    let again = engine.execute(&index, &request);
    let stats = engine.cache_stats();
    println!(
        "\nrepeat query hit the cache: {} (query memo {}/{} hit)",
        again.cache.query_hit,
        stats.queries.hits,
        stats.queries.lookups()
    );
}
