//! The paper's case study (Figure 6), reproduced: retrieve with subgraph
//! embeddings only (β = 1) and print the relationship paths that *explain*
//! the result — including induced entities mentioned in neither text.
//!
//! Run with: `cargo run --release --example explain_paths`

use newslink::corpus::CorpusFlavor;
use newslink::eval::{run_case_study, EvalContext, EvalScale};

fn main() {
    let ctx = EvalContext::build(CorpusFlavor::CnnLike, EvalScale::Tiny, 41);
    println!(
        "world: {} nodes / {} edges; corpus: {} docs\n",
        ctx.world.graph.node_count(),
        ctx.world.graph.edge_count(),
        ctx.corpus.len()
    );
    match run_case_study(&ctx) {
        Some(cs) => {
            println!("{cs}");
            println!(
                "NOTE: the induced entities above appear in NEITHER text — they\n\
                 are the KG context (the paper's Khyber/Kunar effect) that both\n\
                 links and explains the two stories."
            );
        }
        None => println!("no explainable pair found at this scale; try a larger corpus"),
    }
}
