//! News monitoring with standing queries (percolation): journalists
//! register alerts; a stream of incoming articles is matched against all
//! subscriptions as it arrives, with knowledge-graph context bridging
//! vocabulary gaps.
//!
//! Run with: `cargo run --release --example news_alerts`

use newslink::core::{AlertRegistry, NewsLinkConfig};
use newslink::corpus::{generate_corpus, CorpusConfig, CorpusFlavor};
use newslink::kg::{synth, LabelIndex, SynthConfig};

fn main() {
    let world = synth::generate(&SynthConfig::small(7));
    let labels = LabelIndex::build(&world.graph);
    let mut registry = AlertRegistry::new(
        &world.graph,
        &labels,
        NewsLinkConfig::default().with_beta(0.5),
    );

    // Subscriptions anchored at real world entities: a country and one of
    // its provinces (the KG links them even when articles don't).
    let country = world.graph.label(world.countries[0]).to_string();
    let province = world.graph.label(world.provinces[0]).to_string();
    let s1 = registry.subscribe(&format!("unrest across {country} provinces"), 0.6);
    let s2 = registry.subscribe(&format!("{province} security operations"), 0.6);
    println!("subscriptions: #{s1} = unrest in {country:?}, #{s2} = {province:?} security\n");

    // Stream a small generated corpus through the percolator.
    let corpus = generate_corpus(&world, &CorpusConfig::new(3, 40, CorpusFlavor::CnnLike));
    let mut fired_total = 0;
    for doc in &corpus.docs {
        let (fired, _) = registry.match_document(&doc.text);
        if !fired.is_empty() {
            fired_total += 1;
            let tags: Vec<String> = fired
                .iter()
                .map(|m| format!("#{} ({:.2})", m.subscription, m.score))
                .collect();
            println!(
                "ALERT {:<18} doc {:>3}: {}",
                tags.join(" "),
                doc.id,
                &doc.title[..doc.title.len().min(60)]
            );
        }
    }
    println!(
        "\n{} of {} streamed articles triggered at least one alert",
        fired_total,
        corpus.len()
    );
}
