//! Corpus and knowledge-graph explorer: prints the synthetic world's
//! statistics, sample entity descriptions, sample documents of both corpus
//! flavors, and the entity-matching profile of the NLP pipeline — the
//! ingredients behind Tables I and V.
//!
//! Run with: `cargo run --release --example corpus_explorer`

use newslink::corpus::{generate_corpus, CorpusConfig, CorpusFlavor};
use newslink::kg::{describe, synth, GraphStats, LabelIndex, SynthConfig};
use newslink::nlp::NlpPipeline;

fn main() {
    let world = synth::generate(&SynthConfig::medium(42));
    let labels = LabelIndex::build(&world.graph);
    println!("=== synthetic world ===");
    println!("{}", GraphStats::compute(&world.graph));

    println!("=== sample entity descriptions (QEPRF's expansion source) ===");
    for &node in world.countries.iter().take(2).chain(world.people.iter().take(2)) {
        println!("  {}", describe::describe(&world.graph, node));
    }

    for flavor in [CorpusFlavor::CnnLike, CorpusFlavor::KaggleLike] {
        let corpus = generate_corpus(&world, &CorpusConfig::new(7, 50, flavor));
        println!("\n=== {} corpus sample ===", flavor.name());
        let doc = &corpus.docs[0];
        println!("title: {}", doc.title);
        println!("text : {}", doc.text);

        let nlp = NlpPipeline::new(&world.graph, &labels);
        let mut identified = 0;
        let mut matched = 0;
        let mut groups = 0;
        for d in &corpus.docs {
            let a = nlp.analyze_document(&d.text);
            identified += a.stats.identified;
            matched += a.stats.matched;
            groups += a.entity_groups.len();
        }
        println!(
            "NER over {} docs: {} identified, {} matched ({:.2}%), {:.1} entity groups/doc",
            corpus.len(),
            identified,
            matched,
            100.0 * matched as f64 / identified.max(1) as f64,
            groups as f64 / corpus.len() as f64
        );
    }
}
