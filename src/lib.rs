//! NewsLink facade crate: re-exports the whole workspace.
pub use newslink_baselines as baselines;
pub use newslink_core as core;
pub use newslink_corpus as corpus;
pub use newslink_embed as embed;
pub use newslink_eval as eval;
pub use newslink_kg as kg;
pub use newslink_nlp as nlp;
pub use newslink_serve as serve;
pub use newslink_text as text;
pub use newslink_util as util;
