#!/usr/bin/env bash
# Tier-1 gate: release build + full workspace test suite.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
# Examples and bench targets (harness = false) are not exercised by
# `cargo test`; compile them so drift is caught here.
cargo build --release --workspace --examples --benches
# Lint gate: the workspace (and its vendored shims) must be clippy-clean.
cargo clippy --workspace --all-targets -- -D warnings
cargo test -q --workspace
# The serving layer's e2e suite is the HTTP smoke gate: real TCP,
# load-shed, deadline and graceful-drain coverage.
cargo test -q -p newslink-serve --test http_e2e
# Segment-parity property suite: sharded/compacted/tombstoned layouts
# must rank bit-identically to the monolithic index.
cargo test -q -p newslink-core --test segment_prop
# Durability fault-injection suite: crash at every write offset, torn
# WAL tails, quarantined segments — acked mutations are never lost,
# unacked ones never half-applied, reload never panics.
cargo test -q -p newslink-core --test crash_recovery
# Durable serving e2e: restart recovery, degraded /healthz, /admin/snapshot.
cargo test -q -p newslink-serve --test durability_e2e
# Pruning-parity property suite: the block-max pruned evaluator must be
# bit-identical to the exhaustive oracle across β, normalization, TA,
# segmentation, tombstones and k.
cargo test -q -p newslink-core --test prune_prop
# The real thing: SIGKILL the release binary mid-mutation and restart it
# (ignored by default; needs the release build from the first step).
cargo test -q -p newslink-serve --test kill9_e2e -- --ignored
