#!/usr/bin/env bash
# Tier-1 gate: release build + full workspace test suite.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
