#!/usr/bin/env bash
# Tier-1 gate: release build + full workspace test suite.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
# Examples and bench targets (harness = false) are not exercised by
# `cargo test`; compile them so drift is caught here.
cargo build --release --workspace --examples --benches
cargo test -q --workspace
# The serving layer's e2e suite is the HTTP smoke gate: real TCP,
# load-shed, deadline and graceful-drain coverage.
cargo test -q -p newslink-serve --test http_e2e
