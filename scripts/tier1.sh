#!/usr/bin/env bash
# Tier-1 gate: release build + full workspace test suite.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
# Examples and bench targets (harness = false) are not exercised by
# `cargo test`; compile them so drift is caught here.
cargo build --release --workspace --examples --benches
# Lint gate: the workspace (and its vendored shims) must be clippy-clean.
cargo clippy --workspace --all-targets -- -D warnings
# Unsafe containment: the single audited `unsafe` module is
# crates/util/src/mmap.rs (the storage layer's zero-copy foundation).
# Any unsafe fn/impl/block anywhere else in the tree fails the gate,
# and every crate root must carry #![deny(unsafe_code)] so the compiler
# enforces the same boundary. The util root additionally denies
# unsafe_op_in_unsafe_fn so the audited module annotates each unsafe
# operation individually.
if grep -rnE 'unsafe (fn|impl|\{)' crates --include='*.rs' | grep -v '^crates/util/src/mmap.rs:'; then
  echo "ERROR: unsafe usage outside the audited crates/util/src/mmap.rs" >&2
  exit 1
fi
for root in crates/*/src/lib.rs crates/cli/src/main.rs; do
  if ! grep -q 'deny(unsafe_code)' "$root"; then
    echo "ERROR: $root is missing #![deny(unsafe_code)]" >&2
    exit 1
  fi
done
if ! grep -q 'deny(unsafe_op_in_unsafe_fn)' crates/util/src/lib.rs; then
  echo "ERROR: crates/util/src/lib.rs must deny unsafe_op_in_unsafe_fn" >&2
  exit 1
fi
cargo test -q --workspace
# The serving layer's e2e suite is the HTTP smoke gate: real TCP,
# load-shed, deadline and graceful-drain coverage.
cargo test -q -p newslink-serve --test http_e2e
# Segment-parity property suite: sharded/compacted/tombstoned layouts
# must rank bit-identically to the monolithic index.
cargo test -q -p newslink-core --test segment_prop
# Durability fault-injection suite: crash at every write offset, torn
# WAL tails, quarantined segments — acked mutations are never lost,
# unacked ones never half-applied, reload never panics.
cargo test -q -p newslink-core --test crash_recovery
# Durable serving e2e: restart recovery, degraded /healthz, /admin/snapshot.
cargo test -q -p newslink-serve --test durability_e2e
# Pruning-parity property suite: the block-max pruned evaluator must be
# bit-identical to the exhaustive oracle across β, normalization, TA,
# segmentation, tombstones and k.
cargo test -q -p newslink-core --test prune_prop
# Parallel-parity property suite: the intra-query segment fan-out
# (shared atomic pruning floor, 1–6+ segments, tombstones, both storage
# backends) must be bit-identical to the sequential scan — scores, tie
# order and explanations.
cargo test -q -p newslink-core --test parallel_prop
# Resolver-parity property suite: the FST label automaton must match the
# HashMap oracle — S(l) node sets, gazetteer NER spans, and bit-identical
# end-to-end search — on alias-heavy unicode graphs, in memory and after
# a serialized round trip.
cargo test -q -p newslink --test fst_prop
# The real thing: SIGKILL the release binary mid-mutation and restart it
# (ignored by default; needs the release build from the first step).
cargo test -q -p newslink-serve --test kill9_e2e -- --ignored
# Cluster-parity property suite: a router scatter-gathering real shard
# servers over TCP must merge bit-identically to one in-process search.
cargo test -q -p newslink-serve --test cluster_prop
# Cluster failover e2e: two shard groups of two release-binary replicas
# behind a router; kill -9 a primary (reads fail over, writes refuse),
# kill the whole group (honest degraded 503), restart and heal with
# every acked write intact (ignored by default; needs the release build).
cargo test -q -p newslink-serve --test cluster_e2e -- --ignored
# Chaos resilience e2e: seeded in-process TCP fault injection (latency,
# throttling, short writes, resets, black holes, refusals) against the
# router — answers stay bit-identical or honestly degraded, breakers
# trip and heal, the prober never stalls, same seed ⇒ same faults.
cargo test -q -p newslink-serve --test chaos_e2e
