#!/usr/bin/env bash
# Quick benchmark snapshot: runs the blended top-k pruning bench in its
# reduced CI sweep (small corpora, few reps) and refreshes BENCH_PR5.json
# at the repo root. Every timed query is bit-parity-checked against the
# exhaustive oracle, so this doubles as a fast pruning regression gate.
#
# For the full sweep used in EXPERIMENTS.md, run without the quick flag:
#   cargo bench --bench blended_topk -p newslink-bench
set -euo pipefail
cd "$(dirname "$0")/.."

NEWSLINK_BENCH_QUICK=1 cargo bench --bench blended_topk -p newslink-bench
