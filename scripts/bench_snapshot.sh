#!/usr/bin/env bash
# Quick benchmark snapshot: runs the blended top-k pruning bench, the
# cold-start bench, the label-resolution bench and the router tail
# latency bench in their reduced CI sweeps (small corpora, few reps) and
# refreshes BENCH_PR5.json / BENCH_PR6.json / BENCH_PR7.json /
# BENCH_PR8.json / BENCH_PR9.json / BENCH_PR10.json at the repo root.
# Every timed query is bit-parity-checked against the exhaustive oracle
# (or the in-memory build, for cold start; or the HashMap resolver, for
# label resolution), so this doubles as a fast regression gate.
#
# For the full sweeps used in EXPERIMENTS.md, run without the quick flag:
#   cargo bench --bench blended_topk -p newslink-bench
#   cargo bench --bench query_parallel -p newslink-bench
#   cargo bench --bench cold_start -p newslink-bench
#   cargo bench --bench router_throughput -p newslink-bench
#   cargo bench --bench label_resolve -p newslink-bench
#   cargo bench --bench router_tail_latency -p newslink-bench
set -euo pipefail
cd "$(dirname "$0")/.."

NEWSLINK_BENCH_QUICK=1 cargo bench --bench blended_topk -p newslink-bench
# Intra-query segment fan-out: sequential vs auto vs pinned-4 workers,
# bit-parity-checked per query, shared-floor counters recorded.
NEWSLINK_BENCH_QUICK=1 cargo bench --bench query_parallel -p newslink-bench
# Cold start: process start → first query served, heap vs mmap backend.
NEWSLINK_BENCH_QUICK=1 cargo bench --bench cold_start -p newslink-bench
# Router: scatter-gather throughput vs one standalone process at 1/2/4 shards.
NEWSLINK_BENCH_QUICK=1 cargo bench --bench router_throughput -p newslink-bench
# Label resolution: FST automaton vs HashMap oracle — memory, build and
# parity-checked probe latency, plus the spill-forced TSV ingest round trip.
NEWSLINK_BENCH_QUICK=1 cargo bench --bench label_resolve -p newslink-bench
# Router tail latency: p50/p99 with one ~15ms-delayed replica, hedged
# reads off vs on — asserts hedging cuts p99 and amplification stays
# inside the retry budget (from /metrics counters).
NEWSLINK_BENCH_QUICK=1 cargo bench --bench router_tail_latency -p newslink-bench
