//! The `newslink` command-line tool.
//!
//! ```text
//! newslink generate-world  --scale small|medium|large --seed N --out kg.tsv
//! newslink generate-corpus --world kg.tsv --docs N --flavor cnn|kaggle --seed N --out corpus.txt
//! newslink build-index     --world kg.tsv --corpus corpus.txt --beta B --out index.nlnk
//! newslink search          --world kg.tsv --corpus corpus.txt --index index.nlnk \
//!                          --query "..." --k 10 --explain true
//! newslink serve           --world kg.tsv --corpus corpus.txt --addr 127.0.0.1:8080 \
//!                          [--data-dir DIR] [--shard-index I --shard-count N]
//! newslink serve           --world kg.tsv --mode router --shards "a:7001|a:7002,b:7003"
//! newslink stats           --world kg.tsv
//! ```
//!
//! Corpora are stored one document per line (generated documents contain
//! no newlines).

#![deny(unsafe_code)]

mod args;

use std::path::Path;
use std::process::ExitCode;

use args::Args;
use newslink_core::{
    load_newslink_index, save_newslink_index, Directory, FsDirectory, NewsLink, NewsLinkConfig,
    NewsLinkIndex, StorageBackend, StoreOptions,
};
use newslink_corpus::{generate_corpus, CorpusConfig, CorpusFlavor};
use newslink_embed::{describe_path, summarize_paths};
use newslink_kg::{
    ingest_tsv, normalize_label, synth, triples, write_graph_tsv, FstLabelIndex, GraphStats,
    IngestConfig, LabelIndex, ResolverBackend, SynthConfig,
};
use newslink_serve::{parse_shards, Cluster, FlagError, ResilienceConfig, ServeConfig, Server};

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !args.positionals().is_empty() {
        eprintln!(
            "error: unexpected arguments {:?} (flags take the form --name value)",
            args.positionals()
        );
        return ExitCode::FAILURE;
    }
    let result = match args.command.as_str() {
        "generate-world" => generate_world(&args),
        "generate-corpus" => generate_corpus_cmd(&args),
        "ingest-tsv" => ingest_tsv_cmd(&args),
        "resolve" => resolve_cmd(&args),
        "build-index" => build_index(&args),
        "search" => search_cmd(&args),
        "serve" => serve_cmd(&args),
        "stats" => stats(&args),
        "" | "help" | "--help" => {
            print!("{}", USAGE);
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
newslink — intuitive news search with knowledge graphs

commands:
  generate-world  --scale small|medium|large|<nodes> --seed N --out kg.tsv
                  [--tsv-out labels.tsv]   also emit a wikidata-entities-index-shaped label TSV
                        (label, degree score, id, aliases, description, type) for ingest-tsv
  generate-corpus --world kg.tsv --docs N --flavor cnn|kaggle --seed N --out corpus.txt
  ingest-tsv      --input labels.tsv --out labels.fst [--spill-dir DIR] [--run-bytes N]
                  [--strict true|false] [--storage heap|mmap]
                        one-pass bounded-memory ingest into the label automaton; malformed
                        lines are quarantined (line-numbered) unless --strict
  resolve         --index labels.fst (--query L | --prefix P) [--storage heap|mmap (default mmap)]
  build-index     --world kg.tsv --corpus corpus.txt --beta B [--segment-docs N] [--storage heap|mmap]
                  [--resolver hash|fst] --out index.nlnk
  search          --world kg.tsv --corpus corpus.txt --index index.nlnk --query Q --k N --explain true|false
                  [--resolver hash|fst]
  serve           --world kg.tsv --corpus corpus.txt [--index index.nlnk] [--addr 127.0.0.1:8080]
                  [--workers N] [--queue-depth N] [--timeout-ms N] [--beta B] [--segment-docs N]
                  [--search-threads N]   intra-query NS-stage workers (0 = auto, default: auto)
                  [--data-dir DIR]   durable mode: WAL + snapshots under DIR, POST /v1/admin/snapshot to checkpoint
                  [--storage heap|mmap]   snapshot backend: copy into RAM, or memory-map (default heap)
                  [--resolver hash|fst]   label-resolution backend (default hash; fst = automaton)
                  [--shard-index I --shard-count N]   cluster shard: index every Nth corpus document
                        (stripe I) and mint fresh ids on that stripe so shards never collide
                  [--mode router --shards \"a:7001|a:7002,b:7003\"]   cluster router: no local index;
                        scatter each search to one healthy replica per comma-separated shard group
                        (\"|\" separates a group's replicas), merge, and proxy writes to the owner
                  router resilience knobs (see DESIGN.md §6k):
                  [--probe-interval-ms N]   health-prober cadence (default 500)
                  [--probe-failures N]      consecutive probe failures before unhealthy (default 1)
                  [--hedge-after-ms N]      hedge reads after N ms without an answer (0 = off, default off)
                  [--breaker-window N]      per-replica breaker outcome window (default 32; trips at N/4 failures)
                  [--retry-budget R]        retry+hedge tokens minted per primary call (default 0.2)
  stats           --world kg.tsv
";

/// Parse `--storage {heap,mmap}` (default heap).
fn parse_storage(args: &Args) -> Result<StorageBackend, String> {
    match args.get("storage") {
        None => Ok(StorageBackend::default()),
        Some(s) => StorageBackend::parse(s)
            .ok_or_else(|| format!("unknown --storage {s:?} (expected heap or mmap)")),
    }
}

/// Parse `--resolver {hash,fst}` (default hash).
fn parse_resolver(args: &Args) -> Result<ResolverBackend, String> {
    match args.get("resolver") {
        None => Ok(ResolverBackend::default()),
        Some(s) => ResolverBackend::parse(s)
            .ok_or_else(|| format!("unknown --resolver {s:?} (expected hash or fst)")),
    }
}

/// Parse `--scale`: a named preset or a numeric node target.
fn parse_scale(scale: &str, seed: u64) -> Result<SynthConfig, String> {
    match scale {
        "small" => Ok(SynthConfig::small(seed)),
        "medium" => Ok(SynthConfig::medium(seed)),
        "large" => Ok(SynthConfig::large(seed)),
        n => n
            .parse::<usize>()
            .map(|target| SynthConfig::scaled(seed, target))
            .map_err(|_| format!("unknown scale {n:?} (expected small, medium, large, or a node count)")),
    }
}

/// Split a blob path into its parent [`FsDirectory`] and file name, so
/// single-file artifacts go through the atomic-write / zero-copy-open
/// storage seam.
fn blob_dir(path: &str) -> Result<(FsDirectory, String), String> {
    let p = Path::new(path);
    let parent = match p.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    let name = p
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| format!("bad path {path:?}"))?
        .to_string();
    let dir = FsDirectory::create(parent).map_err(|e| format!("opening {path}: {e}"))?;
    Ok((dir, name))
}

/// Load a snapshot file through the selected storage backend (strict
/// mode — any damage is an error, same as [`load_newslink_index`]).
fn load_index_with(
    graph: &newslink_kg::KnowledgeGraph,
    path: &str,
    backend: StorageBackend,
) -> Result<NewsLinkIndex, String> {
    let p = Path::new(path);
    let parent = match p.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    let name = p
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| format!("bad index path {path:?}"))?;
    let dir = FsDirectory::create(parent).map_err(|e| format!("opening {path}: {e}"))?;
    let (index, _report) = backend
        .reader()
        .read_snapshot(&dir, name, graph, false)
        .map_err(|e| format!("loading index {path} ({backend}): {e}"))?;
    Ok(index)
}

/// Reject flags not in `allowed` (typo guard).
fn check_flags(args: &Args, allowed: &[&str]) -> Result<(), String> {
    for name in args.flag_names() {
        if !allowed.contains(&name) {
            return Err(format!("unknown flag --{name} for {}", args.command));
        }
    }
    Ok(())
}

fn load_world(args: &Args) -> Result<newslink_kg::KnowledgeGraph, String> {
    let path = args.require("world")?;
    triples::load_triples(Path::new(path)).map_err(|e| format!("loading world {path}: {e}"))
}

fn load_corpus_file(path: &str) -> Result<Vec<String>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading corpus {path}: {e}"))?;
    Ok(text.lines().map(str::to_string).collect())
}

fn generate_world(args: &Args) -> Result<(), String> {
    check_flags(args, &["scale", "seed", "out", "tsv-out"])?;
    let seed: u64 = args.get_parsed("seed", 42)?;
    let config = parse_scale(args.get("scale").unwrap_or("small"), seed)?;
    let out = args.require("out")?;
    let world = synth::generate(&config);
    triples::save_triples(&world.graph, Path::new(out))
        .map_err(|e| format!("writing {out}: {e}"))?;
    if let Some(tsv) = args.get("tsv-out") {
        let f = std::fs::File::create(tsv).map_err(|e| format!("creating {tsv}: {e}"))?;
        let mut w = std::io::BufWriter::new(f);
        let lines = write_graph_tsv(&world.graph, &mut w).map_err(|e| format!("writing {tsv}: {e}"))?;
        use std::io::Write as _;
        w.flush().map_err(|e| format!("writing {tsv}: {e}"))?;
        println!("wrote {tsv} ({lines} label lines)");
    }
    println!(
        "wrote {} ({} nodes, {} edges)",
        out,
        world.graph.node_count(),
        world.graph.edge_count()
    );
    Ok(())
}

fn ingest_tsv_cmd(args: &Args) -> Result<(), String> {
    check_flags(args, &["input", "out", "spill-dir", "run-bytes", "strict", "storage"])?;
    let input = args.require("input")?;
    let out = args.require("out")?;
    let backend = parse_storage(args)?;
    let mut cfg = IngestConfig::default();
    if let Some(d) = args.get("spill-dir") {
        cfg.spill_dir = Some(std::path::PathBuf::from(d));
    }
    cfg.run_bytes = args.get_parsed("run-bytes", cfg.run_bytes)?;
    cfg.strict = args.get_parsed("strict", false)?;
    let file = std::fs::File::open(input).map_err(|e| format!("opening {input}: {e}"))?;
    let t = std::time::Instant::now();
    let (index, report) =
        ingest_tsv(std::io::BufReader::new(file), &cfg).map_err(|e| format!("ingesting {input}: {e}"))?;
    let (dir, name) = blob_dir(out)?;
    dir.atomic_write(&name, &index.encode())
        .map_err(|e| format!("writing {out}: {e}"))?;
    // Verification reopen through the requested backend: prove the blob
    // serves the way it was built.
    let bytes = match backend {
        StorageBackend::Mmap => dir.open_bytes(&name),
        _ => dir.read(&name),
    }
    .map_err(|e| format!("reopening {out}: {e}"))?;
    let reopened =
        FstLabelIndex::decode(bytes).map_err(|e| format!("verifying {out} ({backend}): {e}"))?;
    if reopened.node_meta_count() != index.node_meta_count() {
        return Err(format!(
            "verification reopen ({backend}) saw {} nodes, expected {}",
            reopened.node_meta_count(),
            index.node_meta_count()
        ));
    }
    println!("{}", report.summary());
    println!(
        "wrote {out} ({} bytes) in {:.2}s (verified via {backend})",
        index.encode().len(),
        t.elapsed().as_secs_f64(),
    );
    Ok(())
}

fn resolve_cmd(args: &Args) -> Result<(), String> {
    check_flags(args, &["index", "query", "prefix", "storage"])?;
    let path = args.require("index")?;
    // Default mmap: resolution is the cold-start path the automaton
    // exists for, and the mapping serves without decoding.
    let backend = match args.get("storage") {
        None => StorageBackend::Mmap,
        Some(s) => StorageBackend::parse(s)
            .ok_or_else(|| format!("unknown --storage {s:?} (expected heap or mmap)"))?,
    };
    let (dir, name) = blob_dir(path)?;
    let bytes = match backend {
        StorageBackend::Mmap => dir.open_bytes(&name),
        _ => dir.read(&name),
    }
    .map_err(|e| format!("opening {path}: {e}"))?;
    let index = FstLabelIndex::decode(bytes).map_err(|e| format!("loading {path}: {e}"))?;
    let print_nodes = |surface: &str, nodes: &[newslink_kg::NodeId]| {
        for &n in nodes {
            match index.node_meta(n) {
                Some(m) => println!("{surface}\t{}\t{}\t{}", m.id, m.entity_type.as_str(), m.label),
                None => println!("{surface}\tN{}", n.index()),
            }
        }
    };
    match (args.get("query"), args.get("prefix")) {
        (Some(q), None) => {
            use newslink_kg::LabelResolver as _;
            let norm = normalize_label(q);
            let nodes: Vec<_> = index.exact(&norm).collect();
            if nodes.is_empty() {
                println!("no match for {norm:?}");
            } else {
                print_nodes(&norm, &nodes);
            }
        }
        (None, Some(p)) => {
            let norm = normalize_label(p);
            let matches = index.prefix_postings(&norm);
            if matches.is_empty() {
                println!("no surfaces start with {norm:?}");
            }
            for (surface, nodes) in &matches {
                print_nodes(surface, nodes);
            }
        }
        _ => return Err("pass exactly one of --query or --prefix".to_string()),
    }
    Ok(())
}

fn generate_corpus_cmd(args: &Args) -> Result<(), String> {
    check_flags(args, &["world", "scale", "world-seed", "seed", "docs", "flavor", "out"])?;
    let seed: u64 = args.get_parsed("seed", 7)?;
    let docs: usize = args.get_parsed("docs", 500)?;
    let flavor = match args.get("flavor").unwrap_or("cnn") {
        "cnn" => CorpusFlavor::CnnLike,
        "kaggle" => CorpusFlavor::KaggleLike,
        other => return Err(format!("unknown flavor {other:?}")),
    };
    let out = args.require("out")?;
    // Re-generate the world registers (events, participants) from the same
    // seed family the world file was produced with; the corpus generator
    // needs them, and the seed is embedded in the caller's workflow.
    let world_seed: u64 = args.get_parsed("world-seed", 42)?;
    let config = parse_scale(args.get("scale").unwrap_or("small"), world_seed)?;
    let world = synth::generate(&config);
    let corpus = generate_corpus(&world, &CorpusConfig::new(seed, docs, flavor));
    let mut text = String::new();
    for d in &corpus.docs {
        debug_assert!(!d.text.contains('\n'));
        text.push_str(&d.text);
        text.push('\n');
    }
    std::fs::write(out, text).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {out} ({} documents)", corpus.len());
    Ok(())
}

fn build_index(args: &Args) -> Result<(), String> {
    check_flags(
        args,
        &["world", "corpus", "beta", "segment-docs", "storage", "resolver", "out"],
    )?;
    let backend = parse_storage(args)?;
    let graph = load_world(args)?;
    let texts = load_corpus_file(args.require("corpus")?)?;
    let beta: f64 = args.get_parsed("beta", 0.2)?;
    // 0 = one segment; any other value shards the build, which also
    // parallelizes it across the configured threads.
    let segment_docs: usize = args.get_parsed("segment-docs", 0)?;
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let labels = LabelIndex::build_backend(&graph, parse_resolver(args)?);
    let engine = NewsLink::new(
        &graph,
        &labels,
        NewsLinkConfig::default()
            .with_beta(beta)
            .with_threads(threads)
            .with_segment_docs(segment_docs),
    );
    let t = std::time::Instant::now();
    let index = engine.index_corpus(&texts);
    let out = args.require("out")?;
    save_newslink_index(&index, &graph, Path::new(out))
        .map_err(|e| format!("writing {out}: {e}"))?;
    // Verification reopen through the requested backend: prove the file
    // loads the way it will be served before declaring success.
    let reopened = load_index_with(&graph, out, backend)?;
    if reopened.doc_count() != index.doc_count() {
        return Err(format!(
            "verification reopen ({backend}) saw {} docs, expected {}",
            reopened.doc_count(),
            index.doc_count()
        ));
    }
    println!(
        "indexed {} docs into {} segment(s) in {:.2}s ({:.1}% embedded), wrote {} (verified via {backend})",
        index.doc_count(),
        index.segment_count(),
        t.elapsed().as_secs_f64(),
        index.embedded_ratio() * 100.0,
        out
    );
    Ok(())
}

fn search_cmd(args: &Args) -> Result<(), String> {
    check_flags(
        args,
        &["world", "corpus", "index", "query", "k", "beta", "explain", "explain-score", "resolver"],
    )?;
    let graph = load_world(args)?;
    let texts = load_corpus_file(args.require("corpus")?)?;
    let query = args.require("query")?;
    let k: usize = args.get_parsed("k", 10)?;
    let beta: f64 = args.get_parsed("beta", 0.2)?;
    let explain: bool = args.get_parsed("explain", false)?;
    let explain_score: bool = args.get_parsed("explain-score", false)?;
    let labels = LabelIndex::build_backend(&graph, parse_resolver(args)?);
    let config = NewsLinkConfig::default().with_beta(beta);
    let engine = NewsLink::new(&graph, &labels, config);
    let index = match args.get("index") {
        Some(path) => load_newslink_index(&graph, Path::new(path))
            .map_err(|e| format!("loading index {path}: {e}"))?,
        None => engine.index_corpus(&texts),
    };
    if index.doc_count() != texts.len() {
        return Err(format!(
            "index holds {} docs but corpus file has {}",
            index.doc_count(),
            texts.len()
        ));
    }
    let outcome = engine.search(&index, query, k);
    if outcome.results.is_empty() {
        println!("no results");
        return Ok(());
    }
    for (rank, hit) in outcome.results.iter().enumerate() {
        let text = &texts[hit.doc.index()];
        println!(
            "{:>2}. doc {:<6} score {:.3}  {}",
            rank + 1,
            hit.doc.0,
            hit.score,
            &text[..text.len().min(90)]
        );
        if explain {
            let paths = engine.explain(&index, &outcome.embedding, hit.doc, 5, 20);
            for p in summarize_paths(&graph, &paths, 3) {
                println!("      {} — {}", p.render(&graph), describe_path(&graph, &p));
            }
        }
        if explain_score {
            let ex = newslink_core::explain_score(
                &graph,
                &labels,
                engine.config(),
                &index,
                query,
                hit.doc,
            );
            for line in ex.to_string().lines() {
                println!("      {line}");
            }
        }
    }
    Ok(())
}

fn serve_cmd(args: &Args) -> Result<(), String> {
    check_flags(
        args,
        &[
            "world", "corpus", "index", "addr", "workers", "queue-depth", "timeout-ms", "beta",
            "segment-docs", "search-threads", "data-dir", "storage", "resolver", "mode", "shards",
            "shard-index", "shard-count", "probe-interval-ms", "probe-failures", "hedge-after-ms",
            "breaker-window", "retry-budget",
        ],
    )?;
    match args.get("mode").unwrap_or("standalone") {
        "standalone" => serve_standalone(args),
        "router" => serve_router(args),
        other => Err(format!(
            "unknown --mode {other:?} (expected standalone or router)"
        )),
    }
}

/// Parse the `--shard-index I --shard-count N` pair, if present. The
/// pair makes a standalone server a cluster shard: it indexes only its
/// stripe of the corpus and mints fresh ids on that stripe.
fn parse_stripe(args: &Args) -> Result<Option<(u32, u32)>, String> {
    match (args.get("shard-index"), args.get("shard-count")) {
        (None, None) => Ok(None),
        (Some(_), None) | (None, Some(_)) => {
            Err("--shard-index and --shard-count must be given together".to_string())
        }
        (Some(i), Some(c)) => {
            let shard: u32 = i.parse().map_err(|e| format!("bad --shard-index: {e}"))?;
            let of: u32 = c.parse().map_err(|e| format!("bad --shard-count: {e}"))?;
            if of == 0 || shard >= of {
                return Err(format!(
                    "--shard-index {shard} out of range for --shard-count {of}"
                ));
            }
            Ok(Some((shard, of)))
        }
    }
}

/// `serve --mode router`: no local index. Scatter each search to one
/// healthy replica per shard group, merge the per-shard top-k under the
/// global-statistics overlay, and proxy writes to the owning group's
/// primary.
fn serve_router(args: &Args) -> Result<(), String> {
    for flag in [
        "corpus",
        "index",
        "data-dir",
        "storage",
        "segment-docs",
        "shard-index",
        "shard-count",
    ] {
        if args.get(flag).is_some() {
            return Err(format!(
                "--{flag} does not apply to --mode router (each shard owns its data; pass it to that shard's serve command)"
            ));
        }
    }
    let graph = load_world(args)?;
    let beta: f64 = args.get_parsed("beta", 0.2)?;
    let labels = LabelIndex::build_backend(&graph, parse_resolver(args)?);
    // The router runs the query-analysis half of the pipeline locally
    // (NLP + NE + embedding), so it needs the same world the shards use.
    let mut router_config = NewsLinkConfig::default().with_beta(beta).with_auto_threads();
    if let Some(n) = parse_search_threads(args)? {
        router_config = router_config.with_search_threads(n);
    }
    let engine = NewsLink::new(&graph, &labels, router_config);
    let spec = args.require("shards")?;
    let groups = parse_shards(spec).map_err(|e| format!("bad --shards: {e}"))?;
    let replicas: usize = groups.iter().map(Vec::len).sum();
    let resilience = parse_resilience(args)?;
    let cluster = Cluster::with_config(groups, resilience);

    let workers: usize = args.get_parsed("workers", 4)?;
    let queue_depth: usize = args.get_parsed("queue-depth", 64)?;
    let mut serve_config = ServeConfig::default()
        .with_workers(workers)
        .with_queue_depth(queue_depth);
    if let Some(ms) = args.get("timeout-ms") {
        let ms: u64 = ms.parse().map_err(|e| format!("bad --timeout-ms: {e}"))?;
        serve_config = serve_config.with_default_timeout(std::time::Duration::from_millis(ms));
    }
    let addr = args.get("addr").unwrap_or("127.0.0.1:8080");
    let server = Server::bind(addr, serve_config).map_err(|e| format!("binding {addr}: {e}"))?;
    println!(
        "routing {} shard group(s) ({} replica(s)) on http://{} ({} workers, capacity {}) — POST /v1/search scatter-gathers, POST /v1/docs routes to the owning shard's primary; Ctrl-C to stop",
        cluster.groups().len(),
        replicas,
        server.local_addr(),
        server.config().workers,
        server.config().capacity(),
    );
    server
        .run_router(&engine, &cluster)
        .map_err(|e| format!("serving on {addr}: {e}"))
}

/// Parse the router's resilience knobs into a [`ResilienceConfig`],
/// surfacing the typed per-flag errors verbatim (they already carry the
/// flag name, value, and expected range).
fn parse_resilience(args: &Args) -> Result<ResilienceConfig, String> {
    let mut cfg = ResilienceConfig::default();
    for flag in ResilienceConfig::FLAGS {
        let name = flag.trim_start_matches("--");
        if let Some(value) = args.get(name) {
            cfg.apply_flag(flag, value).map_err(|e| e.to_string())?;
        }
    }
    Ok(cfg)
}

/// Parse `--search-threads` (intra-query NS-stage workers, 0 = auto),
/// with the same typed one-line errors as the resilience flags. `None`
/// when the flag is absent — the engine then follows its `threads`
/// setting.
fn parse_search_threads(args: &Args) -> Result<Option<usize>, String> {
    let Some(value) = args.get("search-threads") else {
        return Ok(None);
    };
    let n: u64 = value.parse().map_err(|_| {
        FlagError::BadNumber {
            flag: "--search-threads",
            value: value.to_string(),
        }
        .to_string()
    })?;
    if n > 1024 {
        return Err(FlagError::OutOfRange {
            flag: "--search-threads",
            value: value.to_string(),
            expected: "a worker count in 0..=1024 (0 = auto)",
        }
        .to_string());
    }
    Ok(Some(n as usize))
}

fn serve_standalone(args: &Args) -> Result<(), String> {
    if args.get("shards").is_some() {
        return Err("--shards requires --mode router".to_string());
    }
    for flag in ResilienceConfig::FLAGS {
        if args.get(flag.trim_start_matches("--")).is_some() {
            return Err(format!(
                "{flag} requires --mode router (resilience knobs tune the cluster path)"
            ));
        }
    }
    let stripe = parse_stripe(args)?;
    let backend = parse_storage(args)?;
    let graph = load_world(args)?;
    let texts = load_corpus_file(args.require("corpus")?)?;
    let beta: f64 = args.get_parsed("beta", 0.2)?;
    let segment_docs: usize = args.get_parsed("segment-docs", 0)?;
    let labels = LabelIndex::build_backend(&graph, parse_resolver(args)?);
    // `threads = 0` = auto: batch endpoints and the segment builder size
    // their pools to the machine at call time. `--search-threads`
    // overrides the intra-query NS fan-out only.
    let mut config = NewsLinkConfig::default()
        .with_beta(beta)
        .with_auto_threads()
        .with_segment_docs(segment_docs);
    if let Some(n) = parse_search_threads(args)? {
        config = config.with_search_threads(n);
    }
    let engine = NewsLink::new(&graph, &labels, config);

    // With --data-dir, the directory's snapshot + WAL are the authority:
    // the corpus (or --index) only seeds a first-ever start. Without it,
    // the index is in-memory only and mutations die with the process.
    let durable = match args.get("data-dir") {
        Some(dir) => {
            // The seed only runs on a first-ever start (no snapshot yet);
            // load --index eagerly in that case so a bad file is a clean
            // error instead of a panic inside the seed closure.
            let dir_path = Path::new(dir);
            let snapshot_exists = dir_path.join("index.nlnk").exists();
            let preloaded = match args.get("index") {
                Some(path) if !snapshot_exists => Some(
                    load_newslink_index(&graph, Path::new(path))
                        .map_err(|e| format!("loading index {path}: {e}"))?,
                ),
                _ => None,
            };
            // `move` takes `preloaded` by value; the engine and corpus
            // are needed after the closure, so capture them by reference.
            let (engine_ref, texts_ref) = (&engine, &texts);
            let seed = move || {
                preloaded.unwrap_or_else(|| {
                    println!("indexing {} documents …", texts_ref.len());
                    match stripe {
                        Some((shard, of)) => engine_ref.index_corpus_sharded(texts_ref, shard, of),
                        None => engine_ref.index_corpus(texts_ref),
                    }
                })
            };
            let options = StoreOptions::new().backend(backend);
            let (store, index) =
                newslink_core::DurableStore::open_with(&engine, dir_path, &options, seed)
                    .map_err(|e| format!("opening data dir {dir}: {e}"))?;
            let report = store.report();
            if report.degraded() {
                eprintln!(
                    "warning: degraded recovery — {} segment(s) quarantined, {} tombstone(s) dropped; serving the {} surviving segment(s)",
                    report.quarantined_segments,
                    report.dropped_tombstones,
                    report.segments_loaded,
                );
            }
            if report.wal_records_replayed + report.wal_records_skipped > 0
                || report.wal_truncated_bytes > 0
            {
                println!(
                    "recovered from {dir}: {} WAL record(s) replayed, {} skipped, {} torn byte(s) truncated",
                    report.wal_records_replayed,
                    report.wal_records_skipped,
                    report.wal_truncated_bytes,
                );
            }
            Some((newslink_serve::DurableState::new(store), index))
        }
        None => None,
    };
    let (durable, index) = match durable {
        Some((state, index)) => (Some(state), index),
        None => (
            None,
            match args.get("index") {
                Some(path) => load_index_with(&graph, path, backend)?,
                None => {
                    println!("indexing {} documents …", texts.len());
                    match stripe {
                        Some((shard, of)) => engine.index_corpus_sharded(&texts, shard, of),
                        None => engine.index_corpus(&texts),
                    }
                }
            },
        ),
    };
    let mut index = index;
    if let Some((shard, of)) = stripe {
        // The stripe is a deployment property, not part of the snapshot
        // or WAL: re-pin the id allocator after every load path so fresh
        // mints stay on this shard's modular stripe.
        index.set_id_stripe(shard, of);
    }
    let index = parking_lot::RwLock::new(index);

    let workers: usize = args.get_parsed("workers", 4)?;
    let queue_depth: usize = args.get_parsed("queue-depth", 64)?;
    let mut serve_config = ServeConfig::default()
        .with_workers(workers)
        .with_queue_depth(queue_depth);
    if let Some(ms) = args.get("timeout-ms") {
        let ms: u64 = ms.parse().map_err(|e| format!("bad --timeout-ms: {e}"))?;
        serve_config = serve_config.with_default_timeout(std::time::Duration::from_millis(ms));
    }
    let addr = args.get("addr").unwrap_or("127.0.0.1:8080");
    let server = Server::bind(addr, serve_config).map_err(|e| format!("binding {addr}: {e}"))?;
    println!(
        "serving {} docs on http://{} ({} workers, capacity {}, {} storage{}{}) — POST /v1/search, POST /v1/search/batch, POST /v1/docs, DELETE /v1/docs/<id>, POST /v1/admin/snapshot, GET /v1/healthz, GET /v1/metrics; Ctrl-C to stop",
        index.read().doc_count(),
        server.local_addr(),
        server.config().workers,
        server.config().capacity(),
        backend,
        if durable.is_some() { ", durable" } else { "" },
        match stripe {
            Some((shard, of)) => format!(", shard {shard}/{of}"),
            None => String::new(),
        },
    );
    server
        .run_durable(&engine, &index, durable.as_ref())
        .map_err(|e| format!("serving on {addr}: {e}"))
}

fn stats(args: &Args) -> Result<(), String> {
    check_flags(args, &["world"])?;
    let graph = load_world(args)?;
    print!("{}", GraphStats::compute(&graph));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(argv: &[&str]) -> Args {
        Args::parse(argv.iter().map(|s| s.to_string())).expect("parse")
    }

    #[test]
    fn search_threads_flag_accepts_auto_and_counts() {
        assert_eq!(parse_search_threads(&args(&[])).unwrap(), None);
        let a = args(&["--search-threads", "0"]);
        assert_eq!(parse_search_threads(&a).unwrap(), Some(0));
        let a = args(&["--search-threads", "16"]);
        assert_eq!(parse_search_threads(&a).unwrap(), Some(16));
        let a = args(&["--search-threads", "1024"]);
        assert_eq!(parse_search_threads(&a).unwrap(), Some(1024));
    }

    #[test]
    fn search_threads_flag_rejects_junk_with_typed_messages() {
        let a = args(&["--search-threads", "many"]);
        assert_eq!(
            parse_search_threads(&a).unwrap_err(),
            "--search-threads: `many` is not a number"
        );
        let a = args(&["--search-threads", "4096"]);
        assert_eq!(
            parse_search_threads(&a).unwrap_err(),
            "--search-threads: `4096` out of range (expected a worker count in 0..=1024 (0 = auto))"
        );
    }
}
