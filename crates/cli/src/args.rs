//! Minimal flag parsing (no external dependencies).
//!
//! Supports `--flag value` and positional arguments; unknown flags are
//! errors so typos fail fast.

use std::collections::BTreeMap;

/// Parsed command-line arguments: a subcommand, flags, and positionals.
#[derive(Debug, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: String,
    flags: BTreeMap<String, String>,
    positionals: Vec<String>,
}

impl Args {
    /// Parse from an iterator of arguments (excluding `argv[0]`).
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Self, String> {
        let mut out = Args::default();
        let mut iter = argv.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if name.is_empty() {
                    return Err("bare \"--\" is not supported".to_string());
                }
                let value = iter
                    .next()
                    .ok_or_else(|| format!("flag --{name} expects a value"))?;
                if out.flags.insert(name.to_string(), value).is_some() {
                    return Err(format!("flag --{name} given twice"));
                }
            } else if out.command.is_empty() {
                out.command = arg;
            } else {
                out.positionals.push(arg);
            }
        }
        Ok(out)
    }

    /// A flag's value, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// A required flag.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// A flag parsed to a type, with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{name} has invalid value {v:?}")),
        }
    }

    /// Positional arguments after the subcommand.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// Flags that were provided but not consumed by the command, for
    /// unknown-flag detection.
    pub fn flag_names(&self) -> impl Iterator<Item = &str> {
        self.flags.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, String> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_flags_and_positionals() {
        let a = parse("search --k 5 --query taliban extra").unwrap();
        assert_eq!(a.command, "search");
        assert_eq!(a.get("k"), Some("5"));
        assert_eq!(a.get("query"), Some("taliban"));
        assert_eq!(a.positionals(), &["extra".to_string()]);
    }

    #[test]
    fn missing_value_is_error() {
        assert!(parse("cmd --flag").is_err());
    }

    #[test]
    fn duplicate_flag_is_error() {
        assert!(parse("cmd --x 1 --x 2").is_err());
    }

    #[test]
    fn require_and_parsed() {
        let a = parse("cmd --n 42").unwrap();
        assert_eq!(a.require("n").unwrap(), "42");
        assert!(a.require("m").is_err());
        assert_eq!(a.get_parsed("n", 0usize).unwrap(), 42);
        assert_eq!(a.get_parsed("m", 7usize).unwrap(), 7);
        let bad = parse("cmd --n x").unwrap();
        assert!(bad.get_parsed("n", 0usize).is_err());
    }

    #[test]
    fn empty_input() {
        let a = parse("").unwrap();
        assert!(a.command.is_empty());
    }
}
