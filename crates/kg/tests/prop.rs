//! Property tests for the knowledge-graph substrate.

use proptest::prelude::*;

use newslink_kg::{
    normalize_label, triples, EntityType, GraphBuilder, KnowledgeGraph, LabelIndex, NodeId,
};

/// Strategy: random node labels over a small alphabet (collisions likely)
/// and random edges among them.
fn graph_strategy() -> impl Strategy<Value = (Vec<String>, Vec<(usize, usize, u8)>)> {
    let labels = prop::collection::vec("[a-c]{1,3}( [a-c]{1,3})?", 1..20);
    labels.prop_flat_map(|ls| {
        let n = ls.len();
        let edges = prop::collection::vec((0..n, 0..n, 1u8..4), 0..30);
        (Just(ls), edges)
    })
}

fn build(labels: &[String], edges: &[(usize, usize, u8)]) -> KnowledgeGraph {
    let mut b = GraphBuilder::new();
    let types = [
        EntityType::Gpe,
        EntityType::Person,
        EntityType::Organization,
        EntityType::Event,
    ];
    let ids: Vec<NodeId> = labels
        .iter()
        .enumerate()
        .map(|(i, l)| b.add_node(l, types[i % types.len()]))
        .collect();
    for &(u, v, w) in edges {
        if u != v {
            b.add_edge(ids[u], ids[v], "p", u32::from(w));
        }
    }
    b.freeze()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bi-direction invariant: every forward edge has its inverse twin.
    #[test]
    fn every_edge_has_inverse_twin((labels, edges) in graph_strategy()) {
        let g = build(&labels, &edges);
        for v in g.nodes() {
            for e in g.neighbors(v) {
                let twin_exists = g.neighbors(e.to).iter().any(|back| {
                    back.to == v
                        && back.predicate == e.predicate
                        && back.weight == e.weight
                        && back.inverse != e.inverse
                });
                prop_assert!(twin_exists, "missing twin for {v:?} -> {:?}", e.to);
            }
        }
        prop_assert_eq!(g.directed_edge_count(), 2 * g.edge_count());
    }

    /// TSV persistence round-trips arbitrary graphs exactly.
    #[test]
    fn triples_round_trip((labels, edges) in graph_strategy()) {
        let g = build(&labels, &edges);
        let mut buf = Vec::new();
        triples::write_triples(&g, &mut buf).unwrap();
        let back = triples::read_triples(&buf[..]).unwrap();
        prop_assert_eq!(back.node_count(), g.node_count());
        prop_assert_eq!(back.edge_count(), g.edge_count());
        for v in g.nodes() {
            prop_assert_eq!(back.label(v), g.label(v));
            prop_assert_eq!(back.entity_type(v), g.entity_type(v));
            prop_assert_eq!(back.neighbors(v), g.neighbors(v));
        }
    }

    /// The label index's exact buckets contain precisely the nodes whose
    /// normalized label matches.
    #[test]
    fn label_index_exact_is_correct((labels, edges) in graph_strategy()) {
        let g = build(&labels, &edges);
        let idx = LabelIndex::build(&g);
        for v in g.nodes() {
            let bucket: Vec<_> = idx.exact(g.label(v)).collect();
            prop_assert!(bucket.contains(&v), "node missing from own label bucket");
            for &other in &bucket {
                prop_assert_eq!(
                    normalize_label(g.label(other)),
                    normalize_label(g.label(v))
                );
            }
        }
    }

    /// Candidates always include every exact match, and every candidate's
    /// label (or alias) contains the query tokens contiguously.
    #[test]
    fn candidates_are_sound((labels, edges) in graph_strategy(), probe in "[a-c]{1,3}") {
        let g = build(&labels, &edges);
        let idx = LabelIndex::build(&g);
        let cands = idx.candidates(&g, &probe);
        for e in idx.exact(&probe) {
            prop_assert!(cands.contains(&e));
        }
        let norm = normalize_label(&probe);
        for &c in &cands {
            let label = normalize_label(g.label(c));
            let hit = label.split(' ').any(|t| t == norm) || label == norm;
            prop_assert!(hit, "candidate {label:?} does not contain {norm:?}");
        }
    }

    /// Normalization is idempotent.
    #[test]
    fn normalize_is_idempotent(s in "\\PC{0,40}") {
        let once = normalize_label(&s);
        prop_assert_eq!(normalize_label(&once), once.clone());
    }
}
