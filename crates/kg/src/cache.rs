//! Concurrency-safe traversal caching for the hot embedding path.
//!
//! Every document and every query runs truncated shortest-path searches
//! from its recognized entities (the `G*` search of §V). Real corpora
//! mention the same entities thousands of times, so the per-source-set
//! distance maps those searches settle are massively redundant across
//! documents. [`DistanceCache`] memoizes them behind a [`ShardedCache`] —
//! sharded `parking_lot::RwLock` maps keyed by the interned node ids of
//! the source set, bounded by CLOCK eviction
//! ([`newslink_util::ClockCache`]).
//!
//! The graph a cache serves is frozen ([`KnowledgeGraph`] is immutable),
//! so entries never go stale during document ingestion; [`clear`] exists
//! for the one real invalidation event, swapping in a new graph build.
//!
//! [`clear`]: DistanceCache::clear

use std::borrow::Borrow;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use parking_lot::RwLock;

use newslink_util::{CacheCounters, CacheStats, ClockCache, FxHashMap, FxHasher};

use crate::graph::{KnowledgeGraph, NodeId};

/// A concurrent, capacity-bounded cache: `parking_lot::RwLock` shards over
/// [`ClockCache`]s, with lock-free hit/miss/eviction counters.
///
/// Reads take a shard's shared lock (the CLOCK reference bit is atomic, so
/// `get` never upgrades); only inserts take the exclusive lock. Values are
/// cloned out, so `V` is typically an `Arc`.
#[derive(Debug)]
pub struct ShardedCache<K, V> {
    shards: Box<[RwLock<ClockCache<K, V>>]>,
    counters: CacheCounters,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedCache<K, V> {
    /// A cache bounded to roughly `capacity` total entries, spread over 16
    /// shards. Capacity zero disables caching (all lookups miss).
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, 16)
    }

    /// A cache with an explicit shard count (rounded up to a power of two).
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let per_shard = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(shards)
        };
        Self {
            shards: (0..shards)
                .map(|_| RwLock::new(ClockCache::new(per_shard)))
                .collect(),
            counters: CacheCounters::default(),
        }
    }

    #[inline]
    fn shard<Q>(&self, key: &Q) -> &RwLock<ClockCache<K, V>>
    where
        Q: Hash + ?Sized,
    {
        let mut h = FxHasher::default();
        key.hash(&mut h);
        &self.shards[h.finish() as usize & (self.shards.len() - 1)]
    }

    /// Look up `key`, counting a hit or miss. Accepts any borrowed form
    /// of the key (e.g. `&str` for `String` keys): the `Borrow` contract
    /// guarantees the borrowed form hashes identically, so the probe
    /// lands on the same shard without building an owned key.
    pub fn get<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.get_where(key, |_| true)
    }

    /// Look up `key` but only accept entries satisfying `usable`; a
    /// present-but-unusable entry counts as a miss (the caller is about to
    /// recompute it).
    pub fn get_where<Q>(&self, key: &Q, usable: impl FnOnce(&V) -> bool) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let found = {
            let shard = self.shard(key).read();
            shard.get(key).filter(|v| usable(v)).cloned()
        };
        match found {
            Some(v) => {
                self.counters.hit();
                Some(v)
            }
            None => {
                self.counters.miss();
                None
            }
        }
    }

    /// Insert or replace `key`, counting any eviction.
    pub fn insert(&self, key: K, value: V) {
        if self.shard(&key).write().insert(key, value).is_some() {
            self.counters.evict();
        }
    }

    /// Look up `key`, computing and inserting on miss. The compute closure
    /// runs outside any lock, so concurrent misses on one key may compute
    /// redundantly — last writer wins, which is safe for pure functions.
    pub fn get_or_insert_with(&self, key: &K, compute: impl FnOnce() -> V) -> V {
        if let Some(v) = self.get(key) {
            return v;
        }
        let v = compute();
        self.insert(key.clone(), v.clone());
        v
    }

    /// Total live entries across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry (counters survive).
    pub fn clear(&self) {
        for s in self.shards.iter() {
            s.write().clear();
        }
    }

    /// Counter snapshot including the live entry count.
    pub fn stats(&self) -> CacheStats {
        self.counters.snapshot(self.len())
    }
}

/// A truncated multi-source shortest-path distance map.
///
/// Contains exactly the nodes *settled* by a Dijkstra run from the source
/// set: every node within [`radius`](Self::radius) of the sources carries
/// its true distance, unless the map is [`capped`](Self::capped).
#[derive(Debug)]
pub struct DistanceMap {
    dist: FxHashMap<NodeId, u32>,
    radius: u32,
    exhausted: bool,
    capped: bool,
}

impl DistanceMap {
    /// Distance from the source set to `node`, if settled.
    #[inline]
    pub fn get(&self, node: NodeId) -> Option<u32> {
        self.dist.get(&node).copied()
    }

    /// Iterate over settled `(node, distance)` pairs (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, u32)> + '_ {
        self.dist.iter().map(|(&n, &d)| (n, d))
    }

    /// Number of settled nodes.
    pub fn len(&self) -> usize {
        self.dist.len()
    }

    /// True when nothing was settled (only possible for an empty source
    /// set).
    pub fn is_empty(&self) -> bool {
        self.dist.is_empty()
    }

    /// The map is complete for all nodes within this distance.
    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// The frontier ran out: the whole reachable component is settled.
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// The node budget cut the search before `radius` was reached; the map
    /// is *not* complete and callers must fall back to a direct traversal.
    pub fn capped(&self) -> bool {
        self.capped
    }

    /// True when every node within `radius` is guaranteed present.
    pub fn covers(&self, radius: u32) -> bool {
        self.exhausted || (!self.capped && self.radius >= radius)
    }

    /// Count settled nodes within `radius` (budget accounting).
    pub fn settled_within(&self, radius: u32) -> usize {
        self.dist.values().filter(|&&d| d <= radius).count()
    }
}

/// Run a truncated multi-source Dijkstra: settle every node within
/// `radius` of `sources`, stopping early after `max_nodes` settlements.
pub fn truncated_distances(
    graph: &KnowledgeGraph,
    sources: &[NodeId],
    radius: u32,
    max_nodes: usize,
) -> DistanceMap {
    let mut dist: FxHashMap<NodeId, u32> = FxHashMap::default();
    let mut settled: FxHashMap<NodeId, u32> = FxHashMap::default();
    let mut heap: BinaryHeap<Reverse<(u32, NodeId)>> = BinaryHeap::new();
    for &s in sources {
        if graph.contains(s) {
            dist.insert(s, 0);
            heap.push(Reverse((0, s)));
        }
    }
    let mut exhausted = true;
    let mut capped = false;
    let mut radius = radius;
    while let Some(Reverse((d, v))) = heap.pop() {
        if settled.contains_key(&v) || dist.get(&v) != Some(&d) {
            continue; // stale lazy-deleted entry
        }
        if d > radius {
            exhausted = false;
            break;
        }
        if settled.len() >= max_nodes {
            // Budget hit mid-distance: completeness only holds strictly
            // below the current frontier distance.
            capped = true;
            exhausted = false;
            radius = d.saturating_sub(1);
            break;
        }
        settled.insert(v, d);
        for e in graph.neighbors(v) {
            let nd = d + e.weight;
            if !settled.contains_key(&e.to) && dist.get(&e.to).is_none_or(|&cur| nd < cur) {
                dist.insert(e.to, nd);
                heap.push(Reverse((nd, e.to)));
            }
        }
    }
    DistanceMap {
        dist: settled,
        radius,
        exhausted,
        capped,
    }
}

/// A sharded, bounded memo of [`DistanceMap`]s keyed by source set.
///
/// Keys are the sorted, deduplicated interned node ids of a source set
/// (the `S(l)` of one entity label), so every label resolving to the same
/// nodes shares one entry. An entry computed to a deeper radius than
/// requested is a hit; a shallower entry is recomputed at the deeper
/// radius and replaces the old map.
#[derive(Debug)]
pub struct DistanceCache {
    inner: ShardedCache<Box<[NodeId]>, Arc<DistanceMap>>,
}

impl DistanceCache {
    /// A cache bounded to `capacity` source sets.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: ShardedCache::new(capacity),
        }
    }

    /// The canonical cache key for a source set.
    pub fn key_for(sources: &[NodeId]) -> Box<[NodeId]> {
        let mut key: Vec<NodeId> = sources.to_vec();
        key.sort_unstable();
        key.dedup();
        key.into_boxed_slice()
    }

    /// The distance map for `sources`, complete to at least `radius`
    /// (unless capped by `max_nodes`). Served from cache when a map of
    /// sufficient depth exists; otherwise computed and cached.
    pub fn distances(
        &self,
        graph: &KnowledgeGraph,
        sources: &[NodeId],
        radius: u32,
        max_nodes: usize,
    ) -> Arc<DistanceMap> {
        let key = Self::key_for(sources);
        if let Some(m) = self
            .inner
            .get_where(&key, |m| m.covers(radius) || (m.capped && m.len() >= max_nodes))
        {
            return m;
        }
        // Nothing cached, or the cached map is too shallow: (re)compute at
        // the requested depth and replace.
        let m = Arc::new(truncated_distances(graph, &key, radius, max_nodes));
        self.inner.insert(key, m.clone());
        m
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Number of cached source sets.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Invalidate everything (call when the underlying graph is replaced).
    pub fn clear(&self) {
        self.inner.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::graph::EntityType;
    use crate::traverse::dijkstra_distances;

    fn chain(n: usize) -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..n)
            .map(|i| b.add_node(&format!("n{i}"), EntityType::Gpe))
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1], "p", 1);
        }
        b.freeze()
    }

    #[test]
    fn truncated_matches_full_dijkstra_within_radius() {
        let g = chain(10);
        let m = truncated_distances(&g, &[NodeId(0)], 4, usize::MAX);
        let full = dijkstra_distances(&g, NodeId(0));
        for (node, d) in m.iter() {
            assert_eq!(u64::from(d), full[&node]);
        }
        for i in 0..=4u32 {
            assert_eq!(m.get(NodeId(i)), Some(i), "node within radius missing");
        }
        assert!(m.get(NodeId(6)).is_none(), "beyond-radius node settled");
        assert!(m.covers(4));
        assert!(!m.covers(5));
        assert!(!m.exhausted());
    }

    #[test]
    fn exhaustion_detected_on_small_component() {
        let g = chain(4);
        let m = truncated_distances(&g, &[NodeId(0)], 100, usize::MAX);
        assert!(m.exhausted());
        assert!(m.covers(u32::MAX));
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn multi_source_takes_minimum() {
        let g = chain(7);
        let m = truncated_distances(&g, &[NodeId(0), NodeId(6)], 10, usize::MAX);
        assert_eq!(m.get(NodeId(3)), Some(3));
        assert_eq!(m.get(NodeId(5)), Some(1));
    }

    #[test]
    fn node_budget_caps_map() {
        let g = chain(50);
        let m = truncated_distances(&g, &[NodeId(0)], 100, 5);
        assert!(m.capped());
        assert!(!m.covers(100));
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn cache_hits_on_repeat_and_on_deeper_entry() {
        let g = chain(12);
        let c = DistanceCache::new(64);
        let a = c.distances(&g, &[NodeId(0)], 6, usize::MAX);
        let s1 = c.stats();
        assert_eq!(s1.misses, 1);
        assert_eq!(s1.hits, 0);
        // Same request: hit. Shallower request: also a hit (deep map covers).
        let b = c.distances(&g, &[NodeId(0)], 6, usize::MAX);
        let sh = c.distances(&g, &[NodeId(0)], 2, usize::MAX);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(Arc::ptr_eq(&a, &sh));
        assert_eq!(c.stats().hits, 2);
        // Deeper request: recompute and replace.
        let deep = c.distances(&g, &[NodeId(0)], 11, usize::MAX);
        assert!(deep.covers(11));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn key_normalization_shares_entries() {
        let g = chain(5);
        let c = DistanceCache::new(8);
        c.distances(&g, &[NodeId(2), NodeId(0)], 4, usize::MAX);
        c.distances(&g, &[NodeId(0), NodeId(2), NodeId(0)], 4, usize::MAX);
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn clear_invalidates() {
        let g = chain(5);
        let c = DistanceCache::new(8);
        c.distances(&g, &[NodeId(0)], 4, usize::MAX);
        c.clear();
        assert!(c.is_empty());
        c.distances(&g, &[NodeId(0)], 4, usize::MAX);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn sharded_cache_bounds_and_counts() {
        let c: ShardedCache<u32, u32> = ShardedCache::with_shards(8, 4);
        for i in 0..100 {
            c.insert(i, i);
        }
        assert!(c.len() <= 8);
        let s = c.stats();
        assert!(s.evictions > 0);
        let v = c.get_or_insert_with(&7, || 700);
        let w = c.get_or_insert_with(&7, || 701);
        assert_eq!(v, w, "second lookup must hit the inserted value");
    }

    #[test]
    fn zero_capacity_sharded_cache_never_stores() {
        let c: ShardedCache<u32, u32> = ShardedCache::new(0);
        c.insert(1, 1);
        assert!(c.get(&1).is_none());
        assert_eq!(c.get_or_insert_with(&1, || 9), 9);
        assert!(c.is_empty());
    }
}
