//! Plain-text persistence for knowledge graphs.
//!
//! A line-oriented TSV format analogous to a Wikidata truthy dump:
//!
//! ```text
//! N <id> <type> <label>
//! E <src-id> <dst-id> <weight> <predicate>
//! ```
//!
//! Only forward edges are written; bi-direction is re-materialized on load
//! by [`GraphBuilder::freeze`]. Labels and predicates may contain spaces but
//! not tabs or newlines.

use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::graph::{EntityType, KnowledgeGraph, NodeId};

/// Errors from parsing the TSV triple format.
#[derive(Debug)]
pub enum TripleError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based line number and a description.
    Parse { line: usize, message: String },
}

impl std::fmt::Display for TripleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TripleError::Io(e) => write!(f, "i/o error: {e}"),
            TripleError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TripleError {}

impl From<io::Error> for TripleError {
    fn from(e: io::Error) -> Self {
        TripleError::Io(e)
    }
}

/// Serialize `graph` to the TSV format.
pub fn write_triples<W: Write>(graph: &KnowledgeGraph, out: W) -> io::Result<()> {
    let mut w = BufWriter::new(out);
    let mut line = String::new();
    for node in graph.nodes() {
        line.clear();
        let _ = write!(
            line,
            "N\t{}\t{}\t{}",
            node.0,
            graph.entity_type(node).as_str(),
            graph.label(node)
        );
        writeln!(w, "{line}")?;
    }
    for (node, alias) in graph.aliases() {
        line.clear();
        let _ = write!(line, "A\t{}\t{}", node.0, alias);
        writeln!(w, "{line}")?;
    }
    for node in graph.nodes() {
        for e in graph.neighbors(node) {
            if e.inverse {
                continue;
            }
            line.clear();
            let _ = write!(
                line,
                "E\t{}\t{}\t{}\t{}",
                node.0,
                e.to.0,
                e.weight,
                graph.resolve(e.predicate)
            );
            writeln!(w, "{line}")?;
        }
    }
    w.flush()
}

/// Serialize `graph` to a file.
pub fn save_triples(graph: &KnowledgeGraph, path: &Path) -> io::Result<()> {
    write_triples(graph, std::fs::File::create(path)?)
}

/// Parse a graph from the TSV format.
///
/// Node ids must be dense and appear in increasing order starting at 0
/// (which [`write_triples`] guarantees); edges may reference any node that
/// appears in the file.
pub fn read_triples<R: Read>(input: R) -> Result<KnowledgeGraph, TripleError> {
    let reader = BufReader::new(input);
    let mut builder = GraphBuilder::new();
    let mut edges: Vec<(u32, u32, u32, String)> = Vec::new();
    let mut aliases: Vec<(u32, String)> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line?;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split('\t');
        let tag = fields.next().unwrap_or("");
        let parse = |line: usize, message: &str| TripleError::Parse {
            line,
            message: message.to_string(),
        };
        match tag {
            "N" => {
                let id: u32 = fields
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse(lineno, "bad node id"))?;
                let ty = fields
                    .next()
                    .and_then(EntityType::parse)
                    .ok_or_else(|| parse(lineno, "bad entity type"))?;
                let label = fields
                    .next()
                    .ok_or_else(|| parse(lineno, "missing label"))?;
                if id as usize != builder.node_count() {
                    return Err(parse(lineno, "node ids must be dense and in order"));
                }
                builder.add_node(label, ty);
            }
            "E" => {
                let src: u32 = fields
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse(lineno, "bad source id"))?;
                let dst: u32 = fields
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse(lineno, "bad target id"))?;
                let weight: u32 = fields
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse(lineno, "bad weight"))?;
                let predicate = fields
                    .next()
                    .ok_or_else(|| parse(lineno, "missing predicate"))?;
                edges.push((src, dst, weight, predicate.to_string()));
            }
            "A" => {
                let node: u32 = fields
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse(lineno, "bad alias node id"))?;
                let alias = fields
                    .next()
                    .ok_or_else(|| parse(lineno, "missing alias text"))?;
                aliases.push((node, alias.to_string()));
            }
            other => {
                return Err(parse(lineno, &format!("unknown record tag {other:?}")));
            }
        }
    }
    let n = builder.node_count() as u32;
    for (lineno, (node, alias)) in aliases.iter().enumerate() {
        if *node >= n {
            return Err(TripleError::Parse {
                line: lineno + 1,
                message: "alias references unknown node".to_string(),
            });
        }
        builder.add_alias(NodeId(*node), alias);
    }
    for (lineno, (src, dst, weight, predicate)) in edges.iter().enumerate() {
        if *src >= n || *dst >= n {
            return Err(TripleError::Parse {
                line: lineno + 1,
                message: "edge references unknown node".to_string(),
            });
        }
        builder.add_edge(NodeId(*src), NodeId(*dst), predicate, *weight);
    }
    Ok(builder.freeze())
}

/// Parse a graph from a file.
pub fn load_triples(path: &Path) -> Result<KnowledgeGraph, TripleError> {
    read_triples(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn sample() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let khyber = b.add_node("Khyber", EntityType::Gpe);
        let kunar = b.add_node("Kunar", EntityType::Gpe);
        let taliban = b.add_node("Taliban", EntityType::Organization);
        b.add_edge(kunar, khyber, "shares border with", 1);
        b.add_edge(taliban, kunar, "operates in", 2);
        b.freeze()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let g = sample();
        let mut buf = Vec::new();
        write_triples(&g, &mut buf).unwrap();
        let g2 = read_triples(&buf[..]).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        for node in g.nodes() {
            assert_eq!(g.label(node), g2.label(node));
            assert_eq!(g.entity_type(node), g2.entity_type(node));
            let a: Vec<_> = g.neighbors(node).iter().map(|e| (e.to, e.weight, e.inverse)).collect();
            let b: Vec<_> = g2.neighbors(node).iter().map(|e| (e.to, e.weight, e.inverse)).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn labels_with_spaces_survive() {
        let mut b = GraphBuilder::new();
        b.add_node("Swat Valley", EntityType::Location);
        let g = b.freeze();
        let mut buf = Vec::new();
        write_triples(&g, &mut buf).unwrap();
        let g2 = read_triples(&buf[..]).unwrap();
        assert_eq!(g2.label(NodeId(0)), "Swat Valley");
    }

    #[test]
    fn aliases_survive_round_trip() {
        let mut b = GraphBuilder::new();
        let who = b.add_node("World Health Organization", EntityType::Organization);
        b.add_alias(who, "WHO");
        let g = b.freeze();
        let mut buf = Vec::new();
        write_triples(&g, &mut buf).unwrap();
        let g2 = read_triples(&buf[..]).unwrap();
        let aliases: Vec<&str> = g2.aliases_of(who).collect();
        assert_eq!(aliases, vec!["WHO"]);
    }

    #[test]
    fn alias_to_unknown_node_rejected() {
        let text = "N\t0\tGPE\tPakistan\nA\t7\tPK\n";
        assert!(read_triples(text.as_bytes()).is_err());
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# a comment\n\nN\t0\tGPE\tPakistan\n";
        let g = read_triples(text.as_bytes()).unwrap();
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn bad_tag_is_error() {
        let text = "X\t0\n";
        assert!(matches!(
            read_triples(text.as_bytes()),
            Err(TripleError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn out_of_order_node_ids_rejected() {
        let text = "N\t1\tGPE\tPakistan\n";
        assert!(read_triples(text.as_bytes()).is_err());
    }

    #[test]
    fn dangling_edge_rejected() {
        let text = "N\t0\tGPE\tPakistan\nE\t0\t5\t1\tp\n";
        assert!(read_triples(text.as_bytes()).is_err());
    }

    #[test]
    fn file_round_trip() {
        let g = sample();
        let dir = std::env::temp_dir().join("newslink_triples_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kg.tsv");
        save_triples(&g, &path).unwrap();
        let g2 = load_triples(&path).unwrap();
        assert_eq!(g2.node_count(), 3);
        std::fs::remove_file(&path).ok();
    }
}
