//! Graph traversal utilities: BFS distances and connected components.
//!
//! Shared by tests (brute-force verification of the `G*` search), the
//! synthetic-world sanity checks, and graph statistics.

use std::collections::VecDeque;

use newslink_util::FxHashMap;

use crate::graph::{KnowledgeGraph, NodeId};

/// Unweighted BFS distances from `src` over the bi-directed graph.
/// Unreachable nodes are absent from the map.
pub fn bfs_distances(graph: &KnowledgeGraph, src: NodeId) -> FxHashMap<NodeId, u32> {
    let mut dist = FxHashMap::default();
    dist.insert(src, 0);
    let mut queue = VecDeque::from([src]);
    while let Some(v) = queue.pop_front() {
        let d = dist[&v];
        for e in graph.neighbors(v) {
            dist.entry(e.to).or_insert_with(|| {
                queue.push_back(e.to);
                d + 1
            });
        }
    }
    dist
}

/// Weighted shortest-path distances from `src` (Dijkstra) over the
/// bi-directed graph.
pub fn dijkstra_distances(graph: &KnowledgeGraph, src: NodeId) -> FxHashMap<NodeId, u64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut dist: FxHashMap<NodeId, u64> = FxHashMap::default();
    dist.insert(src, 0);
    let mut heap = BinaryHeap::from([Reverse((0u64, src))]);
    while let Some(Reverse((d, v))) = heap.pop() {
        if dist.get(&v).is_some_and(|&cur| d > cur) {
            continue; // stale
        }
        for e in graph.neighbors(v) {
            let nd = d + u64::from(e.weight);
            if dist.get(&e.to).is_none_or(|&cur| nd < cur) {
                dist.insert(e.to, nd);
                heap.push(Reverse((nd, e.to)));
            }
        }
    }
    dist
}

/// Connected components (bi-directed ⇒ weak components): returns one
/// component id per node, ids dense from 0 in first-seen order, plus the
/// component count.
pub fn connected_components(graph: &KnowledgeGraph) -> (Vec<u32>, usize) {
    let n = graph.node_count();
    let mut component = vec![u32::MAX; n];
    let mut next = 0u32;
    for start in graph.nodes() {
        if component[start.index()] != u32::MAX {
            continue;
        }
        let id = next;
        next += 1;
        let mut queue = VecDeque::from([start]);
        component[start.index()] = id;
        while let Some(v) = queue.pop_front() {
            for e in graph.neighbors(v) {
                if component[e.to.index()] == u32::MAX {
                    component[e.to.index()] = id;
                    queue.push_back(e.to);
                }
            }
        }
    }
    (component, next as usize)
}

/// True when the whole graph is one component (or empty).
pub fn is_connected(graph: &KnowledgeGraph) -> bool {
    connected_components(graph).1 <= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::graph::EntityType;

    fn chain(n: usize) -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..n)
            .map(|i| b.add_node(&format!("n{i}"), EntityType::Gpe))
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1], "p", 1);
        }
        b.freeze()
    }

    #[test]
    fn bfs_on_chain() {
        let g = chain(5);
        let d = bfs_distances(&g, NodeId(0));
        for i in 0..5u32 {
            assert_eq!(d[&NodeId(i)], i);
        }
    }

    #[test]
    fn bfs_respects_bidirection() {
        let g = chain(4);
        let d = bfs_distances(&g, NodeId(3));
        assert_eq!(d[&NodeId(0)], 3);
    }

    #[test]
    fn dijkstra_uses_weights() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a", EntityType::Gpe);
        let c = b.add_node("b", EntityType::Gpe);
        let m = b.add_node("m", EntityType::Gpe);
        b.add_edge(a, c, "direct", 10);
        b.add_edge(a, m, "p", 2);
        b.add_edge(m, c, "p", 3);
        let g = b.freeze();
        let d = dijkstra_distances(&g, a);
        assert_eq!(d[&c], 5, "detour beats the weight-10 edge");
        assert_eq!(d[&m], 2);
    }

    #[test]
    fn dijkstra_agrees_with_bfs_on_unit_weights() {
        let g = chain(8);
        let bd = bfs_distances(&g, NodeId(2));
        let dd = dijkstra_distances(&g, NodeId(2));
        for (node, d) in &bd {
            assert_eq!(dd[node], u64::from(*d));
        }
    }

    #[test]
    fn components_of_disconnected_graph() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a", EntityType::Gpe);
        let c = b.add_node("b", EntityType::Gpe);
        b.add_node("isolated", EntityType::Gpe);
        b.add_edge(a, c, "p", 1);
        let g = b.freeze();
        let (comp, n) = connected_components(&g);
        assert_eq!(n, 2);
        assert_eq!(comp[0], comp[1]);
        assert_ne!(comp[0], comp[2]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn empty_and_singleton() {
        let g = GraphBuilder::new().freeze();
        assert!(is_connected(&g));
        let g = chain(1);
        assert!(is_connected(&g));
        assert_eq!(bfs_distances(&g, NodeId(0)).len(), 1);
    }

    #[test]
    fn synthetic_world_is_connected() {
        let w = crate::synth::generate(&crate::synth::SynthConfig::small(3));
        assert!(is_connected(&w.graph));
    }
}
