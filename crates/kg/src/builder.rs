//! Mutable construction of a [`KnowledgeGraph`].
//!
//! The builder accumulates nodes and forward edges, then [`freeze`]s into
//! the CSR layout, inserting the reversed twin of every edge so the frozen
//! graph is bi-directed as the paper requires.
//!
//! [`freeze`]: GraphBuilder::freeze

use crate::graph::{Edge, EntityType, KnowledgeGraph, NodeId};
use crate::interner::{StringInterner, Symbol};

/// A forward edge awaiting freeze.
#[derive(Debug, Clone, Copy)]
struct PendingEdge {
    src: NodeId,
    dst: NodeId,
    predicate: Symbol,
    weight: u32,
}

/// Incremental graph builder.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    interner: StringInterner,
    labels: Vec<Symbol>,
    types: Vec<EntityType>,
    pending: Vec<PendingEdge>,
    aliases: Vec<(NodeId, Symbol)>,
}

impl GraphBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node with `label` and `ty`, returning its id.
    ///
    /// Labels are *not* deduplicated: distinct nodes may share a label
    /// (Wikidata has many "Springfield"s); the label index maps one label to
    /// the whole set `S(l)`.
    pub fn add_node(&mut self, label: &str, ty: EntityType) -> NodeId {
        let sym = self.interner.get_or_intern(label);
        let id = NodeId(
            u32::try_from(self.labels.len()).expect("graph overflow: more than 2^32 nodes"),
        );
        self.labels.push(sym);
        self.types.push(ty);
        id
    }

    /// Add a forward relationship edge. `weight` must be positive.
    ///
    /// # Panics
    /// Panics on out-of-range node ids or zero weight (Dijkstra requires
    /// positive weights).
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, predicate: &str, weight: u32) {
        assert!(src.index() < self.labels.len(), "edge source out of range");
        assert!(dst.index() < self.labels.len(), "edge target out of range");
        assert!(weight > 0, "edge weight must be positive");
        let predicate = self.interner.get_or_intern(predicate);
        self.pending.push(PendingEdge {
            src,
            dst,
            predicate,
            weight,
        });
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Label of an already-added node.
    pub fn label(&self, node: NodeId) -> &str {
        self.interner.resolve(self.labels[node.index()])
    }

    /// Register an alternative surface form for `node` (Wikidata alias).
    /// Empty or duplicate-of-label aliases are ignored.
    pub fn add_alias(&mut self, node: NodeId, alias: &str) {
        assert!(node.index() < self.labels.len(), "alias node out of range");
        if alias.trim().is_empty() {
            return;
        }
        let sym = self.interner.get_or_intern(alias);
        if sym == self.labels[node.index()] {
            return;
        }
        self.aliases.push((node, sym));
    }

    /// Number of forward edges added so far.
    pub fn edge_count(&self) -> usize {
        self.pending.len()
    }

    /// Freeze into the immutable CSR representation, materializing the
    /// reversed twin of every forward edge.
    pub fn freeze(self) -> KnowledgeGraph {
        let n = self.labels.len();
        let forward = self.pending.len();

        // Counting sort into CSR: each pending edge contributes one entry at
        // `src` (forward) and one at `dst` (inverse twin).
        let mut degree = vec![0u32; n + 1];
        for e in &self.pending {
            degree[e.src.index() + 1] += 1;
            degree[e.dst.index() + 1] += 1;
        }
        let mut offsets = degree;
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }

        let placeholder = Edge {
            to: NodeId(0),
            predicate: Symbol(0),
            weight: 1,
            inverse: false,
        };
        let mut edges = vec![placeholder; forward * 2];
        let mut cursor = offsets.clone();
        for e in &self.pending {
            let fwd_pos = cursor[e.src.index()] as usize;
            cursor[e.src.index()] += 1;
            edges[fwd_pos] = Edge {
                to: e.dst,
                predicate: e.predicate,
                weight: e.weight,
                inverse: false,
            };
            let inv_pos = cursor[e.dst.index()] as usize;
            cursor[e.dst.index()] += 1;
            edges[inv_pos] = Edge {
                to: e.src,
                predicate: e.predicate,
                weight: e.weight,
                inverse: true,
            };
        }

        // Deterministic adjacency order (by target, predicate) regardless of
        // insertion order; simplifies tests and stabilizes traversal output.
        for v in 0..n {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            edges[lo..hi].sort_by_key(|e| (e.to, e.predicate, e.inverse));
        }

        let mut aliases = self.aliases;
        aliases.sort_unstable();
        aliases.dedup();
        KnowledgeGraph {
            interner: self.interner,
            labels: self.labels,
            types: self.types,
            offsets,
            edges,
            forward_edges: forward,
            aliases,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freeze_builds_sorted_bidirected_csr() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_node("a", EntityType::Gpe);
        let v1 = b.add_node("b", EntityType::Gpe);
        let v2 = b.add_node("c", EntityType::Gpe);
        b.add_edge(v2, v0, "p", 1);
        b.add_edge(v1, v0, "p", 1);
        let g = b.freeze();
        // v0 has two inverse edges, sorted by target.
        let n: Vec<_> = g.neighbors(v0).iter().map(|e| e.to).collect();
        assert_eq!(n, vec![v1, v2]);
        assert!(g.neighbors(v0).iter().all(|e| e.inverse));
        assert_eq!(g.neighbors(v1).len(), 1);
        assert!(!g.neighbors(v1)[0].inverse);
    }

    #[test]
    fn duplicate_labels_create_distinct_nodes() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("Springfield", EntityType::Gpe);
        let c = b.add_node("Springfield", EntityType::Gpe);
        assert_ne!(a, c);
        let g = b.freeze();
        assert_eq!(g.label(a), g.label(c));
        assert_eq!(g.label_symbol(a), g.label_symbol(c));
    }

    #[test]
    fn empty_graph_freezes() {
        let g = GraphBuilder::new().freeze();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn isolated_nodes_have_no_neighbors() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("lonely", EntityType::Person);
        let g = b.freeze();
        assert!(g.neighbors(a).is_empty());
        assert_eq!(g.degree(a), 0);
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn zero_weight_rejected() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a", EntityType::Gpe);
        let c = b.add_node("b", EntityType::Gpe);
        b.add_edge(a, c, "p", 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dangling_edge_rejected() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a", EntityType::Gpe);
        b.add_edge(a, NodeId(99), "p", 1);
    }

    #[test]
    fn aliases_round_trip_through_freeze() {
        let mut b = GraphBuilder::new();
        let who = b.add_node("World Health Organization", EntityType::Organization);
        let other = b.add_node("Somewhere", EntityType::Gpe);
        b.add_alias(who, "WHO");
        b.add_alias(who, "W.H.O.");
        b.add_alias(who, "WHO"); // duplicate collapses
        b.add_alias(who, "World Health Organization"); // same as label: ignored
        b.add_alias(other, "");
        let g = b.freeze();
        let aliases: Vec<&str> = g.aliases_of(who).collect();
        // Sorted by interning order (insertion order of first occurrence).
        assert_eq!(aliases, vec!["WHO", "W.H.O."]);
        assert_eq!(g.aliases_of(other).count(), 0);
        assert_eq!(g.aliases().count(), 2);
    }

    #[test]
    fn parallel_edges_are_preserved() {
        // Two different predicates between the same pair: both must survive,
        // giving G* its multi-path "width".
        let mut b = GraphBuilder::new();
        let a = b.add_node("a", EntityType::Person);
        let c = b.add_node("b", EntityType::Event);
        b.add_edge(a, c, "participant of", 1);
        b.add_edge(a, c, "candidate in", 1);
        let g = b.freeze();
        assert_eq!(g.neighbors(a).len(), 2);
        assert_eq!(g.neighbors(c).len(), 2);
        assert_eq!(g.edge_count(), 2);
    }
}
