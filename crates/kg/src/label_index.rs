//! Entity-label → node resolution: the paper's `S(l)`.
//!
//! §V-A: *"Given an entity l, it is mapped to a set of nodes S(l) from K
//! whose labels contain l through exact string matching."* We implement
//! this as (a) exact match on the normalized full label, unioned with (b)
//! *token containment*: nodes whose label contains the query's token
//! sequence as a contiguous run (so `Sanders` resolves to `Bernie Sanders`,
//! matching the paper's case study where one surface form maps to several
//! nodes).

use newslink_util::{FxHashMap, FxHashSet};

use crate::graph::{KnowledgeGraph, NodeId};

/// Normalize a surface form / label for matching: lowercase, collapse runs
/// of whitespace, trim.
pub fn normalize_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut pending_space = false;
    for part in s.split_whitespace() {
        if pending_space {
            out.push(' ');
        }
        for ch in part.chars() {
            out.extend(ch.to_lowercase());
        }
        pending_space = true;
    }
    out
}

/// Immutable index from normalized labels to node sets.
#[derive(Debug, Clone)]
pub struct LabelIndex {
    /// normalized full label -> nodes carrying exactly that label
    exact: FxHashMap<String, Vec<NodeId>>,
    /// normalized token -> nodes whose label contains the token
    token: FxHashMap<String, Vec<NodeId>>,
    /// longest label length in tokens (gazetteer window bound)
    max_tokens: usize,
}

impl LabelIndex {
    /// Build the index over every node label and alias in `graph`.
    pub fn build(graph: &KnowledgeGraph) -> Self {
        let mut idx = Self {
            exact: FxHashMap::default(),
            token: FxHashMap::default(),
            max_tokens: 0,
        };
        for node in graph.nodes() {
            idx.insert_surface(node, graph.label(node));
        }
        // Wikidata-style aliases resolve to the same node.
        for (node, alias) in graph.aliases() {
            idx.insert_surface(node, alias);
        }
        for bucket in idx.exact.values_mut() {
            bucket.sort_unstable();
            bucket.dedup();
        }
        idx
    }

    fn insert_surface(&mut self, node: NodeId, surface: &str) {
        let norm = normalize_label(surface);
        if norm.is_empty() {
            return;
        }
        let ntok = norm.split(' ').count();
        self.max_tokens = self.max_tokens.max(ntok);
        for tok in norm.split(' ') {
            let bucket = self.token.entry(tok.to_string()).or_default();
            // labels repeat tokens ("New York, New York"); avoid dupes
            if bucket.last() != Some(&node) {
                bucket.push(node);
            }
        }
        let bucket = self.exact.entry(norm).or_default();
        if bucket.last() != Some(&node) {
            bucket.push(node);
        }
    }

    /// Nodes whose label is exactly `surface` (normalized).
    pub fn exact(&self, surface: &str) -> &[NodeId] {
        self.exact
            .get(&normalize_label(surface))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The paper's `S(l)`: exact matches unioned with labels *containing*
    /// the surface form's token run. Results are sorted and deduplicated.
    pub fn candidates(&self, graph: &KnowledgeGraph, surface: &str) -> Vec<NodeId> {
        let norm = normalize_label(surface);
        if norm.is_empty() {
            return Vec::new();
        }
        let mut out: FxHashSet<NodeId> = FxHashSet::default();
        out.extend(self.exact.get(&norm).into_iter().flatten().copied());

        // Containment: intersect the token postings, then verify the token
        // run is contiguous in the candidate's label.
        let toks: Vec<&str> = norm.split(' ').collect();
        let postings: Option<Vec<&Vec<NodeId>>> =
            toks.iter().map(|t| self.token.get(*t)).collect();
        if let Some(mut postings) = postings {
            postings.sort_by_key(|p| p.len());
            if let Some((first, rest)) = postings.split_first() {
                'cand: for &node in first.iter() {
                    if out.contains(&node) {
                        continue;
                    }
                    for p in rest {
                        if !p.contains(&node) {
                            continue 'cand;
                        }
                    }
                    let label_hit = contains_run(&normalize_label(graph.label(node)), &toks);
                    let alias_hit = || {
                        graph
                            .aliases_of(node)
                            .any(|a| contains_run(&normalize_label(a), &toks))
                    };
                    if label_hit || alias_hit() {
                        out.insert(node);
                    }
                }
            }
        }

        let mut v: Vec<NodeId> = out.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// True when some node label matches `surface` exactly.
    pub fn has_exact(&self, surface: &str) -> bool {
        self.exact.contains_key(&normalize_label(surface))
    }

    /// Longest indexed label, in tokens — the NER gazetteer window bound.
    pub fn max_label_tokens(&self) -> usize {
        self.max_tokens
    }

    /// Iterate all normalized labels with their exact node sets (for
    /// building gazetteers).
    pub fn labels(&self) -> impl Iterator<Item = (&str, &[NodeId])> {
        self.exact.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Number of distinct normalized labels.
    pub fn len(&self) -> usize {
        self.exact.len()
    }

    /// True when the index holds no labels.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty()
    }
}

/// Does `label` (normalized, space-separated) contain `toks` as a contiguous
/// token run?
fn contains_run(label: &str, toks: &[&str]) -> bool {
    let ltoks: Vec<&str> = label.split(' ').collect();
    if toks.len() > ltoks.len() {
        return false;
    }
    ltoks.windows(toks.len()).any(|w| w == toks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::graph::EntityType;

    fn world() -> (KnowledgeGraph, LabelIndex) {
        let mut b = GraphBuilder::new();
        b.add_node("Bernie Sanders", EntityType::Person);
        b.add_node("Sanders", EntityType::Person);
        b.add_node("Pakistan", EntityType::Gpe);
        b.add_node("Springfield", EntityType::Gpe);
        b.add_node("Springfield", EntityType::Gpe);
        b.add_node("New York City", EntityType::Gpe);
        let g = b.freeze();
        let idx = LabelIndex::build(&g);
        (g, idx)
    }

    #[test]
    fn normalization_lowercases_and_collapses() {
        assert_eq!(normalize_label("  Upper   DIR "), "upper dir");
        assert_eq!(normalize_label("Taliban"), "taliban");
        assert_eq!(normalize_label(""), "");
        assert_eq!(normalize_label("   "), "");
    }

    #[test]
    fn exact_match_finds_all_homonyms() {
        let (_, idx) = world();
        assert_eq!(idx.exact("springfield").len(), 2);
        assert_eq!(idx.exact("SPRINGFIELD").len(), 2);
        assert_eq!(idx.exact("nowhere").len(), 0);
    }

    #[test]
    fn candidates_include_containment_matches() {
        let (g, idx) = world();
        let s = idx.candidates(&g, "Sanders");
        // exact "Sanders" node + containment in "Bernie Sanders"
        assert_eq!(s.len(), 2);
        let labels: Vec<_> = s.iter().map(|&n| g.label(n)).collect();
        assert!(labels.contains(&"Bernie Sanders"));
        assert!(labels.contains(&"Sanders"));
    }

    #[test]
    fn containment_requires_contiguous_run() {
        let (g, idx) = world();
        // "new city" is a subset of the tokens but not a contiguous run
        assert!(idx.candidates(&g, "new city").is_empty());
        assert_eq!(idx.candidates(&g, "york city").len(), 1);
        assert_eq!(idx.candidates(&g, "new york city").len(), 1);
    }

    #[test]
    fn empty_surface_yields_nothing() {
        let (g, idx) = world();
        assert!(idx.candidates(&g, "").is_empty());
        assert!(idx.candidates(&g, "   ").is_empty());
    }

    #[test]
    fn max_label_tokens_tracks_longest() {
        let (_, idx) = world();
        assert_eq!(idx.max_label_tokens(), 3); // "new york city"
    }

    #[test]
    fn has_exact_and_len() {
        let (_, idx) = world();
        assert!(idx.has_exact("pakistan"));
        assert!(!idx.has_exact("pak"));
        assert_eq!(idx.len(), 5); // springfield deduped into one label
        assert!(!idx.is_empty());
    }

    #[test]
    fn aliases_resolve_to_their_node() {
        let mut b = GraphBuilder::new();
        let who = b.add_node("World Health Organization", EntityType::Organization);
        b.add_alias(who, "WHO");
        let g = b.freeze();
        let idx = LabelIndex::build(&g);
        assert_eq!(idx.exact("who"), &[who]);
        assert_eq!(idx.candidates(&g, "WHO"), vec![who]);
        // Token containment inside an alias works too.
        let c = idx.candidates(&g, "health organization");
        assert_eq!(c, vec![who]);
    }

    #[test]
    fn candidates_sorted_and_unique() {
        let (g, idx) = world();
        let c = idx.candidates(&g, "springfield");
        assert_eq!(c.len(), 2);
        assert!(c[0] < c[1]);
    }
}
