//! Entity-label → node resolution: the paper's `S(l)`.
//!
//! §V-A: *"Given an entity l, it is mapped to a set of nodes S(l) from K
//! whose labels contain l through exact string matching."* We implement
//! this as (a) exact match on the normalized full label, unioned with (b)
//! *token containment*: nodes whose label contains the query's token
//! sequence as a contiguous run (so `Sanders` resolves to `Bernie Sanders`,
//! matching the paper's case study where one surface form maps to several
//! nodes).
//!
//! Two interchangeable backends implement [`LabelResolver`] behind the
//! [`LabelIndex`] enum:
//!
//! - [`HashLabelIndex`] — the original two-`FxHashMap` build. Simple,
//!   fast, memory-hungry; it is the *oracle* the property tests compare
//!   against.
//! - [`crate::fst_index::FstLabelIndex`] — a byte-trie automaton
//!   ([`newslink_util::fst`]) over the sorted surface forms with a packed
//!   postings arena, serializable as checksummed sections and readable
//!   zero-copy from an mmap (DESIGN.md §6j). This is the backend that
//!   survives Wikidata-scale label sets.

use std::borrow::Cow;

use newslink_util::{FxHashMap, FxHashSet};

use crate::fst_index::{FstLabelIndex, PackedPostings};
use crate::graph::{KnowledgeGraph, NodeId};

/// Normalize a surface form / label for matching: lowercase, collapse runs
/// of whitespace, trim.
///
/// Already-normalized input (every probe on the gazetteer hot path, which
/// joins pre-lowercased tokens with single spaces) is returned borrowed —
/// no allocation.
pub fn normalize_label(s: &str) -> Cow<'_, str> {
    if is_normalized(s) {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len());
    let mut pending_space = false;
    for part in s.split_whitespace() {
        if pending_space {
            out.push(' ');
        }
        for ch in part.chars() {
            out.extend(ch.to_lowercase());
        }
        pending_space = true;
    }
    Cow::Owned(out)
}

/// True when `normalize_label` would return `s` unchanged: no leading,
/// trailing or doubled spaces, no non-space whitespace, and every char
/// already its own full lowercase mapping.
fn is_normalized(s: &str) -> bool {
    if s.is_empty() {
        return true;
    }
    let mut prev_space = true; // a leading space is not normalized
    for ch in s.chars() {
        if ch == ' ' {
            if prev_space {
                return false;
            }
            prev_space = true;
        } else if ch.is_whitespace() {
            return false;
        } else {
            let mut lc = ch.to_lowercase();
            if lc.next() != Some(ch) || lc.next().is_some() {
                return false;
            }
            prev_space = false;
        }
    }
    !prev_space // a trailing space is not normalized
}

/// The node set behind one surface form, iterated without materializing.
///
/// The hash backend yields from an in-memory slice; the FST backend
/// decodes delta varints straight out of the (possibly memory-mapped)
/// postings arena. Both yield ascending, deduplicated [`NodeId`]s.
#[derive(Debug, Clone)]
pub enum Postings<'a> {
    /// Borrowed slice of node ids (hash backend).
    Slice(std::slice::Iter<'a, NodeId>),
    /// Delta-varint decoder over arena bytes (FST backend).
    Packed(PackedPostings<'a>),
}

impl Postings<'_> {
    /// An empty posting list.
    pub fn empty() -> Self {
        Postings::Slice([].iter())
    }
}

impl Iterator for Postings<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        match self {
            Postings::Slice(it) => it.next().copied(),
            Postings::Packed(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match self {
            Postings::Slice(it) => it.len(),
            Postings::Packed(it) => it.len(),
        };
        (n, Some(n))
    }
}

impl ExactSizeIterator for Postings<'_> {}

/// The resolution contract both backends satisfy; the oracle-parity
/// property tests are written against this trait.
pub trait LabelResolver {
    /// Nodes whose (normalized) label or alias is exactly `surface`.
    fn exact(&self, surface: &str) -> Postings<'_>;

    /// The paper's `S(l)`: exact matches unioned with labels *containing*
    /// the surface form's token run. Results are sorted and deduplicated.
    fn candidates(&self, graph: &KnowledgeGraph, surface: &str) -> Vec<NodeId>;

    /// True when some node label matches `surface` exactly.
    fn has_exact(&self, surface: &str) -> bool {
        self.exact(surface).len() > 0
    }

    /// Longest indexed label, in tokens — the NER gazetteer window bound.
    fn max_label_tokens(&self) -> usize;

    /// Number of distinct normalized surface forms.
    fn surface_count(&self) -> usize;

    /// Longest prefix `w ∈ [1, max_w]` of `tokens` (pre-lowercased, space-
    /// free) whose space-joined phrase resolves exactly to some node
    /// accepted by `searchable`. `allow_single` gates `w == 1` (the NER
    /// capitalization guard). This is the gazetteer hot path: the hash
    /// backend probes windows longest-first; the FST backend makes one
    /// forward walk over the automaton.
    fn longest_match(
        &self,
        tokens: &[&str],
        max_w: usize,
        allow_single: bool,
        searchable: &mut dyn FnMut(NodeId) -> bool,
    ) -> Option<usize>;

    /// Short name of the backend ("hash" or "fst") for metrics.
    fn backend(&self) -> &'static str;

    /// Approximate resident bytes of the resolver structures.
    fn resolver_bytes(&self) -> usize;
}

/// The original HashMap-backed index — the memory-hungry oracle.
#[derive(Debug, Clone, Default)]
pub struct HashLabelIndex {
    /// normalized full label -> nodes carrying exactly that label
    exact: FxHashMap<String, Vec<NodeId>>,
    /// normalized token -> nodes whose label contains the token
    token: FxHashMap<String, Vec<NodeId>>,
    /// longest label length in tokens (gazetteer window bound)
    max_tokens: usize,
}

impl HashLabelIndex {
    /// Build the index over every node label and alias in `graph`.
    pub fn build(graph: &KnowledgeGraph) -> Self {
        let mut idx = Self::default();
        for node in graph.nodes() {
            idx.insert_surface(node, graph.label(node));
        }
        // Wikidata-style aliases resolve to the same node.
        for (node, alias) in graph.aliases() {
            idx.insert_surface(node, alias);
        }
        for bucket in idx.exact.values_mut() {
            bucket.sort_unstable();
            bucket.dedup();
        }
        idx
    }

    fn insert_surface(&mut self, node: NodeId, surface: &str) {
        let norm = normalize_label(surface);
        if norm.is_empty() {
            return;
        }
        let ntok = norm.split(' ').count();
        self.max_tokens = self.max_tokens.max(ntok);
        for tok in norm.split(' ') {
            let bucket = self.token.entry(tok.to_string()).or_default();
            // labels repeat tokens ("New York, New York"); avoid dupes
            if bucket.last() != Some(&node) {
                bucket.push(node);
            }
        }
        let bucket = self.exact.entry(norm.into_owned()).or_default();
        if bucket.last() != Some(&node) {
            bucket.push(node);
        }
    }

    /// Every `(normalized surface, exact node set)` pair, sorted by
    /// surface — the parity view shared with the FST backend.
    pub fn surface_postings(&self) -> Vec<(String, Vec<NodeId>)> {
        let mut v: Vec<(String, Vec<NodeId>)> = self
            .exact
            .iter()
            .map(|(k, p)| (k.clone(), p.clone()))
            .collect();
        v.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Surfaces starting with `prefix` (already normalized), sorted.
    pub fn prefix_postings(&self, prefix: &str) -> Vec<(String, Vec<NodeId>)> {
        let mut v: Vec<(String, Vec<NodeId>)> = self
            .exact
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, p)| (k.clone(), p.clone()))
            .collect();
        v.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        v
    }
}

impl LabelResolver for HashLabelIndex {
    fn exact(&self, surface: &str) -> Postings<'_> {
        match self.exact.get(normalize_label(surface).as_ref()) {
            Some(v) => Postings::Slice(v.iter()),
            None => Postings::empty(),
        }
    }

    fn candidates(&self, graph: &KnowledgeGraph, surface: &str) -> Vec<NodeId> {
        let norm = normalize_label(surface);
        if norm.is_empty() {
            return Vec::new();
        }
        let mut out: FxHashSet<NodeId> = FxHashSet::default();
        out.extend(self.exact.get(norm.as_ref()).into_iter().flatten().copied());

        // Containment: intersect the token postings, then verify the token
        // run is contiguous in the candidate's label.
        let toks: Vec<&str> = norm.split(' ').collect();
        let postings: Option<Vec<&Vec<NodeId>>> =
            toks.iter().map(|t| self.token.get(*t)).collect();
        if let Some(mut postings) = postings {
            postings.sort_by_key(|p| p.len());
            if let Some((first, rest)) = postings.split_first() {
                'cand: for &node in first.iter() {
                    if out.contains(&node) {
                        continue;
                    }
                    for p in rest {
                        if !p.contains(&node) {
                            continue 'cand;
                        }
                    }
                    if surface_run_hit(graph, node, &toks) {
                        out.insert(node);
                    }
                }
            }
        }

        let mut v: Vec<NodeId> = out.into_iter().collect();
        v.sort_unstable();
        v
    }

    fn has_exact(&self, surface: &str) -> bool {
        self.exact.contains_key(normalize_label(surface).as_ref())
    }

    fn max_label_tokens(&self) -> usize {
        self.max_tokens
    }

    fn surface_count(&self) -> usize {
        self.exact.len()
    }

    fn longest_match(
        &self,
        tokens: &[&str],
        max_w: usize,
        allow_single: bool,
        searchable: &mut dyn FnMut(NodeId) -> bool,
    ) -> Option<usize> {
        let cap = max_w.min(tokens.len());
        for w in (1..=cap).rev() {
            if w == 1 && !allow_single {
                continue;
            }
            let phrase = tokens[..w].join(" ");
            if LabelResolver::exact(self, &phrase).any(&mut *searchable) {
                return Some(w);
            }
        }
        None
    }

    fn backend(&self) -> &'static str {
        "hash"
    }

    fn resolver_bytes(&self) -> usize {
        fn map_bytes(m: &FxHashMap<String, Vec<NodeId>>) -> usize {
            // hashbrown: one (K, V) slot plus one control byte per slot of
            // capacity, plus the heap behind each key and posting vec.
            let mut b = m.capacity()
                * (std::mem::size_of::<(String, Vec<NodeId>)>() + 1);
            for (k, v) in m {
                b += k.capacity() + v.capacity() * std::mem::size_of::<NodeId>();
            }
            b
        }
        std::mem::size_of::<Self>() + map_bytes(&self.exact) + map_bytes(&self.token)
    }
}

/// Does some surface of `node` (label or alias) contain `toks` as a
/// contiguous token run? Shared verification step of both backends'
/// `candidates`.
pub(crate) fn surface_run_hit(graph: &KnowledgeGraph, node: NodeId, toks: &[&str]) -> bool {
    contains_run(normalize_label(graph.label(node)).as_ref(), toks)
        || graph
            .aliases_of(node)
            .any(|a| contains_run(normalize_label(a).as_ref(), toks))
}

/// Immutable index from normalized labels to node sets, in one of two
/// interchangeable backends. The type every other crate holds: existing
/// `&LabelIndex` plumbing works with either backend.
#[derive(Debug, Clone)]
pub enum LabelIndex {
    /// HashMap-backed oracle (default; fastest to build).
    Hash(HashLabelIndex),
    /// FST automaton + packed postings arena (scales, serializes, mmaps).
    Fst(FstLabelIndex),
}

impl LabelIndex {
    /// Build the default (hash) backend over every label and alias.
    pub fn build(graph: &KnowledgeGraph) -> Self {
        LabelIndex::Hash(HashLabelIndex::build(graph))
    }

    /// Build the FST backend over every label and alias.
    pub fn build_fst(graph: &KnowledgeGraph) -> Self {
        LabelIndex::Fst(FstLabelIndex::build(graph))
    }

    /// Build the backend named by `backend` ("hash" or "fst").
    pub fn build_backend(graph: &KnowledgeGraph, backend: ResolverBackend) -> Self {
        match backend {
            ResolverBackend::Hash => Self::build(graph),
            ResolverBackend::Fst => Self::build_fst(graph),
        }
    }

    fn inner(&self) -> &dyn LabelResolver {
        match self {
            LabelIndex::Hash(h) => h,
            LabelIndex::Fst(f) => f,
        }
    }

    /// Nodes whose label is exactly `surface` (normalized).
    pub fn exact(&self, surface: &str) -> Postings<'_> {
        self.inner().exact(surface)
    }

    /// The paper's `S(l)` (see [`LabelResolver::candidates`]).
    pub fn candidates(&self, graph: &KnowledgeGraph, surface: &str) -> Vec<NodeId> {
        self.inner().candidates(graph, surface)
    }

    /// True when some node label matches `surface` exactly.
    pub fn has_exact(&self, surface: &str) -> bool {
        self.inner().has_exact(surface)
    }

    /// Longest indexed label, in tokens — the NER gazetteer window bound.
    pub fn max_label_tokens(&self) -> usize {
        self.inner().max_label_tokens()
    }

    /// See [`LabelResolver::longest_match`].
    pub fn longest_match(
        &self,
        tokens: &[&str],
        max_w: usize,
        allow_single: bool,
        searchable: &mut dyn FnMut(NodeId) -> bool,
    ) -> Option<usize> {
        self.inner()
            .longest_match(tokens, max_w, allow_single, searchable)
    }

    /// Every `(normalized surface, exact node set)` pair, sorted.
    pub fn surface_postings(&self) -> Vec<(String, Vec<NodeId>)> {
        match self {
            LabelIndex::Hash(h) => h.surface_postings(),
            LabelIndex::Fst(f) => f.surface_postings(),
        }
    }

    /// Surfaces starting with `prefix`, sorted (prefix is normalized
    /// before matching).
    pub fn prefix_postings(&self, prefix: &str) -> Vec<(String, Vec<NodeId>)> {
        let norm = normalize_label(prefix);
        match self {
            LabelIndex::Hash(h) => h.prefix_postings(norm.as_ref()),
            LabelIndex::Fst(f) => f.prefix_postings(norm.as_ref()),
        }
    }

    /// Number of distinct normalized labels.
    pub fn len(&self) -> usize {
        self.inner().surface_count()
    }

    /// True when the index holds no labels.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Short backend name for metrics ("hash" / "fst").
    pub fn backend(&self) -> &'static str {
        self.inner().backend()
    }

    /// Approximate resident bytes of the resolver structures.
    pub fn resolver_bytes(&self) -> usize {
        self.inner().resolver_bytes()
    }
}

impl LabelResolver for LabelIndex {
    fn exact(&self, surface: &str) -> Postings<'_> {
        LabelIndex::exact(self, surface)
    }
    fn candidates(&self, graph: &KnowledgeGraph, surface: &str) -> Vec<NodeId> {
        LabelIndex::candidates(self, graph, surface)
    }
    fn has_exact(&self, surface: &str) -> bool {
        LabelIndex::has_exact(self, surface)
    }
    fn max_label_tokens(&self) -> usize {
        LabelIndex::max_label_tokens(self)
    }
    fn surface_count(&self) -> usize {
        LabelIndex::len(self)
    }
    fn longest_match(
        &self,
        tokens: &[&str],
        max_w: usize,
        allow_single: bool,
        searchable: &mut dyn FnMut(NodeId) -> bool,
    ) -> Option<usize> {
        LabelIndex::longest_match(self, tokens, max_w, allow_single, searchable)
    }
    fn backend(&self) -> &'static str {
        LabelIndex::backend(self)
    }
    fn resolver_bytes(&self) -> usize {
        LabelIndex::resolver_bytes(self)
    }
}

/// Which resolver backend to build — the `--resolver` CLI knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResolverBackend {
    /// HashMap oracle.
    #[default]
    Hash,
    /// FST automaton.
    Fst,
}

impl ResolverBackend {
    /// Parse "hash" / "fst".
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "hash" => Some(ResolverBackend::Hash),
            "fst" => Some(ResolverBackend::Fst),
            _ => None,
        }
    }

    /// The canonical name.
    pub fn as_str(self) -> &'static str {
        match self {
            ResolverBackend::Hash => "hash",
            ResolverBackend::Fst => "fst",
        }
    }
}

/// Does `label` (normalized, space-separated) contain `toks` as a contiguous
/// token run?
pub(crate) fn contains_run(label: &str, toks: &[&str]) -> bool {
    let ltoks: Vec<&str> = label.split(' ').collect();
    if toks.len() > ltoks.len() {
        return false;
    }
    ltoks.windows(toks.len()).any(|w| w == toks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::graph::EntityType;

    fn world_graph() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        b.add_node("Bernie Sanders", EntityType::Person);
        b.add_node("Sanders", EntityType::Person);
        b.add_node("Pakistan", EntityType::Gpe);
        b.add_node("Springfield", EntityType::Gpe);
        b.add_node("Springfield", EntityType::Gpe);
        b.add_node("New York City", EntityType::Gpe);
        b.freeze()
    }

    fn backends(g: &KnowledgeGraph) -> Vec<LabelIndex> {
        vec![LabelIndex::build(g), LabelIndex::build_fst(g)]
    }

    #[test]
    fn normalization_lowercases_and_collapses() {
        assert_eq!(normalize_label("  Upper   DIR "), "upper dir");
        assert_eq!(normalize_label("Taliban"), "taliban");
        assert_eq!(normalize_label(""), "");
        assert_eq!(normalize_label("   "), "");
    }

    #[test]
    fn normalization_borrows_when_already_normalized() {
        for s in ["", "taliban", "upper dir", "new york city", "köln 42"] {
            assert!(
                matches!(normalize_label(s), Cow::Borrowed(_)),
                "{s:?} should borrow"
            );
        }
        for s in ["Taliban", " x", "x ", "a  b", "a\tb", "İstanbul"] {
            assert!(
                matches!(normalize_label(s), Cow::Owned(_)),
                "{s:?} should allocate"
            );
        }
    }

    #[test]
    fn normalized_cow_agrees_with_owned_path() {
        // The borrow fast path must accept exactly the fixed points of the
        // allocating path.
        for s in [
            "a b", "A b", "ß", "ẞ", "İ", "ǅungla", "x y z", "x  y", " ", "é",
        ] {
            let owned = {
                let mut out = String::new();
                let mut pending = false;
                for part in s.split_whitespace() {
                    if pending {
                        out.push(' ');
                    }
                    for ch in part.chars() {
                        out.extend(ch.to_lowercase());
                    }
                    pending = true;
                }
                out
            };
            assert_eq!(normalize_label(s).as_ref(), owned, "mismatch on {s:?}");
            assert_eq!(is_normalized(s), s == owned, "fast-path gate on {s:?}");
        }
    }

    #[test]
    fn exact_match_finds_all_homonyms() {
        let g = world_graph();
        for idx in backends(&g) {
            assert_eq!(idx.exact("springfield").len(), 2, "{}", idx.backend());
            assert_eq!(idx.exact("SPRINGFIELD").len(), 2);
            assert_eq!(idx.exact("nowhere").len(), 0);
        }
    }

    #[test]
    fn candidates_include_containment_matches() {
        let g = world_graph();
        for idx in backends(&g) {
            let s = idx.candidates(&g, "Sanders");
            // exact "Sanders" node + containment in "Bernie Sanders"
            assert_eq!(s.len(), 2, "{}", idx.backend());
            let labels: Vec<_> = s.iter().map(|&n| g.label(n)).collect();
            assert!(labels.contains(&"Bernie Sanders"));
            assert!(labels.contains(&"Sanders"));
        }
    }

    #[test]
    fn containment_requires_contiguous_run() {
        let g = world_graph();
        for idx in backends(&g) {
            // "new city" is a subset of the tokens but not a contiguous run
            assert!(idx.candidates(&g, "new city").is_empty());
            assert_eq!(idx.candidates(&g, "york city").len(), 1);
            assert_eq!(idx.candidates(&g, "new york city").len(), 1);
        }
    }

    #[test]
    fn empty_surface_yields_nothing() {
        let g = world_graph();
        for idx in backends(&g) {
            assert!(idx.candidates(&g, "").is_empty());
            assert!(idx.candidates(&g, "   ").is_empty());
        }
    }

    #[test]
    fn max_label_tokens_tracks_longest() {
        let g = world_graph();
        for idx in backends(&g) {
            assert_eq!(idx.max_label_tokens(), 3); // "new york city"
        }
    }

    #[test]
    fn has_exact_and_len() {
        let g = world_graph();
        for idx in backends(&g) {
            assert!(idx.has_exact("pakistan"));
            assert!(!idx.has_exact("pak"));
            assert_eq!(idx.len(), 5); // springfield deduped into one label
            assert!(!idx.is_empty());
        }
    }

    #[test]
    fn aliases_resolve_to_their_node() {
        let mut b = GraphBuilder::new();
        let who = b.add_node("World Health Organization", EntityType::Organization);
        b.add_alias(who, "WHO");
        let g = b.freeze();
        for idx in backends(&g) {
            assert_eq!(idx.exact("who").collect::<Vec<_>>(), vec![who]);
            assert_eq!(idx.candidates(&g, "WHO"), vec![who]);
            // Token containment inside an alias works too.
            let c = idx.candidates(&g, "health organization");
            assert_eq!(c, vec![who]);
        }
    }

    #[test]
    fn candidates_sorted_and_unique() {
        let g = world_graph();
        for idx in backends(&g) {
            let c = idx.candidates(&g, "springfield");
            assert_eq!(c.len(), 2);
            assert!(c[0] < c[1]);
        }
    }

    #[test]
    fn backends_report_identity() {
        let g = world_graph();
        let hash = LabelIndex::build(&g);
        let fst = LabelIndex::build_fst(&g);
        assert_eq!(hash.backend(), "hash");
        assert_eq!(fst.backend(), "fst");
        assert!(hash.resolver_bytes() > 0);
        assert!(fst.resolver_bytes() > 0);
    }

    #[test]
    fn surface_postings_agree_across_backends() {
        let mut b = GraphBuilder::new();
        let who = b.add_node("World Health Organization", EntityType::Organization);
        b.add_alias(who, "WHO");
        b.add_node("Sanders", EntityType::Person);
        b.add_node("Bernie Sanders", EntityType::Person);
        let g = b.freeze();
        let hash = LabelIndex::build(&g);
        let fst = LabelIndex::build_fst(&g);
        assert_eq!(hash.surface_postings(), fst.surface_postings());
        assert_eq!(
            hash.prefix_postings("Bern"),
            fst.prefix_postings("Bern"),
            "prefix listings must agree (normalized)"
        );
        assert!(!fst.prefix_postings("w").is_empty());
    }

    #[test]
    fn longest_match_agrees_across_backends() {
        let g = world_graph();
        let hash = LabelIndex::build(&g);
        let fst = LabelIndex::build_fst(&g);
        let cases: Vec<(Vec<&str>, bool)> = vec![
            (vec!["new", "york", "city", "hall"], true),
            (vec!["new", "york"], true),
            (vec!["sanders", "spoke"], true),
            (vec!["sanders", "spoke"], false),
            (vec!["unknown", "words"], true),
            (vec![], true),
        ];
        for (toks, allow_single) in cases {
            let h = hash.longest_match(&toks, 3, allow_single, &mut |_| true);
            let f = fst.longest_match(&toks, 3, allow_single, &mut |_| true);
            assert_eq!(h, f, "tokens {toks:?} allow_single={allow_single}");
        }
        // The searchable predicate gates matches in both backends.
        let toks = vec!["springfield"];
        let none_h = hash.longest_match(&toks, 3, true, &mut |_| false);
        let none_f = fst.longest_match(&toks, 3, true, &mut |_| false);
        assert_eq!(none_h, None);
        assert_eq!(none_f, None);
    }

    #[test]
    fn resolver_backend_parses() {
        assert_eq!(ResolverBackend::parse("hash"), Some(ResolverBackend::Hash));
        assert_eq!(ResolverBackend::parse("fst"), Some(ResolverBackend::Fst));
        assert_eq!(ResolverBackend::parse("trie"), None);
        assert_eq!(ResolverBackend::Fst.as_str(), "fst");
        assert_eq!(ResolverBackend::default(), ResolverBackend::Hash);
    }
}
