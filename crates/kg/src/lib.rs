//! Knowledge-graph substrate for NewsLink.
//!
//! The paper (§V) models the KG as a connected, labeled, weighted graph
//! `K(V, R)` made bi-directed by adding a reversed edge per relationship.
//! This crate provides:
//!
//! - [`graph::KnowledgeGraph`] — the frozen CSR property graph, built with
//!   [`builder::GraphBuilder`];
//! - [`label_index::LabelIndex`] — entity label → node resolution, the
//!   paper's `S(l)`;
//! - [`synth`] — a deterministic Wikidata-like world generator (the offline
//!   stand-in for the paper's Wikidata dump; see DESIGN.md §6.1);
//! - [`cache`] — the sharded [`cache::DistanceCache`] memoizing truncated
//!   traversal distance maps for the hot embedding path;
//! - [`triples`] — plain-text persistence;
//! - [`describe`] — derived entity descriptions (consumed by the QEPRF
//!   baseline);
//! - [`stats`] — descriptive statistics for reports.

#![deny(unsafe_code)]

pub mod builder;
pub mod cache;
pub mod describe;
pub mod fst_index;
pub mod graph;
pub mod ingest;
pub mod interner;
pub mod label_index;
pub mod ntriples;
pub mod reweight;
pub mod stats;
pub mod synth;
pub mod traverse;
pub mod triples;

pub use builder::GraphBuilder;
pub use cache::{truncated_distances, DistanceCache, DistanceMap, ShardedCache};
pub use graph::{Edge, EntityType, KnowledgeGraph, NodeId};
pub use interner::{StringInterner, Symbol};
pub use fst_index::{FstIndexError, FstLabelIndex, NodeMeta};
pub use ingest::{ingest_tsv, write_graph_tsv, IngestConfig, IngestError, IngestReport};
pub use label_index::{
    normalize_label, HashLabelIndex, LabelIndex, LabelResolver, Postings, ResolverBackend,
};
pub use ntriples::{read_ntriples, NtConfig};
pub use reweight::{reweight, reweight_by_predicate_rarity};
pub use stats::GraphStats;
pub use traverse::{bfs_distances, connected_components, dijkstra_distances, is_connected};
pub use synth::{EventInfo, EventKind, SynthConfig, SynthWorld};
