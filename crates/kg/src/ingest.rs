//! Streaming TSV ingest: a `wikidata-entities-index.tsv`-shaped file in,
//! a serialized label automaton out, with bounded memory in between
//! (DESIGN.md §6j).
//!
//! Line format (tab-separated, one entity per line, no header):
//!
//! ```text
//! label \t score \t id \t aliases \t description [\t type]
//! ```
//!
//! - `label` — primary surface form; must normalize to something non-empty
//! - `score` — non-negative integer popularity (parsed, carried through)
//! - `id` — external entity id (e.g. Wikidata `Q42`); must be non-empty
//! - `aliases` — `;`-separated alternative surfaces, may be empty
//! - `description` — free text, may be empty
//! - `type` — optional entity-type name (`PERSON`, `GPE`, …); defaults to
//!   [`IngestConfig::default_type`]
//!
//! Valid lines are numbered densely into [`NodeId`]s in file order.
//! Malformed lines become line-numbered [`IngestError`]s: fatal in strict
//! mode, otherwise quarantined and counted in the [`IngestReport`] — never
//! a panic, never a silent skip.
//!
//! Memory never holds a surface→nodes map. Surfaces stream into two
//! bounded sort buffers (labels, tokens) that spill sorted runs to disk
//! when full; a k-way merge feeds the sorted stream straight into
//! [`FstIndexAssembler`], whose trie builders only keep one key's path
//! open at a time.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use newslink_util::varint;

use crate::fst_index::{FstIndexAssembler, FstIndexError, FstLabelIndex};
use crate::graph::{EntityType, KnowledgeGraph, NodeId};
use crate::label_index::normalize_label;

/// What was wrong with one TSV line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineError {
    /// Wrong number of tab-separated fields (expected 5 or 6).
    FieldCount(usize),
    /// The label column normalizes to nothing.
    EmptyLabel,
    /// The score column is not a non-negative integer.
    BadScore(String),
    /// The id column is empty.
    EmptyId,
    /// The type column names no known entity type.
    BadType(String),
}

impl std::fmt::Display for LineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LineError::FieldCount(n) => write!(f, "expected 5 or 6 fields, got {n}"),
            LineError::EmptyLabel => write!(f, "label normalizes to the empty string"),
            LineError::BadScore(s) => write!(f, "unparseable score {s:?}"),
            LineError::EmptyId => write!(f, "empty entity id"),
            LineError::BadType(s) => write!(f, "unknown entity type {s:?}"),
        }
    }
}

/// Typed, line-numbered ingest failure.
#[derive(Debug)]
pub enum IngestError {
    /// I/O failure reading the input or a spill run.
    Io(io::Error),
    /// A malformed line (fatal only in strict mode).
    Line {
        /// 1-based line number in the input.
        line: u64,
        /// What was wrong.
        kind: LineError,
    },
    /// More valid lines than `NodeId` can address.
    TooManyNodes(u64),
    /// The assembler rejected the merged stream (internal invariant).
    Index(FstIndexError),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "ingest i/o: {e}"),
            IngestError::Line { line, kind } => write!(f, "line {line}: {kind}"),
            IngestError::TooManyNodes(n) => {
                write!(f, "{n} entities exceed the u32 node-id space")
            }
            IngestError::Index(e) => write!(f, "ingest assembly: {e}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<io::Error> for IngestError {
    fn from(e: io::Error) -> Self {
        IngestError::Io(e)
    }
}

impl From<FstIndexError> for IngestError {
    fn from(e: FstIndexError) -> Self {
        IngestError::Index(e)
    }
}

/// Ingest tuning knobs.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Directory for sort spill runs (default: the system temp dir).
    pub spill_dir: Option<PathBuf>,
    /// Approximate bytes a sort buffer may hold before spilling a run.
    pub run_bytes: usize,
    /// Fail on the first malformed line instead of quarantining it.
    pub strict: bool,
    /// Entity type assumed when the TSV has no sixth column.
    pub default_type: EntityType,
    /// How many quarantined line errors to retain verbatim in the report.
    pub max_quarantine_samples: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            spill_dir: None,
            run_bytes: 64 << 20,
            strict: false,
            default_type: EntityType::Organization,
            max_quarantine_samples: 5,
        }
    }
}

/// What one ingest pass did — the CLI prints this.
#[derive(Debug, Default)]
pub struct IngestReport {
    /// Input lines read.
    pub lines: u64,
    /// Valid lines, i.e. nodes created.
    pub nodes: u64,
    /// Accepted surface forms (labels + aliases, post-normalization).
    pub surfaces: u64,
    /// Malformed lines skipped (always 0 in strict mode).
    pub quarantined: u64,
    /// First few quarantined `(line number, error)` pairs.
    pub samples: Vec<(u64, LineError)>,
    /// Sorted runs spilled to disk (0 when everything fit in memory).
    pub spilled_runs: usize,
}

impl IngestReport {
    /// One-paragraph human summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "ingested {} of {} lines into {} nodes / {} surfaces ({} quarantined, {} spill runs)",
            self.nodes, self.lines, self.nodes, self.surfaces, self.quarantined, self.spilled_runs
        );
        for (line, kind) in &self.samples {
            s.push_str(&format!("\n  line {line}: {kind}"));
        }
        if self.quarantined as usize > self.samples.len() && !self.samples.is_empty() {
            s.push_str(&format!(
                "\n  … and {} more",
                self.quarantined as usize - self.samples.len()
            ));
        }
        s
    }
}

/// One parsed, validated line.
struct ParsedLine<'a> {
    label: &'a str,
    #[allow(dead_code)]
    score: u64,
    id: &'a str,
    aliases: Vec<&'a str>,
    ty: EntityType,
}

fn parse_line(line: &str, default_type: EntityType) -> Result<ParsedLine<'_>, LineError> {
    let fields: Vec<&str> = line.split('\t').collect();
    if fields.len() != 5 && fields.len() != 6 {
        return Err(LineError::FieldCount(fields.len()));
    }
    let label = fields[0].trim();
    if normalize_label(label).is_empty() {
        return Err(LineError::EmptyLabel);
    }
    let score: u64 = fields[1]
        .trim()
        .parse()
        .map_err(|_| LineError::BadScore(fields[1].trim().to_string()))?;
    let id = fields[2].trim();
    if id.is_empty() {
        return Err(LineError::EmptyId);
    }
    let aliases = fields[3]
        .split(';')
        .map(str::trim)
        .filter(|a| !a.is_empty())
        .collect();
    let ty = match fields.get(5) {
        Some(t) => EntityType::parse(t.trim()).ok_or_else(|| LineError::BadType(t.trim().to_string()))?,
        None => default_type,
    };
    Ok(ParsedLine {
        label,
        score,
        id,
        aliases,
        ty,
    })
}

/// A bounded sort buffer that spills sorted `(key, node)` runs to disk.
struct Spiller {
    buf: Vec<(String, u32)>,
    bytes: usize,
    limit: usize,
    runs: Vec<PathBuf>,
    dir: PathBuf,
    tag: &'static str,
}

impl Spiller {
    fn new(dir: &Path, tag: &'static str, limit: usize) -> Self {
        Self {
            buf: Vec::new(),
            bytes: 0,
            limit: limit.max(1 << 12),
            runs: Vec::new(),
            dir: dir.to_path_buf(),
            tag,
        }
    }

    fn push(&mut self, key: &str, node: u32) -> io::Result<()> {
        self.bytes += key.len() + std::mem::size_of::<(String, u32)>();
        self.buf.push((key.to_string(), node));
        if self.bytes >= self.limit {
            self.spill()?;
        }
        Ok(())
    }

    fn spill(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.buf.sort_unstable();
        self.buf.dedup();
        let path = self.dir.join(format!("{}-run-{:04}.tmp", self.tag, self.runs.len()));
        let mut w = BufWriter::new(std::fs::File::create(&path)?);
        for (key, node) in &self.buf {
            varint::write_str(&mut w, key)?;
            varint::write_u32(&mut w, *node)?;
        }
        w.flush()?;
        self.runs.push(path);
        self.buf.clear();
        self.bytes = 0;
        Ok(())
    }

    /// Sorted, deduplicated iteration over everything pushed. Spills the
    /// final buffer when earlier runs exist so the merge is uniform.
    fn into_stream(mut self) -> io::Result<SortedStream> {
        if self.runs.is_empty() {
            self.buf.sort_unstable();
            self.buf.dedup();
            let mut v = std::mem::take(&mut self.buf);
            v.reverse(); // pop() from the back yields ascending order
            return Ok(SortedStream {
                memory: v,
                readers: Vec::new(),
                heap: BinaryHeap::new(),
                run_count: 0,
            });
        }
        self.spill()?;
        let run_count = self.runs.len();
        let mut readers = Vec::with_capacity(run_count);
        let mut heap = BinaryHeap::new();
        for (i, path) in self.runs.iter().enumerate() {
            let mut r = RunReader {
                r: BufReader::new(std::fs::File::open(path)?),
            };
            if let Some(entry) = r.next_entry()? {
                heap.push(Reverse((entry.0, entry.1, i)));
            }
            readers.push(r);
        }
        Ok(SortedStream {
            memory: Vec::new(),
            readers,
            heap,
            run_count,
        })
    }
}

struct RunReader {
    r: BufReader<std::fs::File>,
}

impl RunReader {
    fn next_entry(&mut self) -> io::Result<Option<(String, u32)>> {
        // Probe for EOF with a one-byte read, then parse the record.
        let mut first = [0u8; 1];
        if self.r.read(&mut first)? == 0 {
            return Ok(None);
        }
        let key_len = read_varint_continuation(first[0], &mut self.r)? as usize;
        let mut key = vec![0u8; key_len];
        self.r.read_exact(&mut key)?;
        let key = String::from_utf8(key)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "run key not utf-8"))?;
        let node = varint::read_u32(&mut self.r)?;
        Ok(Some((key, node)))
    }
}

/// Finish a LEB128 read whose first byte was already consumed.
fn read_varint_continuation<R: Read>(first: u8, r: &mut R) -> io::Result<u64> {
    let mut value = u64::from(first & 0x7F);
    let mut shift = 7u32;
    let mut byte = first;
    while byte & 0x80 != 0 {
        let mut b = [0u8; 1];
        r.read_exact(&mut b)?;
        byte = b[0];
        if shift >= 63 && byte > 1 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "varint overflow"));
        }
        value |= u64::from(byte & 0x7F) << shift;
        shift += 7;
    }
    Ok(value)
}

/// Ascending `(key, node)` stream: either one sorted in-memory vec or a
/// k-way merge over spilled runs.
struct SortedStream {
    memory: Vec<(String, u32)>,
    readers: Vec<RunReader>,
    heap: BinaryHeap<Reverse<(String, u32, usize)>>,
    run_count: usize,
}

impl SortedStream {
    fn next_entry(&mut self) -> io::Result<Option<(String, u32)>> {
        if !self.readers.is_empty() {
            let Some(Reverse((key, node, i))) = self.heap.pop() else {
                return Ok(None);
            };
            if let Some((k, n)) = self.readers[i].next_entry()? {
                self.heap.push(Reverse((k, n, i)));
            }
            return Ok(Some((key, node)));
        }
        Ok(self.memory.pop())
    }
}

/// Drain `stream` into per-key groups and feed the assembler.
fn feed_groups(
    mut stream: SortedStream,
    mut push: impl FnMut(&str, &[NodeId]) -> Result<(), FstIndexError>,
) -> Result<(), IngestError> {
    let mut key: Option<String> = None;
    let mut bucket: Vec<NodeId> = Vec::new();
    while let Some((k, node)) = stream.next_entry()? {
        if key.as_deref() != Some(k.as_str()) {
            if let Some(prev) = key.take() {
                push(&prev, &bucket)?;
                bucket.clear();
            }
            key = Some(k);
        }
        // The merged stream is sorted, so duplicates are adjacent.
        if bucket.last() != Some(&NodeId(node)) {
            bucket.push(NodeId(node));
        }
    }
    if let Some(prev) = key {
        push(&prev, &bucket)?;
    }
    Ok(())
}

static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Stream a TSV from `input` into a heap-backed [`FstLabelIndex`].
///
/// Peak memory is bounded by `cfg.run_bytes` per sort buffer plus the
/// output artifact itself; any overflow external-sorts through
/// `cfg.spill_dir`.
pub fn ingest_tsv<R: BufRead>(
    input: R,
    cfg: &IngestConfig,
) -> Result<(FstLabelIndex, IngestReport), IngestError> {
    let parent = cfg
        .spill_dir
        .clone()
        .unwrap_or_else(std::env::temp_dir);
    let dir = parent.join(format!(
        "nl-ingest-{}-{}",
        std::process::id(),
        SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir)?;
    let result = ingest_tsv_in(input, cfg, &dir);
    let _ = std::fs::remove_dir_all(&dir); // best-effort spill cleanup
    result
}

fn ingest_tsv_in<R: BufRead>(
    input: R,
    cfg: &IngestConfig,
    dir: &Path,
) -> Result<(FstLabelIndex, IngestReport), IngestError> {
    let mut report = IngestReport::default();
    let mut labels = Spiller::new(dir, "label", cfg.run_bytes);
    let mut tokens = Spiller::new(dir, "token", cfg.run_bytes);
    let mut asm = FstIndexAssembler::new();

    for (i, line) in input.lines().enumerate() {
        let line = line?;
        let lineno = i as u64 + 1;
        report.lines += 1;
        let parsed = match parse_line(&line, cfg.default_type) {
            Ok(p) => p,
            Err(kind) => {
                if cfg.strict {
                    return Err(IngestError::Line { line: lineno, kind });
                }
                report.quarantined += 1;
                if report.samples.len() < cfg.max_quarantine_samples {
                    report.samples.push((lineno, kind));
                }
                continue;
            }
        };
        if report.nodes > u64::from(u32::MAX - 1) {
            return Err(IngestError::TooManyNodes(report.nodes + 1));
        }
        let node = report.nodes as u32;
        report.nodes += 1;
        asm.push_node_meta(parsed.ty, parsed.id, parsed.label);
        let add_surface = |surface: &str,
                               labels: &mut Spiller,
                               tokens: &mut Spiller,
                               report: &mut IngestReport|
         -> io::Result<()> {
            let norm = normalize_label(surface);
            if norm.is_empty() {
                return Ok(());
            }
            report.surfaces += 1;
            for tok in norm.split(' ') {
                tokens.push(tok, node)?;
            }
            labels.push(norm.as_ref(), node)?;
            Ok(())
        };
        add_surface(parsed.label, &mut labels, &mut tokens, &mut report)?;
        for alias in &parsed.aliases {
            add_surface(alias, &mut labels, &mut tokens, &mut report)?;
        }
    }

    let label_stream = labels.into_stream()?;
    let token_stream = tokens.into_stream()?;
    report.spilled_runs = label_stream.run_count + token_stream.run_count;
    feed_groups(label_stream, |k, nodes| asm.push_label(k, nodes))?;
    feed_groups(token_stream, |k, nodes| asm.push_token(k, nodes))?;
    Ok((asm.finish(), report))
}

/// Export `graph` in the ingest TSV shape (the synth world's bridge to
/// the streaming path): label, degree-as-score, `N<idx>` id, aliases,
/// a type-derived description, and the entity type name.
pub fn write_graph_tsv<W: Write>(graph: &KnowledgeGraph, w: &mut W) -> io::Result<u64> {
    let mut lines = 0u64;
    for node in graph.nodes() {
        let label = sanitize(graph.label(node));
        let aliases: Vec<String> = graph
            .aliases_of(node)
            .map(|a| sanitize(a).replace(';', ","))
            .collect();
        let ty = graph.entity_type(node);
        writeln!(
            w,
            "{}\t{}\t{}\t{}\t{} entity from the synthetic world\t{}",
            label,
            graph.degree(node),
            format_args!("N{}", node.0),
            aliases.join(";"),
            ty.as_str(),
            ty.as_str(),
        )?;
        lines += 1;
    }
    Ok(lines)
}

/// Keep the TSV well-formed whatever the label contains.
fn sanitize(s: &str) -> String {
    s.replace(['\t', '\n', '\r'], " ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::label_index::LabelResolver;
    use std::io::Cursor;

    fn ingest(tsv: &str, cfg: &IngestConfig) -> Result<(FstLabelIndex, IngestReport), IngestError> {
        ingest_tsv(Cursor::new(tsv.as_bytes().to_vec()), cfg)
    }

    const SAMPLE: &str = "\
Douglas Adams\t4200\tQ42\tAdams;DNA\tEnglish writer\tPERSON
Berlin\t9000\tQ64\t\tCapital of Germany\tGPE
World Health Organization\t7000\tQ7817\tWHO\tUN agency\tORG
";

    #[test]
    fn happy_path_resolves_labels_and_aliases() {
        let (idx, report) = ingest(SAMPLE, &IngestConfig::default()).unwrap();
        assert_eq!(report.lines, 3);
        assert_eq!(report.nodes, 3);
        assert_eq!(report.quarantined, 0);
        assert_eq!(report.surfaces, 6); // 3 labels + 3 aliases
        assert_eq!(idx.exact("douglas adams").collect::<Vec<_>>(), vec![NodeId(0)]);
        assert_eq!(idx.exact("WHO").collect::<Vec<_>>(), vec![NodeId(2)]);
        assert_eq!(idx.exact("berlin").collect::<Vec<_>>(), vec![NodeId(1)]);
        assert_eq!(idx.exact("nowhere").count(), 0);
        let meta = idx.node_meta(NodeId(0)).unwrap();
        assert_eq!(meta.id, "Q42");
        assert_eq!(meta.entity_type, EntityType::Person);
        assert_eq!(meta.label, "Douglas Adams");
    }

    #[test]
    fn malformed_lines_are_quarantined_with_line_numbers() {
        let tsv = "\
Good One\t1\tQ1\t\tok\tPERSON
only three\tfields\there
Bad Score\tNaN\tQ2\t\tok\tPERSON
\t5\tQ3\t\tempty label\tPERSON
No Id\t5\t\t\tok\tPERSON
Bad Type\t5\tQ4\t\tok\tROBOT
Good Two\t2\tQ5\t\tok\tGPE
";
        let (idx, report) = ingest(tsv, &IngestConfig::default()).unwrap();
        assert_eq!(report.lines, 7);
        assert_eq!(report.nodes, 2);
        assert_eq!(report.quarantined, 5);
        let kinds: Vec<&LineError> = report.samples.iter().map(|(_, k)| k).collect();
        assert!(matches!(kinds[0], LineError::FieldCount(3)));
        assert!(matches!(kinds[1], LineError::BadScore(_)));
        assert!(matches!(kinds[2], LineError::EmptyLabel));
        assert!(matches!(kinds[3], LineError::EmptyId));
        assert!(matches!(kinds[4], LineError::BadType(_)));
        assert_eq!(report.samples[0].0, 2, "line numbers are 1-based");
        // Quarantined lines consume no node ids: Good Two is node 1.
        assert_eq!(idx.exact("good two").collect::<Vec<_>>(), vec![NodeId(1)]);
        assert_eq!(idx.node_meta(NodeId(1)).unwrap().id, "Q5");
        assert!(report.summary().contains("5 quarantined"));
    }

    #[test]
    fn strict_mode_fails_on_first_bad_line() {
        let tsv = "Good\t1\tQ1\t\tok\tPERSON\nbroken line\n";
        let cfg = IngestConfig {
            strict: true,
            ..IngestConfig::default()
        };
        match ingest(tsv, &cfg) {
            Err(IngestError::Line { line: 2, kind: LineError::FieldCount(1) }) => {}
            other => panic!("expected strict line error, got {other:?}"),
        }
    }

    #[test]
    fn missing_type_column_uses_default() {
        let tsv = "Acme Corp\t10\tQ9\tACME\tmaker of anvils\n";
        let cfg = IngestConfig {
            default_type: EntityType::Facility,
            ..IngestConfig::default()
        };
        let (idx, _) = ingest(tsv, &cfg).unwrap();
        assert_eq!(idx.node_meta(NodeId(0)).unwrap().entity_type, EntityType::Facility);
    }

    #[test]
    fn spilled_runs_match_in_memory_sort() {
        // A tiny run budget forces many spill runs; the result must be
        // byte-identical to the all-in-memory path.
        let mut tsv = String::new();
        for i in 0..200 {
            tsv.push_str(&format!(
                "Entity {} Prime\t{}\tQ{}\tE{};Alt {}\tdesc\tPERSON\n",
                i % 37,
                i,
                i,
                i % 37,
                i % 11
            ));
        }
        let big = IngestConfig::default();
        let small = IngestConfig {
            run_bytes: 1, // clamped to the 4 KiB floor internally
            ..IngestConfig::default()
        };
        let (mem_idx, mem_report) = ingest(&tsv, &big).unwrap();
        let (spill_idx, spill_report) = ingest(&tsv, &small).unwrap();
        assert_eq!(mem_report.spilled_runs, 0);
        assert!(spill_report.spilled_runs >= 2, "expected spills");
        assert_eq!(mem_idx.surface_postings(), spill_idx.surface_postings());
        assert_eq!(mem_idx.encode(), spill_idx.encode(), "bit-identical artifacts");
    }

    #[test]
    fn graph_round_trips_through_tsv() {
        let mut b = GraphBuilder::new();
        let who = b.add_node("World Health Organization", EntityType::Organization);
        b.add_alias(who, "WHO");
        let s = b.add_node("Bernie Sanders", EntityType::Person);
        b.add_alias(s, "Bernie");
        b.add_node("Sanders", EntityType::Person);
        b.add_node("New York City", EntityType::Gpe);
        let g = b.freeze();

        let mut tsv = Vec::new();
        let lines = write_graph_tsv(&g, &mut tsv).unwrap();
        assert_eq!(lines, g.node_count() as u64);
        let (idx, report) =
            ingest_tsv(Cursor::new(tsv), &IngestConfig::default()).unwrap();
        assert_eq!(report.nodes, g.node_count() as u64);
        assert_eq!(report.quarantined, 0);

        let direct = FstLabelIndex::build(&g);
        assert_eq!(idx.surface_postings(), direct.surface_postings());
        assert_eq!(idx.max_label_tokens(), direct.max_label_tokens());
        for probe in ["sanders", "who", "new york", "bernie"] {
            assert_eq!(
                idx.candidates(&g, probe),
                direct.candidates(&g, probe),
                "{probe}"
            );
        }
        // Node metadata carries the graph's types and synthetic ids.
        assert_eq!(idx.node_meta(who).unwrap().entity_type, EntityType::Organization);
        assert_eq!(idx.node_meta(who).unwrap().id, "N0");
    }

    #[test]
    fn report_counts_empty_input() {
        let (idx, report) = ingest("", &IngestConfig::default()).unwrap();
        assert_eq!(report.lines, 0);
        assert_eq!(report.nodes, 0);
        assert_eq!(idx.surface_count(), 0);
        assert_eq!(idx.max_label_tokens(), 0);
    }
}
