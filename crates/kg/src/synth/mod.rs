//! Synthetic Wikidata-like world generation.
//!
//! The paper embeds news into the public Wikidata dump (30M nodes, 135M
//! edges), which is unavailable in this offline reproduction. This module
//! generates a deterministic world with the *structural* properties the
//! NewsLink algorithms depend on (see DESIGN.md §6.1):
//!
//! - a geographic containment spine (world → continent → country →
//!   province → city) so every node is connected and geo common-ancestors
//!   exist, mirroring the paper's Figure 1 example;
//! - typed entities across the full NER type inventory;
//! - *parallel* relationship paths (a person relates to a country both
//!   directly and through organizations/events), which is what gives `G*`
//!   its extra "width" over tree embeddings;
//! - ambiguous labels (several nodes per surface form) exercising
//!   `|S(l)| > 1`;
//! - per-event participant structure that the corpus generator turns into
//!   news documents.

pub mod names;

use newslink_util::DetRng;

use crate::builder::GraphBuilder;
use crate::graph::{EntityType, KnowledgeGraph, NodeId};

/// Predicate names used by the generator (a stable vocabulary so tests and
/// explanations can rely on them).
pub mod predicates {
    pub const LOCATED_IN: &str = "located in";
    pub const CAPITAL_OF: &str = "capital of";
    pub const SHARES_BORDER: &str = "shares border with";
    pub const CITIZEN_OF: &str = "citizen of";
    pub const MEMBER_OF: &str = "member of";
    pub const LEADER_OF: &str = "leader of";
    pub const HEADQUARTERED_IN: &str = "headquartered in";
    pub const OPERATES_IN: &str = "operates in";
    pub const PARTICIPANT_OF: &str = "participant of";
    pub const CANDIDATE_IN: &str = "candidate in";
    pub const SPOUSE_OF: &str = "spouse of";
    pub const PLAYS_FOR: &str = "plays for";
    pub const CREATED_BY: &str = "created by";
    pub const OFFICIAL_LANGUAGE: &str = "official language";
    pub const ENACTED_BY: &str = "enacted by";
    pub const PART_OF: &str = "part of";
    pub const AFFECTED: &str = "affected";
}

/// The flavor of a generated event; drives both KG structure and the news
/// templates in `newslink-corpus`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A presidential election with candidate structure (the paper's case
    /// study topic).
    Election,
    /// An armed conflict between a militant group and a state.
    Conflict,
    /// A bombing / attack in a city.
    Attack,
    /// A diplomatic summit between countries.
    Summit,
    /// A sports championship between teams.
    Championship,
}

impl EventKind {
    /// All kinds, for iteration.
    pub const ALL: [EventKind; 5] = [
        EventKind::Election,
        EventKind::Conflict,
        EventKind::Attack,
        EventKind::Summit,
        EventKind::Championship,
    ];
}

/// Structured record of one generated event, consumed by the corpus
/// generator.
#[derive(Debug, Clone)]
pub struct EventInfo {
    /// The event's node in the graph.
    pub node: NodeId,
    /// The event flavor.
    pub kind: EventKind,
    /// People and organizations linked to the event.
    pub participants: Vec<NodeId>,
    /// Places linked to the event (city, province, country).
    pub places: Vec<NodeId>,
    /// The year baked into the event name.
    pub year: u32,
}

/// Size and shape knobs for the generator. All sampling is driven by
/// `seed`, so equal configs produce byte-identical worlds.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Master seed.
    pub seed: u64,
    /// Number of continents.
    pub continents: usize,
    /// Number of countries.
    pub countries: usize,
    /// Provinces per country (inclusive range).
    pub provinces_per_country: (usize, usize),
    /// Cities per province (inclusive range).
    pub cities_per_province: (usize, usize),
    /// Number of people.
    pub people: usize,
    /// Number of organizations (parties, companies, groups, teams, agencies).
    pub organizations: usize,
    /// Number of events.
    pub events: usize,
    /// Number of works of art.
    pub works: usize,
    /// Number of laws.
    pub laws: usize,
    /// Probability that a new node reuses an existing label (ambiguity).
    pub label_ambiguity: f64,
    /// Probability of an extra border edge between provinces of a country.
    pub extra_border_prob: f64,
}

impl SynthConfig {
    /// A tiny world for unit tests (≈150 nodes).
    pub fn small(seed: u64) -> Self {
        Self {
            seed,
            continents: 2,
            countries: 4,
            provinces_per_country: (2, 3),
            cities_per_province: (1, 3),
            people: 40,
            organizations: 16,
            events: 20,
            works: 8,
            laws: 4,
            label_ambiguity: 0.05,
            extra_border_prob: 0.4,
        }
    }

    /// The default experiment world (≈6k nodes, ≈20k edges).
    pub fn medium(seed: u64) -> Self {
        Self {
            seed,
            continents: 5,
            countries: 36,
            provinces_per_country: (3, 7),
            cities_per_province: (2, 5),
            people: 2400,
            organizations: 500,
            events: 700,
            works: 260,
            laws: 90,
            label_ambiguity: 0.04,
            extra_border_prob: 0.5,
        }
    }

    /// A larger world for stress benchmarks (≈60k nodes).
    pub fn large(seed: u64) -> Self {
        Self {
            seed,
            continents: 6,
            countries: 120,
            provinces_per_country: (4, 9),
            cities_per_province: (3, 8),
            people: 30_000,
            organizations: 6_000,
            events: 8_000,
            works: 3_000,
            laws: 900,
            label_ambiguity: 0.04,
            extra_border_prob: 0.5,
        }
    }

    /// A world scaled to approximately `target_nodes` nodes (Wikidata-dump
    /// scale when asked for millions). Geography grows with the square root
    /// of the target — more countries, not absurdly deep subdivision — while
    /// people, organizations, events, works and laws absorb the remainder in
    /// the `medium` preset's proportions. The landing is approximate (the
    /// per-country province/city counts are sampled) but stays within a few
    /// percent of `target_nodes`.
    pub fn scaled(seed: u64, target_nodes: usize) -> Self {
        let target = target_nodes.max(1_000);
        let growth = target as f64 / 6_000.0;
        // With ranges (3,7)/(2,5) a country averages 1 (itself) + 5 provinces
        // + 5·3.5 cities + 1 language ≈ 25 nodes.
        let countries = ((36.0 * growth.sqrt()).round() as usize).clamp(8, 4_000);
        let continents = 6.min(countries);
        let geo = 1 + continents + countries * 25;
        let rest = target.saturating_sub(geo).max(target / 2);
        // medium ratios — people 2400 : orgs 500 : events 700 : works 260 :
        // laws 90, summing to 3950.
        Self {
            seed,
            continents,
            countries,
            provinces_per_country: (3, 7),
            cities_per_province: (2, 5),
            people: rest * 2400 / 3950,
            organizations: rest * 500 / 3950,
            events: (rest * 700 / 3950).max(1),
            works: rest * 260 / 3950,
            laws: rest * 90 / 3950,
            label_ambiguity: 0.04,
            extra_border_prob: 0.5,
        }
    }
}

/// The generated world: the frozen graph plus the structured registers the
/// corpus generator consumes.
#[derive(Debug, Clone)]
pub struct SynthWorld {
    /// The knowledge graph.
    pub graph: KnowledgeGraph,
    /// Generated events with participant structure.
    pub events: Vec<EventInfo>,
    /// Country nodes.
    pub countries: Vec<NodeId>,
    /// Province nodes.
    pub provinces: Vec<NodeId>,
    /// City nodes.
    pub cities: Vec<NodeId>,
    /// Person nodes.
    pub people: Vec<NodeId>,
    /// Organization nodes.
    pub organizations: Vec<NodeId>,
}

struct Gen {
    b: GraphBuilder,
    labels_seen: Vec<String>,
    ambiguity: f64,
}

impl Gen {
    fn node(&mut self, rng: &mut DetRng, label: String, ty: EntityType) -> NodeId {
        // With small probability reuse an earlier label so that |S(l)| > 1.
        let label = if !self.labels_seen.is_empty() && rng.chance(self.ambiguity) {
            self.labels_seen[rng.below(self.labels_seen.len())].clone()
        } else {
            self.labels_seen.push(label.clone());
            label
        };
        self.b.add_node(&label, ty)
    }

    fn fresh_node(&mut self, label: String, ty: EntityType) -> NodeId {
        self.labels_seen.push(label.clone());
        self.b.add_node(&label, ty)
    }
}

/// Generate a world from `config`.
pub fn generate(config: &SynthConfig) -> SynthWorld {
    let root_rng = DetRng::new(config.seed);
    let mut geo_rng = root_rng.fork(1);
    let mut people_rng = root_rng.fork(2);
    let mut org_rng = root_rng.fork(3);
    let mut event_rng = root_rng.fork(4);
    let mut misc_rng = root_rng.fork(5);

    let mut gen = Gen {
        b: GraphBuilder::new(),
        labels_seen: Vec::new(),
        ambiguity: config.label_ambiguity,
    };

    use predicates::*;

    // --- Geographic spine ------------------------------------------------
    let world = gen.fresh_node("Earth".to_string(), EntityType::Location);
    let mut continents = Vec::new();
    for _ in 0..config.continents.max(1) {
        let c = gen.fresh_node(names::place(&mut geo_rng), EntityType::Location);
        gen.b.add_edge(c, world, PART_OF, 1);
        continents.push(c);
    }

    let mut countries = Vec::new();
    let mut provinces = Vec::new();
    let mut cities = Vec::new();
    let mut country_provinces: Vec<Vec<NodeId>> = Vec::new();
    let mut country_cities: Vec<Vec<NodeId>> = Vec::new();
    let mut country_languages = Vec::new();

    for ci in 0..config.countries.max(1) {
        let continent = continents[ci % continents.len()];
        let cname = names::place(&mut geo_rng);
        let country = gen.fresh_node(cname.clone(), EntityType::Gpe);
        gen.b.add_edge(country, continent, LOCATED_IN, 1);
        countries.push(country);

        let lang = gen.fresh_node(
            names::language(&mut geo_rng, &cname),
            EntityType::Language,
        );
        gen.b.add_edge(country, lang, OFFICIAL_LANGUAGE, 1);
        country_languages.push(lang);

        let np = geo_rng.range(
            config.provinces_per_country.0,
            config.provinces_per_country.1 + 1,
        );
        let mut provs = Vec::with_capacity(np);
        let mut ccities = Vec::new();
        for _ in 0..np {
            let pname = names::place(&mut geo_rng);
            let prov = gen.node(&mut geo_rng, pname, EntityType::Gpe);
            gen.b.add_edge(prov, country, LOCATED_IN, 1);
            // Extra borders between sibling provinces create the short
            // multi-path structure of the paper's Figure 1.
            if let Some(&prev) = provs.last() {
                if geo_rng.chance(config.extra_border_prob) {
                    gen.b.add_edge(prov, prev, SHARES_BORDER, 1);
                }
            }
            let nc = geo_rng.range(
                config.cities_per_province.0,
                config.cities_per_province.1 + 1,
            );
            for k in 0..nc {
                let cname = names::place(&mut geo_rng);
                let city = gen.node(&mut geo_rng, cname, EntityType::Gpe);
                gen.b.add_edge(city, prov, LOCATED_IN, 1);
                if k == 0 && geo_rng.chance(0.5) {
                    gen.b.add_edge(city, country, CAPITAL_OF, 1);
                }
                ccities.push(city);
                cities.push(city);
            }
            provs.push(prov);
            provinces.push(prov);
        }
        // Ensure at least one city exists per country for anchoring.
        if ccities.is_empty() {
            let cname = names::place(&mut geo_rng);
            let city = gen.node(&mut geo_rng, cname, EntityType::Gpe);
            gen.b.add_edge(city, provs[0], LOCATED_IN, 1);
            ccities.push(city);
            cities.push(city);
        }
        country_provinces.push(provs);
        country_cities.push(ccities);
    }

    // Some cross-country borders within a continent.
    for w in countries.windows(2) {
        if geo_rng.chance(0.5) {
            gen.b.add_edge(w[0], w[1], SHARES_BORDER, 1);
        }
    }

    // --- Organizations ----------------------------------------------------
    // Kinds cycle deterministically; each org is anchored at a country/city.
    let mut organizations = Vec::new();
    let mut parties_by_country: Vec<Vec<NodeId>> = vec![Vec::new(); countries.len()];
    let mut militant_groups = Vec::new();
    let mut teams_by_country: Vec<Vec<NodeId>> = vec![Vec::new(); countries.len()];
    for oi in 0..config.organizations.max(4) {
        let ci = org_rng.below(countries.len());
        let country = countries[ci];
        let country_name = gen.b_label(country);
        let city = *org_rng.pick(&country_cities[ci]);
        let (node, is_party, is_militant, is_team) = match oi % 5 {
            0 => {
                let name = names::party(&mut org_rng, &country_name);
                let n = gen.node(&mut org_rng, name, EntityType::Organization);
                (n, true, false, false)
            }
            1 => {
                let name = names::company(&mut org_rng);
                let n = gen.node(&mut org_rng, name, EntityType::Organization);
                (n, false, false, false)
            }
            2 => {
                let pname = gen.b_label(*org_rng.pick(&country_provinces[ci]));
                let name = names::militant_group(&mut org_rng, &pname);
                let n = gen.node(&mut org_rng, name, EntityType::Norp);
                (n, false, true, false)
            }
            3 => {
                let cname = gen.b_label(city);
                let name = names::team(&mut org_rng, &cname);
                let n = gen.node(&mut org_rng, name, EntityType::Organization);
                (n, false, false, true)
            }
            _ => {
                let name = names::agency(&mut org_rng, &country_name);
                let n = gen.node(&mut org_rng, name, EntityType::Organization);
                (n, false, false, false)
            }
        };
        gen.b.add_edge(node, city, HEADQUARTERED_IN, 1);
        gen.b.add_edge(node, country, OPERATES_IN, 1);
        // Multi-word organizations get a Wikidata-style acronym alias
        // ("Pighusoush National Party" → "PNP"): real news switches
        // between the two surface forms freely.
        let acronym: String = gen
            .b
            .label(node)
            .split_whitespace()
            .filter(|w| w.len() >= 3 && w.chars().next().is_some_and(char::is_uppercase))
            .filter_map(|w| w.chars().next())
            .collect();
        if acronym.len() >= 2 {
            gen.b.add_alias(node, &acronym);
        }
        if is_militant {
            // Militant groups also operate in neighbouring provinces —
            // the Taliban/Khyber pattern of the running example.
            for _ in 0..org_rng.range(1, 3) {
                let prov = *org_rng.pick(&country_provinces[ci]);
                gen.b.add_edge(node, prov, OPERATES_IN, 1);
            }
            militant_groups.push(node);
        }
        if is_party {
            parties_by_country[ci].push(node);
        }
        if is_team {
            teams_by_country[ci].push(node);
        }
        organizations.push(node);
    }

    // --- People -----------------------------------------------------------
    let mut people = Vec::new();
    for _ in 0..config.people.max(4) {
        let ci = people_rng.below(countries.len());
        let name = names::person(&mut people_rng);
        let p = gen.node(&mut people_rng, name, EntityType::Person);
        gen.b.add_edge(p, countries[ci], CITIZEN_OF, 1);
        // Party membership gives a parallel person→country path.
        if !parties_by_country[ci].is_empty() && people_rng.chance(0.45) {
            let party = *people_rng.pick(&parties_by_country[ci]);
            gen.b.add_edge(p, party, MEMBER_OF, 1);
            if people_rng.chance(0.08) {
                gen.b.add_edge(p, party, LEADER_OF, 1);
            }
        }
        if !teams_by_country[ci].is_empty() && people_rng.chance(0.2) {
            gen.b.add_edge(p, *people_rng.pick(&teams_by_country[ci]), PLAYS_FOR, 1);
        }
        if people_rng.chance(0.15) && !people.is_empty() {
            let spouse = *people_rng.pick(&people);
            gen.b.add_edge(p, spouse, SPOUSE_OF, 1);
        }
        people.push(p);
    }

    // --- Events -----------------------------------------------------------
    let mut events = Vec::new();
    for ei in 0..config.events.max(EventKind::ALL.len()) {
        let kind = EventKind::ALL[ei % EventKind::ALL.len()];
        let year = 2008 + event_rng.below(12) as u32;
        let ci = event_rng.below(countries.len());
        let country = countries[ci];
        let country_name = gen.b_label(country);
        let city = *event_rng.pick(&country_cities[ci]);
        let city_name = gen.b_label(city);
        let mut participants = Vec::new();
        let mut places = vec![country];
        let node = match kind {
            EventKind::Election => {
                let ev = gen.fresh_node(
                    names::election(year, &country_name),
                    EntityType::Event,
                );
                gen.b.add_edge(ev, country, LOCATED_IN, 1);
                let ncand = event_rng.range(2, 5).min(people.len());
                for i in rand_distinct(&mut event_rng, people.len(), ncand) {
                    let cand = people[i];
                    gen.b.add_edge(cand, ev, CANDIDATE_IN, 1);
                    participants.push(cand);
                }
                ev
            }
            EventKind::Conflict => {
                let pname = gen.b_label(*event_rng.pick(&country_provinces[ci]));
                let ev = gen.fresh_node(
                    names::conflict(&mut event_rng, &pname),
                    EntityType::Event,
                );
                let prov = *event_rng.pick(&country_provinces[ci]);
                gen.b.add_edge(ev, prov, LOCATED_IN, 1);
                places.push(prov);
                if !militant_groups.is_empty() {
                    let group = *event_rng.pick(&militant_groups);
                    gen.b.add_edge(group, ev, PARTICIPANT_OF, 1);
                    participants.push(group);
                }
                ev
            }
            EventKind::Attack => {
                let ev = gen.fresh_node(
                    names::attack(&mut event_rng, year, &city_name),
                    EntityType::Event,
                );
                gen.b.add_edge(ev, city, LOCATED_IN, 1);
                gen.b.add_edge(ev, city, AFFECTED, 1);
                places.push(city);
                if !militant_groups.is_empty() && event_rng.chance(0.8) {
                    let group = *event_rng.pick(&militant_groups);
                    gen.b.add_edge(group, ev, PARTICIPANT_OF, 1);
                    participants.push(group);
                }
                ev
            }
            EventKind::Summit => {
                let ev = gen.fresh_node(names::summit(year, &city_name), EntityType::Event);
                gen.b.add_edge(ev, city, LOCATED_IN, 1);
                places.push(city);
                let nc = event_rng.range(2, 4).min(countries.len());
                for i in rand_distinct(&mut event_rng, countries.len(), nc) {
                    gen.b.add_edge(countries[i], ev, PARTICIPANT_OF, 1);
                    participants.push(countries[i]);
                }
                ev
            }
            EventKind::Championship => {
                let ev = gen.fresh_node(
                    names::championship(year, &country_name),
                    EntityType::Event,
                );
                gen.b.add_edge(ev, country, LOCATED_IN, 1);
                let all_teams: Vec<NodeId> =
                    teams_by_country.iter().flatten().copied().collect();
                let nt = event_rng.range(2, 4).min(all_teams.len());
                if nt > 0 {
                    for i in rand_distinct(&mut event_rng, all_teams.len(), nt) {
                        gen.b.add_edge(all_teams[i], ev, PARTICIPANT_OF, 1);
                        participants.push(all_teams[i]);
                    }
                }
                ev
            }
        };
        // Occasionally chain events ("part of" a larger event).
        if event_rng.chance(0.1) {
            if let Some(parent) = events.last() {
                let parent: &EventInfo = parent;
                gen.b.add_edge(node, parent.node, PART_OF, 1);
            }
        }
        events.push(EventInfo {
            node,
            kind,
            participants,
            places,
            year,
        });
    }

    // --- Works & laws -------------------------------------------------------
    for _ in 0..config.works {
        let ci = misc_rng.below(countries.len());
        let pname = gen.b_label(countries[ci]);
        let name = names::work(&mut misc_rng, &pname);
        let w = gen.node(&mut misc_rng, name, EntityType::WorkOfArt);
        let author = *misc_rng.pick(&people);
        gen.b.add_edge(w, author, CREATED_BY, 1);
    }
    for _ in 0..config.laws {
        let ci = misc_rng.below(countries.len());
        let cname = gen.b_label(countries[ci]);
        let name = names::law(&mut misc_rng, &cname);
        let l = gen.node(&mut misc_rng, name, EntityType::Law);
        gen.b.add_edge(l, countries[ci], ENACTED_BY, 1);
    }

    SynthWorld {
        graph: gen.b.freeze(),
        events,
        countries,
        provinces,
        cities,
        people,
        organizations,
    }
}

impl Gen {
    /// Label of an already-added node (builder-time lookup).
    fn b_label(&self, node: NodeId) -> String {
        self.b.label(node).to_string()
    }
}

/// Sample `k` distinct indices in `[0, n)`.
fn rand_distinct(rng: &mut DetRng, n: usize, k: usize) -> Vec<usize> {
    rng.sample_indices(n, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;
    use newslink_util::FxHashSet;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&SynthConfig::small(42));
        let b = generate(&SynthConfig::small(42));
        assert_eq!(a.graph.node_count(), b.graph.node_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        for node in a.graph.nodes() {
            assert_eq!(a.graph.label(node), b.graph.label(node));
        }
        assert_eq!(a.events.len(), b.events.len());
    }

    #[test]
    fn scaled_config_lands_near_target() {
        let w = generate(&SynthConfig::scaled(7, 20_000));
        let n = w.graph.node_count() as f64;
        assert!(
            (n - 20_000.0).abs() / 20_000.0 < 0.15,
            "scaled(_, 20k) produced {n} nodes"
        );
        // Million-scale configs must keep the medium ratios without ever
        // being generated here (too slow for a unit test): check arithmetic.
        let c = SynthConfig::scaled(7, 1_000_000);
        assert!(c.people > 400_000, "{}", c.people);
        assert!(c.countries >= 400 && c.countries <= 600, "{}", c.countries);
        assert!(c.events > 100_000);
        // And scaling is monotone in the target.
        let small = SynthConfig::scaled(7, 10_000);
        assert!(small.people < c.people && small.countries < c.countries);
    }

    #[test]
    fn scaled_generation_is_deterministic() {
        let a = generate(&SynthConfig::scaled(11, 5_000));
        let b = generate(&SynthConfig::scaled(11, 5_000));
        assert_eq!(a.graph.node_count(), b.graph.node_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&SynthConfig::small(1));
        let b = generate(&SynthConfig::small(2));
        let differing = a
            .graph
            .nodes()
            .take(50)
            .filter(|&n| b.graph.contains(n) && a.graph.label(n) != b.graph.label(n))
            .count();
        assert!(differing > 10);
    }

    #[test]
    fn world_is_connected() {
        let w = generate(&SynthConfig::small(7));
        let g = &w.graph;
        let mut seen = vec![false; g.node_count()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut visited = 1;
        while let Some(v) = stack.pop() {
            for e in g.neighbors(v) {
                if !seen[e.to.index()] {
                    seen[e.to.index()] = true;
                    visited += 1;
                    stack.push(e.to);
                }
            }
        }
        assert_eq!(visited, g.node_count(), "world must be connected");
    }

    #[test]
    fn registers_are_consistent() {
        let w = generate(&SynthConfig::small(11));
        let g = &w.graph;
        for &c in &w.countries {
            assert_eq!(g.entity_type(c), EntityType::Gpe);
        }
        for &p in &w.people {
            assert_eq!(g.entity_type(p), EntityType::Person);
        }
        for ev in &w.events {
            assert_eq!(g.entity_type(ev.node), EntityType::Event);
            assert!(!ev.places.is_empty());
            for &pl in &ev.places {
                assert!(g.contains(pl));
            }
        }
    }

    #[test]
    fn events_cover_all_kinds() {
        let w = generate(&SynthConfig::small(13));
        let kinds: FxHashSet<_> = w.events.iter().map(|e| e.kind).collect();
        assert_eq!(kinds.len(), EventKind::ALL.len());
    }

    #[test]
    fn elections_have_candidates() {
        let w = generate(&SynthConfig::small(17));
        let election = w
            .events
            .iter()
            .find(|e| e.kind == EventKind::Election)
            .expect("some election generated");
        assert!(election.participants.len() >= 2);
        for &cand in &election.participants {
            assert_eq!(w.graph.entity_type(cand), EntityType::Person);
        }
    }

    #[test]
    fn ambiguous_labels_exist_at_medium_scale() {
        let w = generate(&SynthConfig::medium(23));
        let s = GraphStats::compute(&w.graph);
        assert!(
            s.ambiguous_nodes > 0,
            "label ambiguity knob must produce homonyms"
        );
        assert!(s.nodes > 4000, "medium world too small: {}", s.nodes);
    }

    #[test]
    fn graph_has_parallel_structure() {
        // At least one node pair should be connected by 2+ distinct paths of
        // length <= 2 — the width property G* exploits. Cheap proxy: some
        // node has two distinct neighbors that share another neighbor.
        let w = generate(&SynthConfig::small(29));
        let g = &w.graph;
        let mut found = false;
        'outer: for v in g.nodes() {
            let ns: Vec<NodeId> = g.neighbors(v).iter().map(|e| e.to).collect();
            for (i, &a) in ns.iter().enumerate() {
                for &b in &ns[i + 1..] {
                    if a == b {
                        continue;
                    }
                    let an: FxHashSet<NodeId> =
                        g.neighbors(a).iter().map(|e| e.to).collect();
                    if g.neighbors(b).iter().any(|e| e.to != v && an.contains(&e.to)) {
                        found = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(found, "no diamond structure found in synthetic world");
    }

    #[test]
    fn organizations_carry_acronym_aliases() {
        let w = generate(&SynthConfig::small(47));
        let with_alias = w
            .organizations
            .iter()
            .filter(|&&o| w.graph.aliases_of(o).next().is_some())
            .count();
        assert!(with_alias > 0, "expected some acronym aliases");
        // Every alias is an uppercase acronym at least 2 chars long.
        for (_, alias) in w.graph.aliases() {
            assert!(alias.len() >= 2);
            assert!(alias.chars().all(|c| c.is_uppercase()));
        }
    }

    #[test]
    fn all_searchable_types_present_at_medium_scale() {
        let w = generate(&SynthConfig::medium(31));
        let s = GraphStats::compute(&w.graph);
        for ty in [
            EntityType::Person,
            EntityType::Gpe,
            EntityType::Organization,
            EntityType::Norp,
            EntityType::Event,
            EntityType::WorkOfArt,
            EntityType::Law,
            EntityType::Language,
            EntityType::Location,
        ] {
            assert!(s.count_of(ty) > 0, "missing type {:?}", ty);
        }
    }
}
