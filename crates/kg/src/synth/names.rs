//! Deterministic name generation for the synthetic world.
//!
//! Labels must look like natural-language proper nouns (multi-token, mixed
//! case) so that the NER gazetteer, label containment matching (`Sanders` →
//! `Bernie Sanders`) and the tokenizer are all exercised realistically.

use newslink_util::DetRng;


/// Pick a static string from a pool (avoids double-reference friction with
/// `DetRng::pick` on `&[&str]`).
fn choose<'a>(rng: &mut DetRng, items: &'a [&'a str]) -> &'a str {
    items[rng.below(items.len())]
}

const ONSETS: &[&str] = &[
    "b", "br", "ch", "d", "dr", "f", "g", "gh", "h", "j", "k", "kh", "kr", "l", "m", "n", "p",
    "q", "r", "s", "sh", "st", "t", "tr", "v", "w", "y", "z",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ai", "ei", "ou", "ia"];
const CODAS: &[&str] = &["", "n", "r", "l", "s", "t", "k", "m", "nd", "st", "sh"];

/// Generate a single capitalized pseudo-word of `syllables` syllables.
pub fn word(rng: &mut DetRng, syllables: usize) -> String {
    let mut s = String::new();
    for i in 0..syllables {
        if i > 0 || rng.chance(0.85) {
            s.push_str(choose(rng, ONSETS));
        }
        s.push_str(choose(rng, VOWELS));
        if i + 1 == syllables || rng.chance(0.35) {
            s.push_str(choose(rng, CODAS));
        }
    }
    capitalize(&s)
}

/// Capitalize the first letter of an ASCII-ish string.
pub fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().chain(chars).collect(),
        None => String::new(),
    }
}

/// A place name: one or occasionally two words ("Khyber", "Swat Valley").
pub fn place(rng: &mut DetRng) -> String {
    let syl = rng.range(2, 4);
    let head = word(rng, syl);
    if rng.chance(0.15) {
        let suffix = choose(rng, &["Valley", "Hills", "Coast", "Heights", "Plains"]);
        format!("{head} {suffix}")
    } else {
        head
    }
}

/// A person name: given + family name.
pub fn person(rng: &mut DetRng) -> String {
    let s1 = rng.range(2, 3);
    let given = word(rng, s1);
    let s2 = rng.range(2, 4);
    let family = word(rng, s2);
    format!("{given} {family}")
}

/// A political party name anchored at a place.
pub fn party(rng: &mut DetRng, place: &str) -> String {
    let flavor = choose(rng, &[
        "National", "People's", "Democratic", "United", "Progressive", "Liberty",
    ]);
    let kind = choose(rng, &["Party", "Movement", "Alliance", "Front"]);
    format!("{place} {flavor} {kind}")
}

/// A company name.
pub fn company(rng: &mut DetRng) -> String {
    let syl = rng.range(2, 4);
    let stem = word(rng, syl);
    let kind = choose(rng, &["Corporation", "Industries", "Group", "Holdings", "Systems"]);
    format!("{stem} {kind}")
}

/// A militant / activist group name.
pub fn militant_group(rng: &mut DetRng, place: &str) -> String {
    match rng.below(3) {
        0 => format!("{place} Liberation Front"),
        1 => format!("Army of {place}"),
        _ => {
            let syl = rng.range(2, 4);
            word(rng, syl)
        }
    }
}

/// A sports team name anchored at a city.
pub fn team(rng: &mut DetRng, city: &str) -> String {
    let mascot = choose(rng, &["Lions", "Eagles", "Wolves", "Falcons", "Titans", "Rovers"]);
    format!("{city} {mascot}")
}

/// A news agency / institution name.
pub fn agency(rng: &mut DetRng, place: &str) -> String {
    let kind = choose(rng, &["Ministry", "Bureau", "Institute", "Commission", "Authority"]);
    let domain = choose(rng, &["Defense", "Interior", "Trade", "Health", "Energy", "Justice"]);
    format!("{place} {kind} of {domain}")
}

/// A language name derived from a country name.
pub fn language(rng: &mut DetRng, country: &str) -> String {
    let base: String = country
        .chars()
        .take_while(|c| c.is_alphabetic())
        .collect();
    let suffix = choose(rng, &["i", "ese", "ian", "ish"]);
    format!("{base}{suffix}")
}

/// A work-of-art title.
pub fn work(rng: &mut DetRng, place: &str) -> String {
    match rng.below(3) {
        0 => format!("The {} of {place}", choose(rng, &["Song", "Fall", "Voice", "Shadow", "Road"])),
        1 => format!("{} Nights", place),
        _ => {
            let syl = rng.range(3, 5);
            word(rng, syl)
        }
    }
}

/// An election name.
pub fn election(year: u32, country: &str) -> String {
    format!("{year} {country} presidential election")
}

/// An armed-conflict name.
pub fn conflict(rng: &mut DetRng, place: &str) -> String {
    match rng.below(3) {
        0 => format!("Battle of {place}"),
        1 => format!("{place} insurgency"),
        _ => format!("Siege of {place}"),
    }
}

/// An attack / bombing event name.
pub fn attack(rng: &mut DetRng, year: u32, place: &str) -> String {
    match rng.below(2) {
        0 => format!("{year} {place} bombing"),
        _ => format!("{year} {place} attack"),
    }
}

/// A summit / conference event name.
pub fn summit(year: u32, place: &str) -> String {
    format!("{year} {place} summit")
}

/// A sports championship name.
pub fn championship(year: u32, place: &str) -> String {
    format!("{year} {place} championship")
}

/// A law name.
pub fn law(rng: &mut DetRng, country: &str) -> String {
    let domain = choose(rng, &["Security", "Trade", "Reform", "Energy", "Press Freedom"]);
    format!("{country} {domain} Act")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_deterministic() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(1);
        for _ in 0..20 {
            assert_eq!(person(&mut a), person(&mut b));
        }
    }

    #[test]
    fn words_are_capitalized_and_nonempty() {
        let mut rng = DetRng::new(2);
        for _ in 0..100 {
            let w = word(&mut rng, 2);
            assert!(!w.is_empty());
            assert!(w.chars().next().unwrap().is_uppercase());
        }
    }

    #[test]
    fn person_names_have_two_tokens() {
        let mut rng = DetRng::new(3);
        for _ in 0..50 {
            assert_eq!(person(&mut rng).split(' ').count(), 2);
        }
    }

    #[test]
    fn structured_names_embed_anchor() {
        let mut rng = DetRng::new(4);
        assert!(party(&mut rng, "Khyber").starts_with("Khyber"));
        assert!(team(&mut rng, "Lahore").starts_with("Lahore"));
        assert_eq!(election(2016, "Pakistan"), "2016 Pakistan presidential election");
        assert!(attack(&mut rng, 2015, "Peshawar").contains("Peshawar"));
        assert!(law(&mut rng, "Pakistan").starts_with("Pakistan"));
    }

    #[test]
    fn capitalize_handles_empty() {
        assert_eq!(capitalize(""), "");
        assert_eq!(capitalize("x"), "X");
    }

    #[test]
    fn names_vary() {
        let mut rng = DetRng::new(5);
        let names: std::collections::HashSet<String> = (0..50).map(|_| place(&mut rng)).collect();
        assert!(names.len() > 40, "only {} distinct place names", names.len());
    }
}
