//! FST-backed label resolution: the automaton behind `S(l)` at
//! Wikidata scale (DESIGN.md §6j).
//!
//! Two byte-trie automata ([`newslink_util::fst`]) over one packed
//! postings arena:
//!
//! - the **label trie** maps every normalized surface form (label or
//!   alias) to its exact node set;
//! - the **token trie** maps every distinct token to the nodes whose
//!   surfaces contain it — the containment pre-filter of
//!   `candidates`, intersected and then verified against the graph
//!   exactly like the HashMap oracle.
//!
//! Automaton values are byte offsets into the arena; a posting list is a
//! varint count followed by ascending delta varints. Nothing in the
//! serialized form is a pointer, so the whole index round-trips through
//! one checksummed blob ([`FstLabelIndex::encode`]/[`FstLabelIndex::decode`])
//! that reads zero-copy from an mmap via the v4 `Directory` idiom:
//! 8-aligned sections addressed by an `offset|len|xxh64` tail directory,
//! CRC-32 over the directory, magic at both ends.
//!
//! An optional node table (populated by `kg::ingest`, empty when built
//! from a [`KnowledgeGraph`]) carries per-node entity type, external id
//! and display label so a standalone artifact can answer lookups with no
//! graph in memory.

use newslink_util::fst::{Fst, FstBuilder};
use newslink_util::{varint, xxh64, Bytes, FxHashSet};

use crate::graph::{EntityType, KnowledgeGraph, NodeId};
use crate::label_index::{normalize_label, surface_run_hit, LabelResolver, Postings};

/// Leading magic of a serialized label automaton blob.
pub const FST_INDEX_MAGIC: &[u8; 8] = b"NLKGFST1";
/// Trailing magic.
pub const FST_INDEX_FOOTER: &[u8; 8] = b"NLKGEND1";
/// Serialized format version.
pub const FST_INDEX_VERSION: u64 = 1;
/// Section order: meta, label trie, token trie, arena, node table.
const SECTION_COUNT: usize = 5;
const SECTION_NAMES: [&str; SECTION_COUNT] = ["meta", "label_fst", "token_fst", "arena", "nodes"];
/// Tail size: directory entries + crc32 + count + footer magic.
const TAIL_BYTES: usize = SECTION_COUNT * 24 + 4 + 4 + 8;

/// Errors from [`FstLabelIndex::decode`] and the assembler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FstIndexError {
    /// Blob shorter than header + tail.
    TooShort,
    /// Leading magic mismatch.
    BadMagic,
    /// Trailing magic mismatch.
    BadFooter,
    /// Tail directory count is not the expected section count.
    BadSectionCount(u32),
    /// CRC-32 over the tail directory failed.
    DirectoryChecksum,
    /// XXH64 over one section payload failed.
    SectionChecksum(&'static str),
    /// A section range points outside the blob.
    SectionOutOfBounds(&'static str),
    /// Unknown format version.
    UnsupportedVersion(u64),
    /// Structural decode failure.
    Corrupt(&'static str),
    /// Assembler fed out-of-order or duplicate surfaces.
    UnsortedInput(String),
}

impl std::fmt::Display for FstIndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FstIndexError::TooShort => write!(f, "label automaton blob too short"),
            FstIndexError::BadMagic => write!(f, "label automaton magic mismatch"),
            FstIndexError::BadFooter => write!(f, "label automaton footer mismatch"),
            FstIndexError::BadSectionCount(n) => {
                write!(f, "label automaton section count {n} (expected {SECTION_COUNT})")
            }
            FstIndexError::DirectoryChecksum => {
                write!(f, "label automaton directory CRC mismatch")
            }
            FstIndexError::SectionChecksum(s) => {
                write!(f, "label automaton section '{s}' checksum mismatch")
            }
            FstIndexError::SectionOutOfBounds(s) => {
                write!(f, "label automaton section '{s}' out of bounds")
            }
            FstIndexError::UnsupportedVersion(v) => {
                write!(f, "label automaton format version {v} unsupported")
            }
            FstIndexError::Corrupt(what) => write!(f, "label automaton corrupt: {what}"),
            FstIndexError::UnsortedInput(k) => {
                write!(f, "assembler input not strictly ascending at {k:?}")
            }
        }
    }
}

impl std::error::Error for FstIndexError {}

/// Delta-varint posting-list decoder over arena bytes.
#[derive(Debug, Clone)]
pub struct PackedPostings<'a> {
    rest: &'a [u8],
    remaining: usize,
    prev: u64,
}

impl<'a> PackedPostings<'a> {
    /// Decode the posting list starting at `offset` in `arena`.
    /// Malformed bytes yield an empty iterator (arena sections are
    /// checksummed upstream).
    pub fn at(arena: &'a [u8], offset: u64) -> Self {
        let mut rest = arena.get(offset as usize..).unwrap_or(&[]);
        let remaining = varint::read_u64(&mut rest).unwrap_or(0) as usize;
        Self {
            rest,
            remaining,
            prev: 0,
        }
    }

    /// Entries left.
    pub fn len(&self) -> usize {
        self.remaining
    }

    /// True when exhausted.
    pub fn is_empty(&self) -> bool {
        self.remaining == 0
    }
}

impl Iterator for PackedPostings<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        if self.remaining == 0 {
            return None;
        }
        match varint::read_u64(&mut self.rest) {
            Ok(delta) => {
                self.remaining -= 1;
                self.prev += delta;
                u32::try_from(self.prev).ok().map(NodeId)
            }
            Err(_) => {
                self.remaining = 0;
                None
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for PackedPostings<'_> {}

/// Append one ascending posting list to `arena`, returning its offset.
fn write_postings(arena: &mut Vec<u8>, nodes: &[NodeId]) -> u64 {
    let off = arena.len() as u64;
    varint::write_u64(arena, nodes.len() as u64).expect("vec write");
    let mut prev = 0u64;
    for &n in nodes {
        let v = u64::from(n.0);
        debug_assert!(v >= prev || prev == 0, "postings must ascend");
        varint::write_u64(arena, v - prev).expect("vec write");
        prev = v;
    }
    off
}

/// Per-node metadata from an ingest-built artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeMeta<'a> {
    /// Entity type (defaulted by the ingester when the TSV omits it).
    pub entity_type: EntityType,
    /// External id, e.g. a Wikidata `Q…` id.
    pub id: &'a str,
    /// Display label (the raw TSV label column).
    pub label: &'a str,
}

/// Streaming assembler: feeds sorted groups straight into the two trie
/// builders and the arena. `kg::ingest`'s external merge drives this, so
/// peak memory stays bounded by the *output* size, never an intermediate
/// map.
#[derive(Debug, Default)]
pub struct FstIndexAssembler {
    label_builder: FstBuilder,
    token_builder: FstBuilder,
    arena: Vec<u8>,
    max_tokens: usize,
    node_offsets: Vec<u32>,
    node_blob: Vec<u8>,
}

impl FstIndexAssembler {
    /// An empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one normalized surface with its ascending, deduplicated
    /// node set. Surfaces must arrive in strictly ascending byte order.
    pub fn push_label(&mut self, surface: &str, nodes: &[NodeId]) -> Result<(), FstIndexError> {
        let off = write_postings(&mut self.arena, nodes);
        self.label_builder
            .insert(surface.as_bytes(), off)
            .map_err(|_| FstIndexError::UnsortedInput(surface.to_string()))?;
        self.max_tokens = self.max_tokens.max(surface.split(' ').count());
        Ok(())
    }

    /// Append one token with the ascending node set whose surfaces
    /// contain it. Tokens must arrive in strictly ascending byte order
    /// (independently of labels).
    pub fn push_token(&mut self, token: &str, nodes: &[NodeId]) -> Result<(), FstIndexError> {
        let off = write_postings(&mut self.arena, nodes);
        self.token_builder
            .insert(token.as_bytes(), off)
            .map_err(|_| FstIndexError::UnsortedInput(token.to_string()))
    }

    /// Record metadata for the next node (call in NodeId order, starting
    /// at 0). Optional: indexes built from a live graph skip this.
    pub fn push_node_meta(&mut self, ty: EntityType, id: &str, label: &str) {
        self.node_offsets.push(self.node_blob.len() as u32);
        let ty_byte = EntityType::ALL
            .iter()
            .position(|t| *t == ty)
            .expect("EntityType::ALL is exhaustive") as u8;
        self.node_blob.push(ty_byte);
        varint::write_str(&mut self.node_blob, id).expect("vec write");
        varint::write_str(&mut self.node_blob, label).expect("vec write");
    }

    /// Freeze into an in-memory (heap-backed) index.
    pub fn finish(self) -> FstLabelIndex {
        let label = self.label_builder.finish().into_fst();
        let token = self.token_builder.finish().into_fst();
        let mut nodes = Vec::with_capacity(4 + self.node_offsets.len() * 4 + self.node_blob.len());
        nodes.extend_from_slice(&(self.node_offsets.len() as u32).to_le_bytes());
        for off in &self.node_offsets {
            nodes.extend_from_slice(&off.to_le_bytes());
        }
        nodes.extend_from_slice(&self.node_blob);
        FstLabelIndex {
            label_fst: label,
            token_fst: token,
            arena: Bytes::from_vec(self.arena),
            nodes: Bytes::from_vec(nodes),
            max_tokens: self.max_tokens,
        }
    }
}

/// The FST backend of [`crate::label_index::LabelIndex`].
#[derive(Debug, Clone)]
pub struct FstLabelIndex {
    label_fst: Fst,
    token_fst: Fst,
    arena: Bytes,
    /// `[count u32][offset u32 × count][entries]`, possibly empty.
    nodes: Bytes,
    max_tokens: usize,
}

impl FstLabelIndex {
    /// Build from every node label and alias in `graph` (exactly the
    /// surface set of [`crate::label_index::HashLabelIndex::build`]).
    pub fn build(graph: &KnowledgeGraph) -> Self {
        let mut surfaces: Vec<(String, NodeId)> = Vec::new();
        for node in graph.nodes() {
            let norm = normalize_label(graph.label(node));
            if !norm.is_empty() {
                surfaces.push((norm.into_owned(), node));
            }
        }
        for (node, alias) in graph.aliases() {
            let norm = normalize_label(alias);
            if !norm.is_empty() {
                surfaces.push((norm.into_owned(), node));
            }
        }
        Self::from_surface_pairs(surfaces)
    }

    /// Build from `(normalized surface, node)` pairs in any order.
    pub fn from_surface_pairs(mut surfaces: Vec<(String, NodeId)>) -> Self {
        surfaces.sort_unstable();
        surfaces.dedup();
        let mut tokens: Vec<(&str, NodeId)> = Vec::new();
        for (surface, node) in &surfaces {
            for tok in surface.split(' ') {
                tokens.push((tok, *node));
            }
        }
        tokens.sort_unstable();
        tokens.dedup();

        let mut asm = FstIndexAssembler::new();
        let push_groups = |pairs: &mut dyn Iterator<Item = (&str, NodeId)>,
                           asm: &mut FstIndexAssembler,
                           label: bool| {
            let mut key: Option<String> = None;
            let mut bucket: Vec<NodeId> = Vec::new();
            let flush = |key: &Option<String>, bucket: &mut Vec<NodeId>, asm: &mut FstIndexAssembler| {
                if let Some(k) = key {
                    let r = if label {
                        asm.push_label(k, bucket)
                    } else {
                        asm.push_token(k, bucket)
                    };
                    r.expect("pairs are sorted");
                    bucket.clear();
                }
            };
            for (k, node) in pairs {
                if key.as_deref() != Some(k) {
                    flush(&key, &mut bucket, asm);
                    key = Some(k.to_string());
                }
                bucket.push(node);
            }
            flush(&key, &mut bucket, asm);
        };
        push_groups(
            &mut surfaces.iter().map(|(k, n)| (k.as_str(), *n)),
            &mut asm,
            true,
        );
        push_groups(&mut tokens.iter().copied(), &mut asm, false);
        asm.finish()
    }

    fn exact_offset(&self, norm: &str) -> Option<u64> {
        self.label_fst.get(norm.as_bytes())
    }

    fn postings_at(&self, offset: u64) -> PackedPostings<'_> {
        PackedPostings::at(self.arena.as_slice(), offset)
    }

    /// Per-node metadata, when this index was built by `kg::ingest`.
    pub fn node_meta(&self, node: NodeId) -> Option<NodeMeta<'_>> {
        let b = self.nodes.as_slice();
        if b.len() < 4 {
            return None;
        }
        let count = u32::from_le_bytes(b[0..4].try_into().ok()?);
        if node.0 >= count {
            return None;
        }
        let at = 4 + node.0 as usize * 4;
        let off = u32::from_le_bytes(b.get(at..at + 4)?.try_into().ok()?) as usize;
        let blob = b.get(4 + count as usize * 4..)?;
        let mut cur = blob.get(off..)?;
        let ty_byte = *cur.first()?;
        cur = &cur[1..];
        let entity_type = *EntityType::ALL.get(ty_byte as usize)?;
        let id = read_borrowed_str(&mut cur)?;
        let label = read_borrowed_str(&mut cur)?;
        Some(NodeMeta {
            entity_type,
            id,
            label,
        })
    }

    /// Number of nodes described by the node table (0 for graph-built
    /// indexes).
    pub fn node_meta_count(&self) -> u32 {
        let b = self.nodes.as_slice();
        if b.len() < 4 {
            return 0;
        }
        u32::from_le_bytes(b[0..4].try_into().expect("4 bytes"))
    }

    /// Every `(surface, exact node set)` pair, sorted — the parity view.
    pub fn surface_postings(&self) -> Vec<(String, Vec<NodeId>)> {
        self.label_fst
            .iter()
            .map(|(k, off)| {
                (
                    String::from_utf8(k).expect("surfaces are utf-8"),
                    self.postings_at(off).collect(),
                )
            })
            .collect()
    }

    /// Surfaces starting with `prefix` (already normalized), sorted.
    pub fn prefix_postings(&self, prefix: &str) -> Vec<(String, Vec<NodeId>)> {
        self.label_fst
            .iter_prefix(prefix.as_bytes())
            .map(|(k, off)| {
                (
                    String::from_utf8(k).expect("surfaces are utf-8"),
                    self.postings_at(off).collect(),
                )
            })
            .collect()
    }

    /// Serialize as one checksummed blob (v4 section idiom).
    pub fn encode(&self) -> Vec<u8> {
        let mut meta = Vec::new();
        varint::write_u64(&mut meta, FST_INDEX_VERSION).expect("vec write");
        varint::write_u64(&mut meta, self.max_tokens as u64).expect("vec write");
        varint::write_u64(&mut meta, self.label_fst.root()).expect("vec write");
        varint::write_u64(&mut meta, self.label_fst.len() as u64).expect("vec write");
        varint::write_u64(&mut meta, self.token_fst.root()).expect("vec write");
        varint::write_u64(&mut meta, self.token_fst.len() as u64).expect("vec write");

        let sections: [&[u8]; SECTION_COUNT] = [
            &meta,
            self.label_fst.data().as_slice(),
            self.token_fst.data().as_slice(),
            self.arena.as_slice(),
            self.nodes.as_slice(),
        ];
        let mut buf = Vec::new();
        buf.extend_from_slice(FST_INDEX_MAGIC);
        let mut dir: Vec<(u64, u64, u64)> = Vec::with_capacity(SECTION_COUNT);
        for payload in sections {
            while buf.len() % 8 != 0 {
                buf.push(0);
            }
            dir.push((buf.len() as u64, payload.len() as u64, xxh64(payload)));
            buf.extend_from_slice(payload);
        }
        let dir_start = buf.len();
        for (off, len, sum) in &dir {
            buf.extend_from_slice(&off.to_le_bytes());
            buf.extend_from_slice(&len.to_le_bytes());
            buf.extend_from_slice(&sum.to_le_bytes());
        }
        let crc = newslink_util::crc32(&buf[dir_start..]);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf.extend_from_slice(&(SECTION_COUNT as u32).to_le_bytes());
        buf.extend_from_slice(FST_INDEX_FOOTER);
        buf
    }

    /// Open a serialized blob, verifying every checksum. Zero-copy: the
    /// tries, arena and node table are slices of `data`, so an mmap-backed
    /// `Bytes` serves lookups straight off the page cache.
    pub fn decode(data: Bytes) -> Result<Self, FstIndexError> {
        let b = data.as_slice();
        if b.len() < 8 + TAIL_BYTES {
            return Err(FstIndexError::TooShort);
        }
        if &b[0..8] != FST_INDEX_MAGIC {
            return Err(FstIndexError::BadMagic);
        }
        if &b[b.len() - 8..] != FST_INDEX_FOOTER {
            return Err(FstIndexError::BadFooter);
        }
        let count_at = b.len() - 12;
        let count = u32::from_le_bytes(b[count_at..count_at + 4].try_into().expect("4 bytes"));
        if count as usize != SECTION_COUNT {
            return Err(FstIndexError::BadSectionCount(count));
        }
        let crc_at = count_at - 4;
        let dir_start = crc_at - SECTION_COUNT * 24;
        let want_crc = u32::from_le_bytes(b[crc_at..crc_at + 4].try_into().expect("4 bytes"));
        if newslink_util::crc32(&b[dir_start..crc_at]) != want_crc {
            return Err(FstIndexError::DirectoryChecksum);
        }
        let mut sections: Vec<Bytes> = Vec::with_capacity(SECTION_COUNT);
        for (i, name) in SECTION_NAMES.iter().enumerate() {
            let e = dir_start + i * 24;
            let off = u64::from_le_bytes(b[e..e + 8].try_into().expect("8 bytes")) as usize;
            let len = u64::from_le_bytes(b[e + 8..e + 16].try_into().expect("8 bytes")) as usize;
            let sum = u64::from_le_bytes(b[e + 16..e + 24].try_into().expect("8 bytes"));
            let end = off.checked_add(len).ok_or(FstIndexError::SectionOutOfBounds(name))?;
            if end > dir_start {
                return Err(FstIndexError::SectionOutOfBounds(name));
            }
            if xxh64(&b[off..end]) != sum {
                return Err(FstIndexError::SectionChecksum(name));
            }
            sections.push(data.slice(off..end));
        }
        let mut meta = sections[0].as_slice();
        let version = varint::read_u64(&mut meta).map_err(|_| FstIndexError::Corrupt("meta"))?;
        if version != FST_INDEX_VERSION {
            return Err(FstIndexError::UnsupportedVersion(version));
        }
        let max_tokens = varint::read_u64(&mut meta).map_err(|_| FstIndexError::Corrupt("meta"))?;
        let label_root = varint::read_u64(&mut meta).map_err(|_| FstIndexError::Corrupt("meta"))?;
        let label_keys = varint::read_u64(&mut meta).map_err(|_| FstIndexError::Corrupt("meta"))?;
        let token_root = varint::read_u64(&mut meta).map_err(|_| FstIndexError::Corrupt("meta"))?;
        let token_keys = varint::read_u64(&mut meta).map_err(|_| FstIndexError::Corrupt("meta"))?;
        let label_fst = Fst::from_parts(sections[1].clone(), label_root, label_keys)
            .map_err(|_| FstIndexError::Corrupt("label_fst root"))?;
        let token_fst = Fst::from_parts(sections[2].clone(), token_root, token_keys)
            .map_err(|_| FstIndexError::Corrupt("token_fst root"))?;
        Ok(Self {
            label_fst,
            token_fst,
            arena: sections[3].clone(),
            nodes: sections[4].clone(),
            max_tokens: max_tokens as usize,
        })
    }

    /// True when the postings arena is served from a memory mapping.
    pub fn is_mapped(&self) -> bool {
        self.arena.is_mapped()
    }
}

/// Read a length-prefixed string borrowing from the underlying slice
/// (the std `read_str` helper allocates; node tables are zero-copy).
fn read_borrowed_str<'a>(cur: &mut &'a [u8]) -> Option<&'a str> {
    let len = varint::read_u64(cur).ok()? as usize;
    if cur.len() < len {
        return None;
    }
    let (s, rest) = cur.split_at(len);
    *cur = rest;
    std::str::from_utf8(s).ok()
}

impl LabelResolver for FstLabelIndex {
    fn exact(&self, surface: &str) -> Postings<'_> {
        let norm = normalize_label(surface);
        match self.exact_offset(norm.as_ref()) {
            Some(off) => Postings::Packed(self.postings_at(off)),
            None => Postings::empty(),
        }
    }

    fn candidates(&self, graph: &KnowledgeGraph, surface: &str) -> Vec<NodeId> {
        let norm = normalize_label(surface);
        if norm.is_empty() {
            return Vec::new();
        }
        let mut out: FxHashSet<NodeId> = FxHashSet::default();
        if let Some(off) = self.exact_offset(norm.as_ref()) {
            out.extend(self.postings_at(off));
        }
        let toks: Vec<&str> = norm.split(' ').collect();
        let postings: Option<Vec<Vec<NodeId>>> = toks
            .iter()
            .map(|t| {
                self.token_fst
                    .get(t.as_bytes())
                    .map(|off| self.postings_at(off).collect())
            })
            .collect();
        if let Some(mut postings) = postings {
            postings.sort_by_key(|p: &Vec<NodeId>| p.len());
            if let Some((first, rest)) = postings.split_first() {
                'cand: for &node in first.iter() {
                    if out.contains(&node) {
                        continue;
                    }
                    for p in rest {
                        // Token postings are sorted in this backend.
                        if p.binary_search(&node).is_err() {
                            continue 'cand;
                        }
                    }
                    if surface_run_hit(graph, node, &toks) {
                        out.insert(node);
                    }
                }
            }
        }
        let mut v: Vec<NodeId> = out.into_iter().collect();
        v.sort_unstable();
        v
    }

    fn has_exact(&self, surface: &str) -> bool {
        self.exact_offset(normalize_label(surface).as_ref()).is_some()
    }

    fn max_label_tokens(&self) -> usize {
        self.max_tokens
    }

    fn surface_count(&self) -> usize {
        self.label_fst.len()
    }

    fn longest_match(
        &self,
        tokens: &[&str],
        max_w: usize,
        allow_single: bool,
        searchable: &mut dyn FnMut(NodeId) -> bool,
    ) -> Option<usize> {
        // One forward walk over the automaton covers every window width
        // starting here — no per-width join or hash, no allocation.
        let mut state = self.label_fst.root_state();
        let mut best = None;
        let mut emitted = false;
        'outer: for (wi, tok) in tokens.iter().take(max_w).enumerate() {
            // Defensive: the NER pipeline hands us space-free lowercase
            // tokens, but normalize anyway so the walked key equals what
            // the oracle probes (normalize_label of the joined phrase).
            let norm = normalize_label(tok);
            if !norm.is_empty() {
                if emitted {
                    match self.label_fst.step(state, b' ') {
                        Some(s) => state = s,
                        None => break,
                    }
                }
                for byte in norm.bytes() {
                    match self.label_fst.step(state, byte) {
                        Some(s) => state = s,
                        None => break 'outer,
                    }
                }
                emitted = true;
            }
            if wi == 0 && !allow_single {
                continue;
            }
            if !emitted {
                continue;
            }
            if let Some(off) = self.label_fst.value(state) {
                if self.postings_at(off).any(&mut *searchable) {
                    best = Some(wi + 1);
                }
            }
        }
        best
    }

    fn backend(&self) -> &'static str {
        "fst"
    }

    fn resolver_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.label_fst.bytes_len()
            + self.token_fst.bytes_len()
            + self.arena.len()
            + self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::label_index::HashLabelIndex;

    fn world() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let who = b.add_node("World Health Organization", EntityType::Organization);
        b.add_alias(who, "WHO");
        b.add_node("Bernie Sanders", EntityType::Person);
        b.add_node("Sanders", EntityType::Person);
        b.add_node("New York City", EntityType::Gpe);
        b.add_node("New York", EntityType::Gpe);
        b.add_node("Köln", EntityType::Gpe);
        b.freeze()
    }

    #[test]
    fn matches_hash_oracle_on_world() {
        let g = world();
        let hash = HashLabelIndex::build(&g);
        let fst = FstLabelIndex::build(&g);
        assert_eq!(hash.surface_count(), fst.surface_count());
        assert_eq!(hash.max_label_tokens(), fst.max_label_tokens());
        for (surface, _) in hash.surface_postings() {
            let h: Vec<_> = hash.exact(&surface).collect();
            let f: Vec<_> = fst.exact(&surface).collect();
            assert_eq!(h, f, "exact({surface:?})");
            assert_eq!(
                hash.candidates(&g, &surface),
                fst.candidates(&g, &surface),
                "candidates({surface:?})"
            );
        }
        for probe in ["york", "new york", "health organization", "nope", "köln"] {
            assert_eq!(hash.candidates(&g, probe), fst.candidates(&g, probe), "{probe}");
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let g = world();
        let fst = FstLabelIndex::build(&g);
        let blob = fst.encode();
        let back = FstLabelIndex::decode(Bytes::from_vec(blob.clone())).unwrap();
        assert_eq!(fst.surface_postings(), back.surface_postings());
        assert_eq!(fst.max_label_tokens(), back.max_label_tokens());
        assert_eq!(fst.candidates(&g, "sanders"), back.candidates(&g, "sanders"));
        assert!(!back.is_mapped());
    }

    #[test]
    fn every_byte_flip_is_detected_or_harmless() {
        let g = world();
        let blob = FstLabelIndex::build(&g).encode();
        // Flipping any byte must surface as a typed error (checksums) —
        // never a panic, never a silently different index.
        let step = (blob.len() / 97).max(1);
        for at in (0..blob.len()).step_by(step) {
            let mut bad = blob.clone();
            bad[at] ^= 0x40;
            assert!(
                FstLabelIndex::decode(Bytes::from_vec(bad)).is_err(),
                "flip at {at} went undetected"
            );
        }
    }

    #[test]
    fn truncations_are_rejected() {
        let g = world();
        let blob = FstLabelIndex::build(&g).encode();
        for cut in [0, 1, 8, blob.len() / 2, blob.len() - 1] {
            assert!(
                FstLabelIndex::decode(Bytes::from_vec(blob[..cut].to_vec())).is_err(),
                "truncation to {cut} accepted"
            );
        }
    }

    #[test]
    fn node_meta_round_trips() {
        let mut asm = FstIndexAssembler::new();
        asm.push_node_meta(EntityType::Person, "Q42", "Douglas Adams");
        asm.push_node_meta(EntityType::Gpe, "Q64", "Berlin");
        asm.push_label("berlin", &[NodeId(1)]).unwrap();
        asm.push_label("douglas adams", &[NodeId(0)]).unwrap();
        asm.push_token("adams", &[NodeId(0)]).unwrap();
        asm.push_token("berlin", &[NodeId(1)]).unwrap();
        asm.push_token("douglas", &[NodeId(0)]).unwrap();
        let idx = asm.finish();
        let blob = idx.encode();
        let back = FstLabelIndex::decode(Bytes::from_vec(blob)).unwrap();
        assert_eq!(back.node_meta_count(), 2);
        let m = back.node_meta(NodeId(0)).unwrap();
        assert_eq!(m.entity_type, EntityType::Person);
        assert_eq!(m.id, "Q42");
        assert_eq!(m.label, "Douglas Adams");
        let m = back.node_meta(NodeId(1)).unwrap();
        assert_eq!(m.id, "Q64");
        assert_eq!(back.node_meta(NodeId(2)), None);
        // Graph-built indexes have no table.
        assert_eq!(FstLabelIndex::build(&world()).node_meta(NodeId(0)), None);
    }

    #[test]
    fn assembler_rejects_unsorted() {
        let mut asm = FstIndexAssembler::new();
        asm.push_label("b", &[NodeId(0)]).unwrap();
        assert!(matches!(
            asm.push_label("a", &[NodeId(1)]),
            Err(FstIndexError::UnsortedInput(_))
        ));
    }

    #[test]
    fn packed_postings_decode_deltas() {
        let mut arena = Vec::new();
        let off = write_postings(&mut arena, &[NodeId(3), NodeId(4), NodeId(900)]);
        let got: Vec<NodeId> = PackedPostings::at(&arena, off).collect();
        assert_eq!(got, vec![NodeId(3), NodeId(4), NodeId(900)]);
        assert_eq!(PackedPostings::at(&arena, off).len(), 3);
        // Out-of-bounds offset decodes as empty, not a panic.
        assert_eq!(PackedPostings::at(&arena, 10_000).count(), 0);
    }
}
