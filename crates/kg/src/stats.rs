//! Descriptive statistics over a knowledge graph.
//!
//! Used by the corpus generator (to sanity-check the synthetic world), the
//! documentation examples, and the experiment reports, which record the KG
//! scale alongside each table (the paper reports 30M nodes / 135M edges for
//! its Wikidata dump).

use newslink_util::FxHashMap;

use crate::graph::{EntityType, KnowledgeGraph};

/// Summary statistics for a [`KnowledgeGraph`].
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Node count.
    pub nodes: usize,
    /// Forward (original) edge count.
    pub edges: usize,
    /// Mean bi-directed out-degree.
    pub avg_degree: f64,
    /// Maximum bi-directed out-degree.
    pub max_degree: usize,
    /// Number of distinct normalized labels.
    pub distinct_labels: usize,
    /// Nodes that share a label with at least one other node.
    pub ambiguous_nodes: usize,
    /// Node counts per entity type.
    pub per_type: Vec<(EntityType, usize)>,
}

impl GraphStats {
    /// Compute statistics for `graph`.
    pub fn compute(graph: &KnowledgeGraph) -> Self {
        let nodes = graph.node_count();
        let mut max_degree = 0;
        let mut degree_sum = 0usize;
        let mut per_type: FxHashMap<&'static str, (EntityType, usize)> = FxHashMap::default();
        let mut label_counts: FxHashMap<crate::interner::Symbol, usize> = FxHashMap::default();
        for node in graph.nodes() {
            let d = graph.degree(node);
            degree_sum += d;
            max_degree = max_degree.max(d);
            let ty = graph.entity_type(node);
            per_type.entry(ty.as_str()).or_insert((ty, 0)).1 += 1;
            *label_counts.entry(graph.label_symbol(node)).or_default() += 1;
        }
        let ambiguous_nodes = label_counts.values().filter(|&&c| c > 1).copied().sum();
        let mut per_type: Vec<(EntityType, usize)> =
            per_type.into_values().collect();
        per_type.sort_by_key(|(t, _)| t.as_str());
        Self {
            nodes,
            edges: graph.edge_count(),
            avg_degree: if nodes == 0 {
                0.0
            } else {
                degree_sum as f64 / nodes as f64
            },
            max_degree,
            distinct_labels: label_counts.len(),
            ambiguous_nodes,
            per_type,
        }
    }

    /// Node count for one entity type.
    pub fn count_of(&self, ty: EntityType) -> usize {
        self.per_type
            .iter()
            .find(|(t, _)| *t == ty)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "nodes={} edges={} avg_degree={:.2} max_degree={} labels={} ambiguous={}",
            self.nodes,
            self.edges,
            self.avg_degree,
            self.max_degree,
            self.distinct_labels,
            self.ambiguous_nodes
        )?;
        for (ty, c) in &self.per_type {
            writeln!(f, "  {:<12} {c}", ty.as_str())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn stats_of_small_graph() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("A", EntityType::Gpe);
        let c = b.add_node("B", EntityType::Person);
        let d = b.add_node("B", EntityType::Person); // ambiguous label
        b.add_edge(a, c, "p", 1);
        b.add_edge(a, d, "p", 1);
        let g = b.freeze();
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 2);
        assert_eq!(s.max_degree, 2);
        assert!((s.avg_degree - 4.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.distinct_labels, 2);
        assert_eq!(s.ambiguous_nodes, 2);
        assert_eq!(s.count_of(EntityType::Person), 2);
        assert_eq!(s.count_of(EntityType::Gpe), 1);
        assert_eq!(s.count_of(EntityType::Event), 0);
    }

    #[test]
    fn empty_graph_stats() {
        let g = GraphBuilder::new().freeze();
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.ambiguous_nodes, 0);
    }

    #[test]
    fn display_renders() {
        let mut b = GraphBuilder::new();
        b.add_node("A", EntityType::Gpe);
        let g = b.freeze();
        let text = GraphStats::compute(&g).to_string();
        assert!(text.contains("nodes=1"));
        assert!(text.contains("GPE"));
    }
}
