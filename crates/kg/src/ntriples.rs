//! N-Triples loader: ingest real Wikidata-style RDF dumps.
//!
//! A downstream user adopting this library against the actual Wikidata
//! truthy dump needs an RDF ingestion path, not just our TSV format. This
//! module parses the N-Triples subset those dumps use:
//!
//! ```text
//! <http://e/Q1> <http://www.w3.org/2000/01/rdf-schema#label> "Earth"@en .
//! <http://e/Q1> <http://e/P31> <http://e/Q634> .
//! <http://e/Q1> <http://www.w3.org/2004/02/skos/core#altLabel> "Blue Planet"@en .
//! ```
//!
//! - `rdfs:label` literals become node labels;
//! - `skos:altLabel` literals become aliases;
//! - an optional type-predicate mapping turns designated object IRIs into
//!   [`EntityType`]s (Wikidata's `P31` values);
//! - every other IRI-object triple becomes a relationship edge whose
//!   predicate name is the IRI's local name.
//!
//! Entities without an explicit label fall back to their local name; only
//! `@en` (or untagged) literals are consumed.

use std::io::{BufRead, BufReader, Read};

use newslink_util::FxHashMap;

use crate::builder::GraphBuilder;
use crate::graph::{EntityType, KnowledgeGraph};
use crate::triples::TripleError;

const RDFS_LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
const SKOS_ALT: &str = "http://www.w3.org/2004/02/skos/core#altLabel";

/// Configuration for the N-Triples import.
#[derive(Debug, Clone, Default)]
pub struct NtConfig {
    /// Predicate IRI whose object assigns the subject's entity type (e.g.
    /// Wikidata's `P31` "instance of"), with the object-IRI → type map.
    pub type_predicate: Option<(String, FxHashMap<String, EntityType>)>,
}

/// One parsed term of a triple.
#[derive(Debug, PartialEq)]
enum Term<'a> {
    Iri(&'a str),
    /// (lexical value, language tag if any)
    Literal(String, Option<&'a str>),
}

/// Parse one term starting at `s`; returns the term and the rest.
fn parse_term(s: &str) -> Result<(Term<'_>, &str), String> {
    let s = s.trim_start();
    if let Some(rest) = s.strip_prefix('<') {
        let end = rest.find('>').ok_or("unterminated IRI")?;
        return Ok((Term::Iri(&rest[..end]), &rest[end + 1..]));
    }
    if let Some(rest) = s.strip_prefix('"') {
        // Scan for the closing quote, honoring backslash escapes.
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, 't')) => value.push('\t'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, other)) => value.push(other),
                    None => return Err("dangling escape".into()),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                other => value.push(other),
            }
        }
        let end = end.ok_or("unterminated literal")?;
        let mut rest = &rest[end + 1..];
        let mut lang = None;
        if let Some(tagged) = rest.strip_prefix('@') {
            let stop = tagged
                .find(|c: char| c.is_whitespace() || c == '.')
                .unwrap_or(tagged.len());
            lang = Some(&tagged[..stop]);
            rest = &tagged[stop..];
        } else if let Some(typed) = rest.strip_prefix("^^") {
            // datatype IRI: skip it
            let t = typed.trim_start();
            if let Some(r2) = t.strip_prefix('<') {
                let e = r2.find('>').ok_or("unterminated datatype IRI")?;
                rest = &r2[e + 1..];
            }
        }
        return Ok((Term::Literal(value, lang), rest));
    }
    Err(format!("unsupported term start: {s:.20?}"))
}

/// The local name of an IRI (after the last `/` or `#`).
fn local_name(iri: &str) -> &str {
    iri.rsplit(['/', '#']).next().unwrap_or(iri)
}

/// Humanize a predicate local name: `sharesBorderWith` / `shares_border`
/// → `shares border with` / `shares border`.
fn humanize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for c in name.chars() {
        if c == '_' || c == '-' {
            out.push(' ');
        } else if c.is_uppercase() && !out.is_empty() && !out.ends_with(' ') {
            out.push(' ');
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// Parse an N-Triples stream into a knowledge graph.
pub fn read_ntriples<R: Read>(input: R, config: &NtConfig) -> Result<KnowledgeGraph, TripleError> {
    struct Entity {
        label: Option<String>,
        aliases: Vec<String>,
        ty: EntityType,
        edges: Vec<(String, String)>, // (predicate IRI, object IRI)
    }
    let mut entities: FxHashMap<String, Entity> = FxHashMap::default();
    let mut order: Vec<String> = Vec::new();
    let touch = |entities: &mut FxHashMap<String, Entity>,
                     order: &mut Vec<String>,
                     iri: &str| {
        if !entities.contains_key(iri) {
            entities.insert(
                iri.to_string(),
                Entity {
                    label: None,
                    aliases: Vec::new(),
                    ty: EntityType::Location,
                    edges: Vec::new(),
                },
            );
            order.push(iri.to_string());
        }
    };

    let reader = BufReader::new(input);
    for (lineno, line) in reader.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let err = |message: String| TripleError::Parse {
            line: lineno,
            message,
        };
        let (subject, rest) = parse_term(trimmed).map_err(err)?;
        let (predicate, rest) = parse_term(rest).map_err(err)?;
        let (object, rest) = parse_term(rest).map_err(err)?;
        if !rest.trim_start().starts_with('.') {
            return Err(err("missing terminating '.'".into()));
        }
        let Term::Iri(subj) = subject else {
            return Err(err("subject must be an IRI".into()));
        };
        let Term::Iri(pred) = predicate else {
            return Err(err("predicate must be an IRI".into()));
        };
        touch(&mut entities, &mut order, subj);
        match object {
            Term::Literal(value, lang) => {
                if lang.is_some_and(|l| !l.starts_with("en")) {
                    continue; // non-English literal
                }
                let e = entities.get_mut(subj).expect("touched");
                if pred == RDFS_LABEL {
                    if e.label.is_none() {
                        e.label = Some(value);
                    }
                } else if pred == SKOS_ALT {
                    e.aliases.push(value);
                }
                // other literal predicates (descriptions etc.) are skipped
            }
            Term::Iri(obj) => {
                if let Some((type_pred, map)) = &config.type_predicate {
                    if pred == type_pred {
                        if let Some(&ty) = map.get(obj) {
                            touch(&mut entities, &mut order, subj);
                            entities.get_mut(subj).expect("touched").ty = ty;
                        }
                        continue; // type triples do not become edges
                    }
                }
                touch(&mut entities, &mut order, obj);
                entities
                    .get_mut(subj)
                    .expect("touched")
                    .edges
                    .push((pred.to_string(), obj.to_string()));
            }
        }
    }

    // Materialize: nodes in first-seen order, labels defaulting to local
    // names, then edges and aliases.
    let mut builder = GraphBuilder::new();
    let mut ids = FxHashMap::default();
    for iri in &order {
        let e = &entities[iri];
        let label = e.label.clone().unwrap_or_else(|| local_name(iri).to_string());
        let id = builder.add_node(&label, e.ty);
        for alias in &e.aliases {
            builder.add_alias(id, alias);
        }
        ids.insert(iri.clone(), id);
    }
    for iri in &order {
        let e = &entities[iri];
        let src = ids[iri];
        for (pred, obj) in &e.edges {
            let dst = ids[obj];
            builder.add_edge(src, dst, &humanize(local_name(pred)), 1);
        }
    }
    Ok(builder.freeze())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# a comment
<http://e/Q1> <http://www.w3.org/2000/01/rdf-schema#label> "Khyber"@en .
<http://e/Q2> <http://www.w3.org/2000/01/rdf-schema#label> "Kunar"@en .
<http://e/Q2> <http://e/sharesBorderWith> <http://e/Q1> .
<http://e/Q3> <http://www.w3.org/2000/01/rdf-schema#label> "Taliban"@en .
<http://e/Q3> <http://www.w3.org/2004/02/skos/core#altLabel> "TB"@en .
<http://e/Q3> <http://e/operates_in> <http://e/Q2> .
<http://e/Q3> <http://e/P31> <http://e/Organization> .
"#;

    fn config() -> NtConfig {
        let mut map = FxHashMap::default();
        map.insert("http://e/Organization".to_string(), EntityType::Organization);
        NtConfig {
            type_predicate: Some(("http://e/P31".to_string(), map)),
        }
    }

    #[test]
    fn parses_labels_edges_aliases_types() {
        let g = read_ntriples(SAMPLE.as_bytes(), &config()).unwrap();
        // Q1, Q2, Q3 (the type-object IRI does not become a node because
        // type triples are consumed).
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        let labels: Vec<&str> = g.nodes().map(|n| g.label(n)).collect();
        assert!(labels.contains(&"Khyber"));
        assert!(labels.contains(&"Taliban"));
        let taliban = g.nodes().find(|&n| g.label(n) == "Taliban").unwrap();
        assert_eq!(g.entity_type(taliban), EntityType::Organization);
        assert_eq!(g.aliases_of(taliban).collect::<Vec<_>>(), vec!["TB"]);
        // Predicate names humanized.
        let preds: Vec<&str> = g
            .neighbors(taliban)
            .iter()
            .map(|e| g.resolve(e.predicate))
            .collect();
        assert!(preds.contains(&"operates in"), "{preds:?}");
    }

    #[test]
    fn camel_case_predicates_humanized() {
        assert_eq!(humanize("sharesBorderWith"), "shares border with");
        assert_eq!(humanize("operates_in"), "operates in");
        assert_eq!(humanize("located-in"), "located in");
        assert_eq!(humanize("simple"), "simple");
    }

    #[test]
    fn unlabeled_entities_use_local_names() {
        let nt = "<http://e/Q9> <http://e/p> <http://e/Q10> .\n";
        let g = read_ntriples(nt.as_bytes(), &NtConfig::default()).unwrap();
        let labels: Vec<&str> = g.nodes().map(|n| g.label(n)).collect();
        assert!(labels.contains(&"Q9"));
        assert!(labels.contains(&"Q10"));
    }

    #[test]
    fn non_english_literals_skipped() {
        let nt = concat!(
            "<http://e/Q1> <http://www.w3.org/2000/01/rdf-schema#label> \"Chaiber\"@de .\n",
            "<http://e/Q1> <http://www.w3.org/2000/01/rdf-schema#label> \"Khyber\"@en .\n",
        );
        let g = read_ntriples(nt.as_bytes(), &NtConfig::default()).unwrap();
        assert_eq!(g.label(crate::NodeId(0)), "Khyber");
    }

    #[test]
    fn escaped_literals_decoded() {
        let nt = "<http://e/Q1> <http://www.w3.org/2000/01/rdf-schema#label> \"Line\\n\\\"Quote\\\"\"@en .\n";
        let g = read_ntriples(nt.as_bytes(), &NtConfig::default()).unwrap();
        assert_eq!(g.label(crate::NodeId(0)), "Line\n\"Quote\"");
    }

    #[test]
    fn typed_literals_skipped_without_error() {
        let nt = "<http://e/Q1> <http://e/population> \"123\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n";
        let g = read_ntriples(nt.as_bytes(), &NtConfig::default()).unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn malformed_lines_error_with_line_numbers() {
        for bad in [
            "<http://e/Q1> <http://e/p> \"unterminated .\n",
            "<http://e/Q1> <http://e/p> <http://e/Q2>\n", // missing dot
            "\"literal subject\" <http://e/p> <http://e/Q2> .\n",
            "<unterminated\n",
        ] {
            let res = read_ntriples(bad.as_bytes(), &NtConfig::default());
            assert!(res.is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn searchable_through_label_index() {
        // End-to-end: NT import → label index → S(l) resolution with alias.
        let g = read_ntriples(SAMPLE.as_bytes(), &config()).unwrap();
        let idx = crate::LabelIndex::build(&g);
        let taliban = g.nodes().find(|&n| g.label(n) == "Taliban").unwrap();
        assert_eq!(idx.candidates(&g, "TB"), vec![taliban]);
        assert_eq!(idx.candidates(&g, "taliban"), vec![taliban]);
    }
}
