//! The knowledge-graph store.
//!
//! A frozen, in-memory property graph in CSR (compressed sparse row) form:
//! typed, labeled nodes and predicate-labeled, weighted edges. Following the
//! paper (§V-A), the graph is made *bi-directed* at freeze time — every
//! original relationship edge gets a reversed twin flagged [`Edge::inverse`]
//! — so that distances are symmetric and any node can serve as a common
//! ancestor.

use serde::{Deserialize, Serialize};

use crate::interner::{StringInterner, Symbol};

/// Index of a node in the graph. Dense, 4 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Entity types, mirroring the NER type inventory of §IV.
///
/// The paper considers "all entity types except those representing numbers
/// or quantities"; [`EntityType::is_searchable`] encodes that filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EntityType {
    /// A person.
    Person,
    /// Nationality, religious or political group.
    Norp,
    /// Buildings, airports, highways, bridges.
    Facility,
    /// Companies, agencies, institutions, militant groups, teams, parties.
    Organization,
    /// Geo-political entity: countries, provinces, cities.
    Gpe,
    /// Non-GPE locations: mountain ranges, valleys, bodies of water.
    Location,
    /// Objects, vehicles, foods (not services).
    Product,
    /// Named events: wars, elections, attacks, sports events.
    Event,
    /// Titles of books, songs, films.
    WorkOfArt,
    /// Named documents made into laws.
    Law,
    /// A named language.
    Language,
    /// Numeric / quantity types — excluded from entity matching per §IV.
    Quantity,
}

impl EntityType {
    /// All variants, for iteration in tests and generators.
    pub const ALL: [EntityType; 12] = [
        EntityType::Person,
        EntityType::Norp,
        EntityType::Facility,
        EntityType::Organization,
        EntityType::Gpe,
        EntityType::Location,
        EntityType::Product,
        EntityType::Event,
        EntityType::WorkOfArt,
        EntityType::Law,
        EntityType::Language,
        EntityType::Quantity,
    ];

    /// Whether entities of this type participate in search (§IV excludes
    /// number/quantity types).
    #[inline]
    pub fn is_searchable(self) -> bool {
        !matches!(self, EntityType::Quantity)
    }

    /// Stable textual name (used by the TSV serialization).
    pub fn as_str(self) -> &'static str {
        match self {
            EntityType::Person => "PERSON",
            EntityType::Norp => "NORP",
            EntityType::Facility => "FAC",
            EntityType::Organization => "ORG",
            EntityType::Gpe => "GPE",
            EntityType::Location => "LOC",
            EntityType::Product => "PRODUCT",
            EntityType::Event => "EVENT",
            EntityType::WorkOfArt => "WORK_OF_ART",
            EntityType::Law => "LAW",
            EntityType::Language => "LANGUAGE",
            EntityType::Quantity => "QUANTITY",
        }
    }

    /// Parse the textual name produced by [`EntityType::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        EntityType::ALL.into_iter().find(|t| t.as_str() == s)
    }
}

/// One directed adjacency entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Target node.
    pub to: NodeId,
    /// Interned predicate name (e.g. `located in`).
    pub predicate: Symbol,
    /// Positive traversal weight (the paper's examples use weight 1).
    pub weight: u32,
    /// True when this entry is the reversed twin added for bi-direction.
    pub inverse: bool,
}

/// A frozen knowledge graph.
///
/// Construct through [`crate::builder::GraphBuilder`]. All queries are
/// read-only and `&self`, so a graph can be shared across threads freely.
#[derive(Debug, Clone)]
pub struct KnowledgeGraph {
    pub(crate) interner: StringInterner,
    pub(crate) labels: Vec<Symbol>,
    pub(crate) types: Vec<EntityType>,
    pub(crate) offsets: Vec<u32>,
    pub(crate) edges: Vec<Edge>,
    pub(crate) forward_edges: usize,
    /// `(node, alias)` pairs, sorted by node (Wikidata-style alternative
    /// surface forms; resolved by the label index like primary labels).
    pub(crate) aliases: Vec<(NodeId, Symbol)>,
}

impl KnowledgeGraph {
    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of *original* (forward) relationship edges; the stored
    /// adjacency holds twice this many entries due to bi-direction.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.forward_edges
    }

    /// Number of stored directed adjacency entries (forward + inverse).
    #[inline]
    pub fn directed_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Outgoing adjacency of `node` in the bi-directed graph.
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[Edge] {
        let lo = self.offsets[node.index()] as usize;
        let hi = self.offsets[node.index() + 1] as usize;
        &self.edges[lo..hi]
    }

    /// Out-degree of `node` in the bi-directed graph.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.neighbors(node).len()
    }

    /// The display label of `node`.
    #[inline]
    pub fn label(&self, node: NodeId) -> &str {
        self.interner.resolve(self.labels[node.index()])
    }

    /// The interned label symbol of `node`.
    #[inline]
    pub fn label_symbol(&self, node: NodeId) -> Symbol {
        self.labels[node.index()]
    }

    /// The entity type of `node`.
    #[inline]
    pub fn entity_type(&self, node: NodeId) -> EntityType {
        self.types[node.index()]
    }

    /// Resolve an interned predicate or label symbol.
    #[inline]
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    /// The shared interner (labels and predicates).
    pub fn interner(&self) -> &StringInterner {
        &self.interner
    }

    /// Iterate over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.labels.len() as u32).map(NodeId)
    }

    /// True when `node` is a valid id for this graph.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        node.index() < self.labels.len()
    }

    /// Alias surface forms of `node` (excluding its primary label).
    pub fn aliases_of(&self, node: NodeId) -> impl Iterator<Item = &str> {
        let start = self.aliases.partition_point(|(n, _)| *n < node);
        self.aliases[start..]
            .iter()
            .take_while(move |(n, _)| *n == node)
            .map(|(_, s)| self.interner.resolve(*s))
    }

    /// All `(node, alias)` pairs.
    pub fn aliases(&self) -> impl Iterator<Item = (NodeId, &str)> {
        self.aliases
            .iter()
            .map(|(n, s)| (*n, self.interner.resolve(*s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn tiny() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let a = b.add_node("Khyber", EntityType::Gpe);
        let c = b.add_node("Kunar", EntityType::Gpe);
        let d = b.add_node("Taliban", EntityType::Organization);
        b.add_edge(c, a, "shares border with", 1);
        b.add_edge(d, c, "operates in", 1);
        b.freeze()
    }

    #[test]
    fn counts_reflect_bidirection() {
        let g = tiny();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.directed_edge_count(), 4);
    }

    #[test]
    fn neighbors_include_inverse_edges() {
        let g = tiny();
        let khyber = NodeId(0);
        let n = g.neighbors(khyber);
        assert_eq!(n.len(), 1);
        assert!(n[0].inverse);
        assert_eq!(g.label(n[0].to), "Kunar");
    }

    #[test]
    fn labels_and_types_resolve() {
        let g = tiny();
        assert_eq!(g.label(NodeId(2)), "Taliban");
        assert_eq!(g.entity_type(NodeId(2)), EntityType::Organization);
        assert_eq!(g.entity_type(NodeId(0)), EntityType::Gpe);
    }

    #[test]
    fn entity_type_round_trips_through_names() {
        for t in EntityType::ALL {
            assert_eq!(EntityType::parse(t.as_str()), Some(t));
        }
        assert_eq!(EntityType::parse("bogus"), None);
    }

    #[test]
    fn quantity_is_not_searchable() {
        assert!(!EntityType::Quantity.is_searchable());
        assert!(EntityType::Gpe.is_searchable());
        assert_eq!(
            EntityType::ALL.iter().filter(|t| t.is_searchable()).count(),
            11
        );
    }

    #[test]
    fn contains_bounds_check() {
        let g = tiny();
        assert!(g.contains(NodeId(2)));
        assert!(!g.contains(NodeId(3)));
    }
}
