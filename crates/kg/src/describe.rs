//! Natural-language entity descriptions.
//!
//! Wikidata entities carry a short description ("province of Pakistan");
//! the QEPRF baseline [Xiong & Callan 2015] expands queries with terms from
//! the descriptions of linked entities. Our graph has no stored
//! descriptions, so we derive one per node from its type and its first few
//! forward relationships — the same information a dump description
//! summarizes.

use std::fmt::Write as _;

use crate::graph::{EntityType, KnowledgeGraph, NodeId};

/// Maximum forward relationships folded into one description.
const MAX_FACTS: usize = 4;

/// Human-readable phrase for an entity type.
fn type_phrase(ty: EntityType) -> &'static str {
    match ty {
        EntityType::Person => "person",
        EntityType::Norp => "group",
        EntityType::Facility => "facility",
        EntityType::Organization => "organization",
        EntityType::Gpe => "geopolitical entity",
        EntityType::Location => "location",
        EntityType::Product => "product",
        EntityType::Event => "event",
        EntityType::WorkOfArt => "work of art",
        EntityType::Law => "law",
        EntityType::Language => "language",
        EntityType::Quantity => "quantity",
    }
}

/// Produce a one-paragraph description of `node`.
///
/// Example: `Khyber is a geopolitical entity. Khyber shares border with
/// Kunar. Khyber located in Pakistan.`
pub fn describe(graph: &KnowledgeGraph, node: NodeId) -> String {
    let label = graph.label(node);
    let mut out = String::with_capacity(96);
    let _ = write!(out, "{label} is a {}.", type_phrase(graph.entity_type(node)));
    let mut facts = 0;
    for e in graph.neighbors(node) {
        if e.inverse {
            continue;
        }
        if facts == MAX_FACTS {
            break;
        }
        let _ = write!(
            out,
            " {label} {} {}.",
            graph.resolve(e.predicate),
            graph.label(e.to)
        );
        facts += 1;
    }
    out
}

/// The description's terms, lowercased, for query expansion.
pub fn description_terms(graph: &KnowledgeGraph, node: NodeId) -> Vec<String> {
    describe(graph, node)
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn sample() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let khyber = b.add_node("Khyber", EntityType::Gpe);
        let kunar = b.add_node("Kunar", EntityType::Gpe);
        let pakistan = b.add_node("Pakistan", EntityType::Gpe);
        b.add_edge(khyber, kunar, "shares border with", 1);
        b.add_edge(khyber, pakistan, "located in", 1);
        b.freeze()
    }

    #[test]
    fn description_mentions_type_and_facts() {
        let g = sample();
        let d = describe(&g, NodeId(0));
        assert!(d.contains("Khyber is a geopolitical entity."));
        assert!(d.contains("shares border with Kunar"));
        assert!(d.contains("located in Pakistan"));
    }

    #[test]
    fn inverse_edges_are_not_described() {
        let g = sample();
        let d = describe(&g, NodeId(1)); // Kunar only has an inverse edge
        assert_eq!(d, "Kunar is a geopolitical entity.");
    }

    #[test]
    fn fact_count_is_bounded() {
        let mut b = GraphBuilder::new();
        let hub = b.add_node("Hub", EntityType::Organization);
        for i in 0..10 {
            let n = b.add_node(&format!("Spoke{i}"), EntityType::Gpe);
            b.add_edge(hub, n, "operates in", 1);
        }
        let g = b.freeze();
        let d = describe(&g, hub);
        let sentences = d.matches('.').count();
        assert_eq!(sentences, 1 + MAX_FACTS);
    }

    #[test]
    fn terms_are_lowercased_tokens() {
        let g = sample();
        let terms = description_terms(&g, NodeId(0));
        assert!(terms.contains(&"khyber".to_string()));
        assert!(terms.contains(&"pakistan".to_string()));
        assert!(terms.iter().all(|t| t.chars().all(|c| c.is_alphanumeric())));
    }
}
