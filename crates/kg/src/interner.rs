//! String interning.
//!
//! Node labels and predicate names repeat heavily (a synthetic Wikidata has
//! a few dozen predicates over millions of edges), so the graph stores
//! 4-byte [`Symbol`]s and resolves them through a [`StringInterner`].

use newslink_util::FxHashMap;
use serde::{Deserialize, Serialize};

/// A handle to an interned string. Cheap to copy and compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The index of this symbol in its interner.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only string interner.
///
/// Strings are owned once and resolved by slice; `get_or_intern` is O(1)
/// amortized via an FxHash side table.
#[derive(Debug, Default, Clone)]
pub struct StringInterner {
    strings: Vec<Box<str>>,
    lookup: FxHashMap<Box<str>, Symbol>,
}

impl StringInterner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning the existing symbol when already present.
    pub fn get_or_intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.lookup.get(s) {
            return sym;
        }
        let sym = Symbol(
            u32::try_from(self.strings.len()).expect("interner overflow: more than 2^32 strings"),
        );
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.lookup.insert(boxed, sym);
        sym
    }

    /// Look up a symbol without interning.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.lookup.get(s).copied()
    }

    /// Resolve a symbol to its string. Panics on a foreign symbol.
    #[inline]
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterate `(Symbol, &str)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_round_trips() {
        let mut i = StringInterner::new();
        let a = i.get_or_intern("Pakistan");
        let b = i.get_or_intern("Taliban");
        assert_eq!(i.resolve(a), "Pakistan");
        assert_eq!(i.resolve(b), "Taliban");
        assert_ne!(a, b);
    }

    #[test]
    fn reinterning_returns_same_symbol() {
        let mut i = StringInterner::new();
        let a = i.get_or_intern("Khyber");
        let b = i.get_or_intern("Khyber");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = StringInterner::new();
        assert_eq!(i.get("missing"), None);
        let s = i.get_or_intern("present");
        assert_eq!(i.get("present"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn iter_preserves_order() {
        let mut i = StringInterner::new();
        i.get_or_intern("a");
        i.get_or_intern("b");
        let got: Vec<_> = i.iter().map(|(_, s)| s.to_string()).collect();
        assert_eq!(got, vec!["a", "b"]);
    }

    #[test]
    fn empty_is_empty() {
        let i = StringInterner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
