//! Edge re-weighting.
//!
//! The paper's model is defined over *weighted* KGs ("W.L.O.G., we assume
//! the KG is connected, labeled and weighted") but evaluates with unit
//! weights. Real deployments often weight edges by relationship strength
//! — e.g. generic containment predicates weaker (heavier) than specific
//! ones. This module rebuilds a graph with new per-edge weights so the
//! weighting ablation can compare schemes on identical topology.

use newslink_util::FxHashMap;

use crate::builder::GraphBuilder;
use crate::graph::{KnowledgeGraph, NodeId};
use crate::interner::Symbol;

/// Rebuild `graph` with weights chosen per edge by `weight_of`
/// (`(source, predicate, target, old_weight) -> new_weight`). Node ids,
/// labels, types and aliases are preserved exactly; returned weights are
/// clamped to ≥ 1.
pub fn reweight(
    graph: &KnowledgeGraph,
    mut weight_of: impl FnMut(NodeId, Symbol, NodeId, u32) -> u32,
) -> KnowledgeGraph {
    let mut b = GraphBuilder::new();
    for node in graph.nodes() {
        b.add_node(graph.label(node), graph.entity_type(node));
    }
    for (node, alias) in graph.aliases() {
        b.add_alias(node, alias);
    }
    for node in graph.nodes() {
        for e in graph.neighbors(node) {
            if e.inverse {
                continue;
            }
            let w = weight_of(node, e.predicate, e.to, e.weight).max(1);
            b.add_edge(node, e.to, graph.resolve(e.predicate), w);
        }
    }
    b.freeze()
}

/// Weight edges by predicate frequency: edges with *common* predicates are
/// weaker relationships and get weight 2; edges with rarer predicates keep
/// weight 1. `heavy_fraction` selects how much of the edge mass counts as
/// common (e.g. 0.5 = predicates covering the top half of edges).
pub fn reweight_by_predicate_rarity(graph: &KnowledgeGraph, heavy_fraction: f64) -> KnowledgeGraph {
    let mut freq: FxHashMap<Symbol, usize> = FxHashMap::default();
    for node in graph.nodes() {
        for e in graph.neighbors(node) {
            if !e.inverse {
                *freq.entry(e.predicate).or_default() += 1;
            }
        }
    }
    let mut by_freq: Vec<(Symbol, usize)> = freq.iter().map(|(&s, &c)| (s, c)).collect();
    by_freq.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let total: usize = by_freq.iter().map(|(_, c)| c).sum();
    let budget = (total as f64 * heavy_fraction.clamp(0.0, 1.0)) as usize;
    let mut heavy: FxHashMap<Symbol, ()> = FxHashMap::default();
    let mut used = 0usize;
    for (sym, count) in by_freq {
        if used >= budget {
            break;
        }
        heavy.insert(sym, ());
        used += count;
    }
    reweight(graph, |_, pred, _, w| {
        if heavy.contains_key(&pred) {
            w * 2
        } else {
            w
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EntityType;

    fn sample() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let a = b.add_node("A", EntityType::Gpe);
        let c = b.add_node("B", EntityType::Gpe);
        let d = b.add_node("C", EntityType::Organization);
        b.add_alias(d, "CC");
        b.add_edge(a, c, "located in", 1);
        b.add_edge(c, d, "located in", 1);
        b.add_edge(a, d, "rare link", 1);
        b.freeze()
    }

    #[test]
    fn reweight_preserves_structure() {
        let g = sample();
        let g2 = reweight(&g, |_, _, _, w| w * 3);
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        for node in g.nodes() {
            assert_eq!(g2.label(node), g.label(node));
            assert_eq!(g2.entity_type(node), g.entity_type(node));
            let a: Vec<_> = g.neighbors(node).iter().map(|e| (e.to, e.inverse)).collect();
            let b: Vec<_> = g2.neighbors(node).iter().map(|e| (e.to, e.inverse)).collect();
            assert_eq!(a, b);
            assert!(g2.neighbors(node).iter().all(|e| e.weight == 3));
        }
        assert_eq!(g2.aliases().count(), 1);
    }

    #[test]
    fn weights_clamped_to_one() {
        let g = sample();
        let g2 = reweight(&g, |_, _, _, _| 0);
        assert!(g2
            .nodes()
            .flat_map(|n| g2.neighbors(n).iter())
            .all(|e| e.weight == 1));
    }

    #[test]
    fn rarity_scheme_penalizes_common_predicates() {
        let g = sample();
        // "located in" covers 2 of 3 edges -> heavy at fraction 0.5.
        let g2 = reweight_by_predicate_rarity(&g, 0.5);
        let mut by_pred: FxHashMap<String, u32> = FxHashMap::default();
        for node in g2.nodes() {
            for e in g2.neighbors(node) {
                if !e.inverse {
                    by_pred.insert(g2.resolve(e.predicate).to_string(), e.weight);
                }
            }
        }
        assert_eq!(by_pred["located in"], 2);
        assert_eq!(by_pred["rare link"], 1);
    }

    #[test]
    fn zero_fraction_changes_nothing() {
        let g = sample();
        let g2 = reweight_by_predicate_rarity(&g, 0.0);
        for node in g2.nodes() {
            for (e1, e2) in g.neighbors(node).iter().zip(g2.neighbors(node)) {
                assert_eq!(e1.weight, e2.weight);
            }
        }
    }
}
