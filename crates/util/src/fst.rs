//! A byte-addressable, deterministic finite-state automaton over sorted
//! keys — the storage primitive behind the label→entity resolution path.
//!
//! [`FstBuilder`] consumes `(key, u64 value)` pairs in strictly ascending
//! key order and streams a prefix-sharing trie into one flat byte buffer:
//! children are serialized before their parents, every child reference is
//! a backward delta from the referencing node's own address, and node
//! addresses are plain byte offsets. The result is position-independent —
//! [`Fst`] reads it from a [`Bytes`] region that may live on the heap or
//! inside a memory-mapped snapshot, with zero decode at open time.
//!
//! Node layout (all integers little-endian / LEB128):
//!
//! ```text
//! header   u8    bit 7: node carries a value
//!                bits 5–6: transition-delta width minus one (1–4 bytes)
//!                bits 0–4: transition count, 31 = extended count follows
//! [count]  var   extended transition count (only when bits 0–4 == 31)
//! [value]  var   the node's u64 value (only when bit 7 set)
//! inputs   u8×t  transition input bytes, ascending
//! deltas   w×t   fixed-width backward deltas (node_addr − child_addr)
//! ```
//!
//! Keeping deltas fixed-width per node makes the hot lookup loop a byte
//! scan plus one unaligned little-endian read — no per-transition varint
//! decode for transitions that don't match.

use crate::bytes::Bytes;
use crate::varint;

/// Transition count at which the header switches to an extended count.
const COUNT_EXT: u8 = 31;
/// Header bit: this node is final and carries a value.
const HAS_VALUE: u8 = 0b1000_0000;

/// Errors from [`FstBuilder::insert`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FstBuildError {
    /// Keys must be inserted in strictly ascending byte order.
    OutOfOrder {
        /// The offending key.
        key: Vec<u8>,
    },
    /// The same key was inserted twice.
    Duplicate {
        /// The duplicated key.
        key: Vec<u8>,
    },
}

impl std::fmt::Display for FstBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FstBuildError::OutOfOrder { key } => {
                write!(f, "fst keys must be strictly ascending (got {key:?})")
            }
            FstBuildError::Duplicate { key } => write!(f, "duplicate fst key {key:?}"),
        }
    }
}

impl std::error::Error for FstBuildError {}

/// A node still open on the builder's path stack.
#[derive(Debug, Default)]
struct BuildNode {
    value: Option<u64>,
    /// `(input byte, absolute child address)`, ascending by input byte.
    trans: Vec<(u8, u64)>,
}

/// Streaming trie builder over strictly ascending keys.
///
/// Memory is bounded by the serialized output plus one stack of open
/// nodes (the current key's length), so arbitrarily many keys can be fed
/// from an external merge without materializing any intermediate map.
#[derive(Debug)]
pub struct FstBuilder {
    buf: Vec<u8>,
    /// `stack[d]` is the open node for the prefix `last_key[..d]`.
    stack: Vec<BuildNode>,
    last_key: Vec<u8>,
    len: usize,
}

/// The serialized output of a finished [`FstBuilder`].
#[derive(Debug, Clone)]
pub struct FstBytes {
    /// The automaton byte buffer.
    pub bytes: Vec<u8>,
    /// Address of the root node inside `bytes`.
    pub root: u64,
    /// Number of keys.
    pub len: u64,
}

impl FstBytes {
    /// View the owned buffer as an [`Fst`].
    pub fn into_fst(self) -> Fst {
        Fst::from_parts(Bytes::from_vec(self.bytes), self.root, self.len)
            .expect("builder output is well-formed")
    }
}

impl Default for FstBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl FstBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self {
            buf: Vec::new(),
            stack: vec![BuildNode::default()],
            last_key: Vec::new(),
            len: 0,
        }
    }

    /// Insert `key` with `value`. Keys must arrive in strictly ascending
    /// byte order; equal or descending keys are an error.
    pub fn insert(&mut self, key: &[u8], value: u64) -> Result<(), FstBuildError> {
        if self.len > 0 {
            match key.cmp(&self.last_key) {
                std::cmp::Ordering::Less => {
                    return Err(FstBuildError::OutOfOrder { key: key.to_vec() })
                }
                std::cmp::Ordering::Equal => {
                    return Err(FstBuildError::Duplicate { key: key.to_vec() })
                }
                std::cmp::Ordering::Greater => {}
            }
        }
        let cp = common_prefix(&self.last_key, key);
        self.freeze_to(cp);
        for _ in &key[cp..] {
            // Open one node per remaining byte; its address lands in the
            // parent's transition table when it freezes.
            self.stack.push(BuildNode::default());
        }
        self.stack
            .last_mut()
            .expect("stack never empty")
            .value = Some(value);
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        self.len += 1;
        Ok(())
    }

    /// Freeze open nodes until the stack holds `depth + 1` entries
    /// (root at depth 0).
    fn freeze_to(&mut self, depth: usize) {
        while self.stack.len() > depth + 1 {
            let node = self.stack.pop().expect("stack underflow");
            let addr = write_node(&mut self.buf, &node);
            let input = self.last_key[self.stack.len() - 1];
            self.stack
                .last_mut()
                .expect("root never pops here")
                .trans
                .push((input, addr));
        }
    }

    /// Finish the automaton, freezing the remaining path and the root.
    pub fn finish(mut self) -> FstBytes {
        self.freeze_to(0);
        let root = self.stack.pop().expect("root present");
        debug_assert!(self.stack.is_empty());
        let root_addr = write_node(&mut self.buf, &root);
        FstBytes {
            bytes: self.buf,
            root: root_addr,
            len: self.len as u64,
        }
    }

    /// Number of keys inserted so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no key has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

fn common_prefix(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

/// Serialize one node at the current end of `buf`, returning its address.
fn write_node(buf: &mut Vec<u8>, node: &BuildNode) -> u64 {
    let addr = buf.len() as u64;
    let t = node.trans.len();
    // Deltas are measured from the node's own address; children were
    // written earlier, so every delta is positive.
    let max_delta = node
        .trans
        .iter()
        .map(|&(_, child)| addr - child)
        .max()
        .unwrap_or(1);
    let width = delta_width(max_delta);
    let mut header = (width - 1) << 5;
    if node.value.is_some() {
        header |= HAS_VALUE;
    }
    if t < COUNT_EXT as usize {
        header |= t as u8;
        buf.push(header);
    } else {
        header |= COUNT_EXT;
        buf.push(header);
        varint::write_u64(buf, t as u64).expect("vec write");
    }
    if let Some(v) = node.value {
        varint::write_u64(buf, v).expect("vec write");
    }
    for &(b, _) in &node.trans {
        buf.push(b);
    }
    for &(_, child) in &node.trans {
        let delta = addr - child;
        buf.extend_from_slice(&delta.to_le_bytes()[..width as usize]);
    }
    addr
}

#[inline]
fn delta_width(max_delta: u64) -> u8 {
    if max_delta <= 0xFF {
        1
    } else if max_delta <= 0xFFFF {
        2
    } else if max_delta <= 0xFF_FFFF {
        3
    } else {
        4
    }
}

/// A state handle: the byte address of a node. Obtained from
/// [`Fst::root_state`] and advanced with [`Fst::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FstState(u64);

/// Errors from [`Fst::from_parts`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FstError {
    /// The root address points outside the buffer.
    RootOutOfBounds,
}

impl std::fmt::Display for FstError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FstError::RootOutOfBounds => write!(f, "fst root address out of bounds"),
        }
    }
}

impl std::error::Error for FstError {}

/// An immutable automaton over a [`Bytes`] region.
///
/// All reads are bounds-checked; malformed bytes yield `None` from
/// lookups rather than panicking (sections are checksummed upstream, so
/// this is defense in depth, not error reporting).
#[derive(Debug, Clone)]
pub struct Fst {
    data: Bytes,
    root: u64,
    len: u64,
}

/// A decoded node header: where the pieces of one node live. The value
/// varint is located but not decoded — the lookup loop never needs it
/// for intermediate nodes, only for the terminal one.
#[derive(Debug, Clone, Copy)]
struct NodeRef {
    /// Offset of the value varint, when the node is final.
    value_at: Option<usize>,
    /// Transition count.
    trans: usize,
    /// Offset of the input-byte array.
    inputs_at: usize,
    /// Delta width in bytes.
    width: usize,
    /// The node's own address (deltas are relative to it).
    addr: u64,
}

impl Fst {
    /// Wrap serialized automaton bytes produced by [`FstBuilder`].
    pub fn from_parts(data: Bytes, root: u64, len: u64) -> Result<Self, FstError> {
        if len > 0 && root as usize >= data.len() {
            return Err(FstError::RootOutOfBounds);
        }
        if len == 0 && !data.is_empty() && root as usize >= data.len() {
            return Err(FstError::RootOutOfBounds);
        }
        Ok(Self { data, root, len })
    }

    /// An automaton holding no keys.
    pub fn empty() -> Self {
        FstBuilder::new().finish().into_fst()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the automaton holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size of the serialized automaton in bytes.
    pub fn bytes_len(&self) -> usize {
        self.data.len()
    }

    /// The backing byte region (for serialization).
    pub fn data(&self) -> &Bytes {
        &self.data
    }

    /// The root node's address (for serialization).
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Decode the node at `addr`. Returns `None` on malformed bytes.
    #[inline]
    fn node(&self, addr: u64) -> Option<NodeRef> {
        let bytes = self.data.as_slice();
        let mut at = addr as usize;
        let header = *bytes.get(at)?;
        at += 1;
        let width = (((header >> 5) & 0b11) + 1) as usize;
        let small = header & 0b1_1111;
        let trans = if small == COUNT_EXT {
            let mut cur = bytes.get(at..)?;
            let before = cur.len();
            let t = varint::read_u64(&mut cur).ok()?;
            at += before - cur.len();
            usize::try_from(t).ok()?
        } else {
            small as usize
        };
        let value_at = if header & HAS_VALUE != 0 {
            let v_at = at;
            // Skip the varint without assembling it; `node_value` decodes
            // on demand.
            loop {
                let b = *bytes.get(at)?;
                at += 1;
                if b & 0x80 == 0 {
                    break;
                }
            }
            Some(v_at)
        } else {
            None
        };
        // The whole transition table must be in bounds.
        let end = at.checked_add(trans.checked_mul(1 + width)?)?;
        if end > bytes.len() {
            return None;
        }
        Some(NodeRef {
            value_at,
            trans,
            inputs_at: at,
            width,
            addr,
        })
    }

    /// Decode the value of a final node.
    #[inline]
    fn node_value(&self, node: &NodeRef) -> Option<u64> {
        let at = node.value_at?;
        let mut cur = self.data.as_slice().get(at..)?;
        varint::read_u64(&mut cur).ok()
    }

    /// Child address for `input`, if the node has that transition.
    #[inline]
    fn child(&self, node: NodeRef, input: u8) -> Option<u64> {
        let bytes = self.data.as_slice();
        let inputs = &bytes[node.inputs_at..node.inputs_at + node.trans];
        // Small fan-out (the overwhelmingly common case in a label trie)
        // scans linearly — cheaper than binary search's branches.
        let i = if node.trans <= 16 {
            inputs.iter().position(|&b| b == input)?
        } else {
            inputs.binary_search(&input).ok()?
        };
        let deltas_at = node.inputs_at + node.trans;
        let off = deltas_at + i * node.width;
        let mut delta = 0u64;
        for (k, &b) in bytes[off..off + node.width].iter().enumerate() {
            delta |= u64::from(b) << (8 * k);
        }
        node.addr.checked_sub(delta)
    }

    /// The start state (the empty prefix).
    #[inline]
    pub fn root_state(&self) -> FstState {
        FstState(self.root)
    }

    /// Advance `state` by one input byte; `None` when no key continues
    /// this way.
    #[inline]
    pub fn step(&self, state: FstState, input: u8) -> Option<FstState> {
        let node = self.node(state.0)?;
        self.child(node, input).map(FstState)
    }

    /// The value at `state`, when the path to it spells a stored key.
    #[inline]
    pub fn value(&self, state: FstState) -> Option<u64> {
        let node = self.node(state.0)?;
        self.node_value(&node)
    }

    /// Walk `key` from the root.
    pub fn state_of(&self, key: &[u8]) -> Option<FstState> {
        let mut state = self.root_state();
        for &b in key {
            state = self.step(state, b)?;
        }
        Some(state)
    }

    /// One fused decode-and-step: advance from the node at `addr` along
    /// `input`, never materializing a [`NodeRef`]. This is the exact-
    /// lookup hot loop — every byte of every gazetteer probe goes through
    /// here.
    #[inline]
    fn step_addr(bytes: &[u8], addr: u64, input: u8) -> Option<u64> {
        let mut at = addr as usize;
        let header = *bytes.get(at)?;
        at += 1;
        let width = (((header >> 5) & 0b11) + 1) as usize;
        let small = header & 0b1_1111;
        let trans = if small == COUNT_EXT {
            let mut cur = bytes.get(at..)?;
            let before = cur.len();
            let t = varint::read_u64(&mut cur).ok()?;
            at += before - cur.len();
            usize::try_from(t).ok()?
        } else {
            small as usize
        };
        if header & HAS_VALUE != 0 {
            // Skip the value varint; only terminal nodes decode it.
            loop {
                let b = *bytes.get(at)?;
                at += 1;
                if b & 0x80 == 0 {
                    break;
                }
            }
        }
        let inputs = bytes.get(at..at.checked_add(trans)?)?;
        let i = if trans <= 16 {
            inputs.iter().position(|&b| b == input)?
        } else {
            inputs.binary_search(&input).ok()?
        };
        let off = at + trans + i * width;
        let delta = if let Some(win) = bytes.get(off..off + 8) {
            // Single unaligned load, masked to the delta width.
            let raw = u64::from_le_bytes(win.try_into().ok()?);
            raw & (u64::MAX >> (64 - 8 * width))
        } else {
            let win = bytes.get(off..off.checked_add(width)?)?;
            let mut d = 0u64;
            for (k, &b) in win.iter().enumerate() {
                d |= u64::from(b) << (8 * k);
            }
            d
        };
        addr.checked_sub(delta)
    }

    /// Exact lookup. Fused walk: one decode per byte, the terminal node
    /// decoded once more for its value.
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        let bytes = self.data.as_slice();
        let mut addr = self.root;
        for &b in key {
            addr = Self::step_addr(bytes, addr, b)?;
        }
        let node = self.node(addr)?;
        self.node_value(&node)
    }

    /// True when `key` is stored.
    pub fn contains_key(&self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }

    /// Iterate every `(key, value)` whose key starts with `prefix`, in
    /// ascending key order.
    pub fn iter_prefix(&self, prefix: &[u8]) -> FstIter<'_> {
        match self.state_of(prefix) {
            Some(state) => FstIter {
                fst: self,
                key: prefix.to_vec(),
                stack: vec![IterFrame {
                    addr: state.0,
                    next: 0,
                    yielded: false,
                }],
            },
            None => FstIter {
                fst: self,
                key: Vec::new(),
                stack: Vec::new(),
            },
        }
    }

    /// Iterate every `(key, value)` pair in ascending key order.
    pub fn iter(&self) -> FstIter<'_> {
        self.iter_prefix(&[])
    }
}

#[derive(Debug)]
struct IterFrame {
    addr: u64,
    next: usize,
    yielded: bool,
}

/// Depth-first, in-order iterator over `(key, value)` pairs.
#[derive(Debug)]
pub struct FstIter<'a> {
    fst: &'a Fst,
    key: Vec<u8>,
    stack: Vec<IterFrame>,
}

impl Iterator for FstIter<'_> {
    type Item = (Vec<u8>, u64);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let frame = self.stack.last_mut()?;
            // Malformed bytes stop iteration.
            let node = self.fst.node(frame.addr)?;
            if !frame.yielded {
                frame.yielded = true;
                if let Some(v) = self.fst.node_value(&node) {
                    return Some((self.key.clone(), v));
                }
            }
            if frame.next < node.trans {
                let i = frame.next;
                frame.next += 1;
                let input = self.fst.data.as_slice()[node.inputs_at + i];
                if let Some(child) = self.fst.child(node, input) {
                    self.key.push(input);
                    self.stack.push(IterFrame {
                        addr: child,
                        next: 0,
                        yielded: false,
                    });
                }
            } else {
                self.stack.pop();
                self.key.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(keys: &[(&str, u64)]) -> Fst {
        let mut b = FstBuilder::new();
        for (k, v) in keys {
            b.insert(k.as_bytes(), *v).unwrap();
        }
        b.finish().into_fst()
    }

    #[test]
    fn default_builder_equals_new() {
        // Regression: a derived Default once produced a rootless stack
        // that silently dropped the final byte of the first key.
        let mut b = FstBuilder::default();
        b.insert(b"bernie sanders", 1).unwrap();
        b.insert(b"sanders", 2).unwrap();
        let f = b.finish().into_fst();
        assert_eq!(f.get(b"bernie sanders"), Some(1));
        assert_eq!(f.get(b"bernie sander"), None);
        assert_eq!(f.get(b"sanders"), Some(2));
    }

    #[test]
    fn empty_automaton() {
        let f = Fst::empty();
        assert!(f.is_empty());
        assert_eq!(f.get(b""), None);
        assert_eq!(f.get(b"x"), None);
        assert_eq!(f.iter().count(), 0);
    }

    #[test]
    fn exact_lookup_round_trips() {
        let keys = [("ab", 1u64), ("abc", 2), ("abd", 3), ("b", 4), ("ba", 5)];
        let f = build(&keys);
        assert_eq!(f.len(), 5);
        for (k, v) in keys {
            assert_eq!(f.get(k.as_bytes()), Some(v), "key {k:?}");
        }
        assert_eq!(f.get(b"a"), None);
        assert_eq!(f.get(b"abe"), None);
        assert_eq!(f.get(b"abcd"), None);
        assert_eq!(f.get(b""), None);
    }

    #[test]
    fn empty_key_is_representable() {
        let f = build(&[("", 9), ("a", 1)]);
        assert_eq!(f.get(b""), Some(9));
        assert_eq!(f.get(b"a"), Some(1));
    }

    #[test]
    fn out_of_order_and_duplicate_rejected() {
        let mut b = FstBuilder::new();
        b.insert(b"b", 0).unwrap();
        assert_eq!(
            b.insert(b"a", 1),
            Err(FstBuildError::OutOfOrder { key: b"a".to_vec() })
        );
        assert_eq!(
            b.insert(b"b", 1),
            Err(FstBuildError::Duplicate { key: b"b".to_vec() })
        );
        // The builder survives rejected inserts.
        b.insert(b"c", 2).unwrap();
        let f = b.finish().into_fst();
        assert_eq!(f.get(b"b"), Some(0));
        assert_eq!(f.get(b"c"), Some(2));
    }

    #[test]
    fn step_walks_states() {
        let f = build(&[("new york", 1), ("new york city", 2), ("newark", 3)]);
        let mut s = f.root_state();
        for b in "new york".bytes() {
            s = f.step(s, b).unwrap();
        }
        assert_eq!(f.value(s), Some(1));
        for b in " city".bytes() {
            s = f.step(s, b).unwrap();
        }
        assert_eq!(f.value(s), Some(2));
        assert_eq!(f.step(s, b'x'), None);
    }

    #[test]
    fn prefix_iteration_is_sorted_and_complete() {
        let keys = [
            ("bern", 10u64),
            ("bernie", 11),
            ("bernie sanders", 12),
            ("berwick", 13),
            ("sanders", 14),
        ];
        let f = build(&keys);
        let all: Vec<(String, u64)> = f
            .iter()
            .map(|(k, v)| (String::from_utf8(k).unwrap(), v))
            .collect();
        assert_eq!(
            all,
            keys.iter().map(|(k, v)| (k.to_string(), *v)).collect::<Vec<_>>()
        );
        let bern: Vec<u64> = f.iter_prefix(b"bernie").map(|(_, v)| v).collect();
        assert_eq!(bern, vec![11, 12]);
        assert_eq!(f.iter_prefix(b"zzz").count(), 0);
    }

    #[test]
    fn unicode_keys_survive() {
        let mut keys: Vec<(String, u64)> = vec![
            ("köln".to_string(), 1),
            ("北京".to_string(), 2),
            ("北海道".to_string(), 3),
            ("ürümqi".to_string(), 4),
        ];
        keys.sort_by(|a, b| a.0.as_bytes().cmp(b.0.as_bytes()));
        let mut b = FstBuilder::new();
        for (i, (k, _)) in keys.iter().enumerate() {
            b.insert(k.as_bytes(), i as u64).unwrap();
        }
        let f = b.finish().into_fst();
        for (i, (k, _)) in keys.iter().enumerate() {
            assert_eq!(f.get(k.as_bytes()), Some(i as u64));
        }
    }

    #[test]
    fn wide_fanout_uses_extended_count() {
        // A root with 200 children exercises the extended-count header
        // and multi-byte deltas.
        let mut b = FstBuilder::new();
        let mut keys = Vec::new();
        for i in 0u32..200 {
            // Two-byte keys; first byte spreads fanout, second pads.
            keys.push(vec![(i % 250) as u8, (i / 250) as u8 + 1]);
        }
        keys.sort();
        keys.dedup();
        for (i, k) in keys.iter().enumerate() {
            b.insert(k, i as u64).unwrap();
        }
        let f = b.finish().into_fst();
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(f.get(k), Some(i as u64), "key {k:?}");
        }
        assert_eq!(f.len(), keys.len());
    }

    #[test]
    fn large_sorted_set_round_trips() {
        let mut keys: Vec<String> = (0..5000u32).map(|i| format!("key {i:06}")).collect();
        keys.sort();
        let mut b = FstBuilder::new();
        for (i, k) in keys.iter().enumerate() {
            b.insert(k.as_bytes(), (i * 7) as u64).unwrap();
        }
        let f = b.finish().into_fst();
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(f.get(k.as_bytes()), Some((i * 7) as u64));
        }
        // Prefix sharing must compress the shared "key 00…" prefixes.
        let raw: usize = keys.iter().map(|k| k.len() + 8).sum();
        assert!(
            f.bytes_len() < raw,
            "automaton ({} B) should beat raw keys+values ({} B)",
            f.bytes_len(),
            raw
        );
        let collected: Vec<String> = f
            .iter()
            .map(|(k, _)| String::from_utf8(k).unwrap())
            .collect();
        assert_eq!(collected, keys);
    }

    #[test]
    fn values_spanning_u64_range() {
        let f = build(&[("a", 0), ("b", u64::MAX), ("c", 1 << 40)]);
        assert_eq!(f.get(b"a"), Some(0));
        assert_eq!(f.get(b"b"), Some(u64::MAX));
        assert_eq!(f.get(b"c"), Some(1 << 40));
    }

    #[test]
    fn malformed_bytes_do_not_panic() {
        let good = build(&[("abc", 1), ("abd", 2)]);
        // Truncate the buffer: lookups must fail closed.
        let raw = good.data().as_slice().to_vec();
        for cut in 0..raw.len() {
            let f = Fst::from_parts(
                Bytes::from_vec(raw[..cut].to_vec()),
                good.root().min(cut.saturating_sub(1) as u64),
                2,
            );
            if let Ok(f) = f {
                let _ = f.get(b"abc");
                let _ = f.iter().take(10).count();
            }
        }
    }
}
