//! Capacity-bounded caching primitives.
//!
//! The hot NewsLink paths (entity-group traversal, query embedding) see
//! heavy key repetition on real corpora, so the engine fronts them with
//! bounded caches. This module provides the building blocks shared by
//! every cache in the workspace:
//!
//! - [`ClockCache`] — a bounded map with CLOCK (second-chance) eviction,
//!   an LRU approximation whose `get` needs no mutation beyond an atomic
//!   reference bit, so reads can run under a shared lock;
//! - [`CacheCounters`] — lock-free hit/miss/eviction counters;
//! - [`CacheStats`] — a plain snapshot of those counters for reporting,
//!   in the same spirit as [`crate::timer::ComponentTimer`] breakdowns.

use std::borrow::Borrow;
use std::hash::Hash;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::FxHashMap;

/// A snapshot of cache activity, cheap to copy and to difference.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries displaced by the eviction policy.
    pub evictions: u64,
    /// Live entries at snapshot time.
    pub entries: usize,
}

impl CacheStats {
    /// Total lookups observed.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit fraction in `[0, 1]`; zero when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let n = self.lookups();
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }

    /// Activity since an `earlier` snapshot of the same cache (entry count
    /// is taken from `self`).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            entries: self.entries,
        }
    }

    /// Combine two snapshots (e.g. across shards or cache tiers).
    pub fn merged(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
            entries: self.entries + other.entries,
        }
    }
}

/// Lock-free hit/miss/eviction counters, shared by concurrent readers.
#[derive(Debug, Default)]
pub struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CacheCounters {
    /// Count one cache hit.
    #[inline]
    pub fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one cache miss.
    #[inline]
    pub fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one eviction.
    #[inline]
    pub fn evict(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the counters together with a live entry count.
    pub fn snapshot(&self, entries: usize) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
        }
    }
}

/// One occupied cache slot.
#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
    /// The CLOCK reference bit; set on every `get`, cleared by the sweep.
    referenced: AtomicBool,
}

/// A bounded map with CLOCK (second-chance) eviction.
///
/// Lookups mark the slot's reference bit through a shared reference, so a
/// `ClockCache` behind an `RwLock` serves concurrent readers without
/// upgrading to a write lock; only inserts need exclusive access. A
/// capacity of zero yields a no-op cache (every `get` misses, `insert`
/// does nothing), which is how cache-disabled configurations are run
/// through the same code path.
#[derive(Debug)]
pub struct ClockCache<K, V> {
    slots: Vec<Slot<K, V>>,
    index: FxHashMap<K, usize>,
    capacity: usize,
    hand: usize,
    evictions: u64,
}

impl<K: Hash + Eq + Clone, V> ClockCache<K, V> {
    /// Create a cache bounded to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            slots: Vec::new(),
            index: FxHashMap::default(),
            capacity,
            hand: 0,
            evictions: 0,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Entries displaced so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Look up `key`, marking the entry as recently used. Accepts any
    /// borrowed form of the key (e.g. `&str` for `String` keys), so a
    /// probe never has to allocate an owned key.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let &i = self.index.get(key)?;
        let slot = &self.slots[i];
        slot.referenced.store(true, Ordering::Relaxed);
        Some(&slot.value)
    }

    /// True when `key` is cached (does not touch the reference bit).
    pub fn contains<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.index.contains_key(key)
    }

    /// Insert or replace `key`, evicting a victim chosen by the clock
    /// sweep when full. Returns the evicted entry, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if self.capacity == 0 {
            return None;
        }
        if let Some(&i) = self.index.get(&key) {
            let slot = &mut self.slots[i];
            slot.value = value;
            slot.referenced.store(true, Ordering::Relaxed);
            return None;
        }
        if self.slots.len() < self.capacity {
            let i = self.slots.len();
            self.index.insert(key.clone(), i);
            self.slots.push(Slot {
                key,
                value,
                referenced: AtomicBool::new(true),
            });
            return None;
        }
        // Clock sweep: give referenced slots a second chance; terminates
        // within two revolutions because the sweep clears every bit it
        // passes.
        loop {
            let i = self.hand;
            self.hand = (self.hand + 1) % self.slots.len();
            if self.slots[i].referenced.swap(false, Ordering::Relaxed) {
                continue;
            }
            let victim = std::mem::replace(
                &mut self.slots[i],
                Slot {
                    key: key.clone(),
                    value,
                    referenced: AtomicBool::new(true),
                },
            );
            self.index.remove(&victim.key);
            self.index.insert(key, i);
            self.evictions += 1;
            return Some((victim.key, victim.value));
        }
    }

    /// Drop every entry (counters are preserved).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.index.clear();
        self.hand = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_miss_then_hit() {
        let mut c: ClockCache<u32, &str> = ClockCache::new(4);
        assert!(c.get(&1).is_none());
        c.insert(1, "one");
        assert_eq!(c.get(&1), Some(&"one"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn replace_updates_value_without_eviction() {
        let mut c = ClockCache::new(2);
        c.insert(1, 10);
        assert!(c.insert(1, 11).is_none());
        assert_eq!(c.get(&1), Some(&11));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_unreferenced_first() {
        let mut c = ClockCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        // Sweep clears both fresh reference bits, then touch key 1 only.
        c.insert(3, 30); // evicts one of {1, 2}; both referenced -> second pass evicts slot 0 (key 1)
        assert_eq!(c.len(), 2);
        assert!(c.contains(&3));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn recently_used_survives_pressure() {
        let mut c = ClockCache::new(3);
        c.insert(1, 1);
        c.insert(2, 2);
        c.insert(3, 3);
        // One full sweep clears all bits, then keep 2 hot. Each sweep
        // consumes one second chance, so the entry must be re-touched
        // between insertions to stay protected.
        c.insert(4, 4);
        assert!(c.get(&2).is_some() || !c.contains(&2));
        if c.contains(&2) {
            c.get(&2);
            c.insert(5, 5);
            c.get(&2);
            c.insert(6, 6);
            assert!(c.contains(&2), "hot entry evicted before cold ones");
        }
    }

    #[test]
    fn zero_capacity_is_noop() {
        let mut c = ClockCache::new(0);
        assert!(c.insert(1, 1).is_none());
        assert!(c.get(&1).is_none());
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 0);
    }

    #[test]
    fn clear_empties_but_keeps_working() {
        let mut c = ClockCache::new(2);
        c.insert(1, 1);
        c.clear();
        assert!(c.is_empty());
        c.insert(2, 2);
        assert_eq!(c.get(&2), Some(&2));
    }

    #[test]
    fn bounded_under_churn() {
        let mut c = ClockCache::new(8);
        for i in 0..1000u32 {
            c.insert(i, i);
            assert!(c.len() <= 8);
        }
        assert_eq!(c.evictions(), 1000 - 8);
    }

    #[test]
    fn stats_snapshot_and_since() {
        let counters = CacheCounters::default();
        counters.hit();
        counters.hit();
        counters.miss();
        counters.evict();
        let a = counters.snapshot(5);
        assert_eq!(a.hits, 2);
        assert_eq!(a.misses, 1);
        assert_eq!(a.evictions, 1);
        assert_eq!(a.entries, 5);
        assert_eq!(a.lookups(), 3);
        assert!((a.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        counters.hit();
        let b = counters.snapshot(6);
        let d = b.since(&a);
        assert_eq!(d.hits, 1);
        assert_eq!(d.misses, 0);
        assert_eq!(d.entries, 6);
        let m = a.merged(&d);
        assert_eq!(m.hits, 3);
        assert_eq!(m.entries, 11);
    }

    #[test]
    fn empty_stats_rate_is_zero() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
