//! Per-component stopwatches.
//!
//! The paper reports per-component time breakdowns: Figure 7 (average
//! embedding time per news document) and Table VIII (query processing time
//! per component: NLP / NE / NS). [`ComponentTimer`] accumulates wall-clock
//! time under string keys and reports means over a counted number of work
//! items, which is exactly the shape those tables need.

use std::time::{Duration, Instant};

use crate::FxHashMap;

/// Accumulates elapsed time per named component.
#[derive(Debug, Default, Clone)]
pub struct ComponentTimer {
    totals: FxHashMap<&'static str, Duration>,
    counts: FxHashMap<&'static str, u64>,
}

impl ComponentTimer {
    /// Create an empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Time a closure under `component`, counting one work item.
    pub fn time<R>(&mut self, component: &'static str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.record(component, start.elapsed());
        out
    }

    /// Record an externally measured duration (one work item).
    pub fn record(&mut self, component: &'static str, elapsed: Duration) {
        *self.totals.entry(component).or_default() += elapsed;
        *self.counts.entry(component).or_default() += 1;
    }

    /// Record a duration that covers `items` work items.
    pub fn record_batch(&mut self, component: &'static str, elapsed: Duration, items: u64) {
        *self.totals.entry(component).or_default() += elapsed;
        *self.counts.entry(component).or_default() += items;
    }

    /// Total accumulated time for a component.
    pub fn total(&self, component: &str) -> Duration {
        self.totals.get(component).copied().unwrap_or_default()
    }

    /// Number of recorded work items for a component.
    pub fn count(&self, component: &str) -> u64 {
        self.counts.get(component).copied().unwrap_or_default()
    }

    /// Mean time per work item for a component, or zero when unrecorded.
    pub fn mean(&self, component: &str) -> Duration {
        let n = self.count(component);
        if n == 0 {
            Duration::ZERO
        } else {
            self.total(component) / n as u32
        }
    }

    /// Merge another timer's accumulations into this one.
    pub fn merge(&mut self, other: &ComponentTimer) {
        for (k, v) in &other.totals {
            *self.totals.entry(k).or_default() += *v;
        }
        for (k, v) in &other.counts {
            *self.counts.entry(k).or_default() += *v;
        }
    }

    /// Component names observed so far, sorted for stable reporting.
    pub fn components(&self) -> Vec<&'static str> {
        let mut keys: Vec<_> = self.totals.keys().copied().collect();
        keys.sort_unstable();
        keys
    }
}

/// Render as `{component: {"total_ns", "count"}, …}` with components in
/// sorted order, the wire shape of per-request timer reports.
#[cfg(feature = "serde")]
impl serde::Serialize for ComponentTimer {
    fn serialize_value(&self) -> serde::Value {
        let fields = self
            .components()
            .into_iter()
            .map(|c| {
                let total_ns = u64::try_from(self.total(c).as_nanos()).unwrap_or(u64::MAX);
                let entry = serde::Value::Object(vec![
                    ("total_ns".to_string(), total_ns.serialize_value()),
                    ("count".to_string(), self.count(c).serialize_value()),
                ]);
                (c.to_string(), entry)
            })
            .collect();
        serde::Value::Object(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_accumulates_and_counts() {
        let mut t = ComponentTimer::new();
        let v = t.time("ne", || 21 * 2);
        assert_eq!(v, 42);
        t.time("ne", || ());
        assert_eq!(t.count("ne"), 2);
        assert!(t.total("ne") >= Duration::ZERO);
    }

    #[test]
    fn unknown_component_is_zero() {
        let t = ComponentTimer::new();
        assert_eq!(t.total("nope"), Duration::ZERO);
        assert_eq!(t.count("nope"), 0);
        assert_eq!(t.mean("nope"), Duration::ZERO);
    }

    #[test]
    fn record_batch_divides_mean() {
        let mut t = ComponentTimer::new();
        t.record_batch("nlp", Duration::from_millis(100), 10);
        assert_eq!(t.mean("nlp"), Duration::from_millis(10));
        assert_eq!(t.count("nlp"), 10);
    }

    #[test]
    fn merge_combines_streams() {
        let mut a = ComponentTimer::new();
        a.record("x", Duration::from_millis(5));
        let mut b = ComponentTimer::new();
        b.record("x", Duration::from_millis(7));
        b.record("y", Duration::from_millis(1));
        a.merge(&b);
        assert_eq!(a.total("x"), Duration::from_millis(12));
        assert_eq!(a.count("x"), 2);
        assert_eq!(a.count("y"), 1);
        assert_eq!(a.components(), vec!["x", "y"]);
    }
}
