//! Bounded top-k selection over a stream of scored items.
//!
//! Every ranking component in the workspace (BOW search, BON search, the
//! blended NewsLink scorer, all baselines) funnels candidates through this
//! structure. It keeps the k best-scoring items in a min-heap so that each
//! push is `O(log k)` and the common reject path (score below the current
//! threshold once the heap is full) is `O(1)`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scored entry. Ordered by score ascending so the *worst* retained item
/// sits at the top of the `BinaryHeap` (min-heap via reversed comparison).
#[derive(Debug, Clone, Copy)]
struct Entry<T> {
    score: f64,
    tie: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.tie == other.tie
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: lower score = "greater" so BinaryHeap pops the minimum.
        // Ties broken by insertion sequence (later = greater) to keep the
        // earliest item when scores are equal, yielding deterministic output.
        other
            .score
            .total_cmp(&self.score)
            .then_with(|| other.tie.cmp(&self.tie))
    }
}

/// A bounded collector that retains the `k` highest-scoring items.
///
/// Ties are broken toward earlier insertions, so results are deterministic
/// for a fixed push order.
#[derive(Debug, Clone)]
pub struct TopK<T> {
    k: usize,
    seq: u64,
    heap: BinaryHeap<Entry<T>>,
}

impl<T> TopK<T> {
    /// Create a collector for the top `k` items. `k == 0` collects nothing.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            seq: 0,
            heap: BinaryHeap::with_capacity(k.saturating_add(1)),
        }
    }

    /// Number of items currently retained.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no items are retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The score an item must *exceed* to enter a full collector, if full.
    pub fn threshold(&self) -> Option<f64> {
        if self.heap.len() >= self.k {
            self.heap.peek().map(|e| e.score)
        } else {
            None
        }
    }

    /// Offer an item. Returns `true` if it was retained.
    pub fn push(&mut self, score: f64, item: T) -> bool {
        if self.k == 0 {
            return false;
        }
        if self.heap.len() == self.k {
            // Fast reject: strictly worse than (or tied with) the current
            // minimum loses — earlier insertions win ties.
            let min = self.heap.peek().expect("heap non-empty when full");
            if score <= min.score {
                return false;
            }
            self.heap.pop();
        }
        self.heap.push(Entry {
            score,
            tie: self.seq,
            item,
        });
        self.seq += 1;
        true
    }

    /// Consume the collector, returning `(score, item)` pairs sorted by
    /// descending score (earlier-inserted first among equal scores).
    pub fn into_sorted(self) -> Vec<(f64, T)> {
        let mut entries: Vec<Entry<T>> = self.heap.into_vec();
        entries.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.tie.cmp(&b.tie)));
        entries.into_iter().map(|e| (e.score, e.item)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_best_k() {
        let mut tk = TopK::new(3);
        for (s, i) in [(1.0, 'a'), (5.0, 'b'), (3.0, 'c'), (4.0, 'd'), (2.0, 'e')] {
            tk.push(s, i);
        }
        let out = tk.into_sorted();
        assert_eq!(
            out.iter().map(|(_, c)| *c).collect::<String>(),
            "bdc".to_string()
        );
    }

    #[test]
    fn fewer_than_k_returns_all_sorted() {
        let mut tk = TopK::new(10);
        tk.push(1.0, "x");
        tk.push(9.0, "y");
        let out = tk.into_sorted();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].1, "y");
        assert_eq!(out[1].1, "x");
    }

    #[test]
    fn zero_k_accepts_nothing() {
        let mut tk = TopK::new(0);
        assert!(!tk.push(100.0, ()));
        assert!(tk.is_empty());
        assert!(tk.into_sorted().is_empty());
    }

    #[test]
    fn ties_prefer_earlier_insertions() {
        let mut tk = TopK::new(2);
        tk.push(1.0, "first");
        tk.push(1.0, "second");
        tk.push(1.0, "third"); // tied with the minimum -> rejected
        let out = tk.into_sorted();
        assert_eq!(out[0].1, "first");
        assert_eq!(out[1].1, "second");
    }

    #[test]
    fn threshold_reports_current_minimum_when_full() {
        let mut tk = TopK::new(2);
        assert_eq!(tk.threshold(), None);
        tk.push(3.0, ());
        assert_eq!(tk.threshold(), None);
        tk.push(7.0, ());
        assert_eq!(tk.threshold(), Some(3.0));
        tk.push(5.0, ());
        assert_eq!(tk.threshold(), Some(5.0));
    }

    #[test]
    fn push_reports_retention() {
        let mut tk = TopK::new(1);
        assert!(tk.push(1.0, ()));
        assert!(!tk.push(0.5, ()));
        assert!(tk.push(2.0, ()));
    }

    #[test]
    fn handles_negative_and_nan_free_ordering() {
        let mut tk = TopK::new(2);
        tk.push(-5.0, "a");
        tk.push(-1.0, "b");
        tk.push(-3.0, "c");
        let out = tk.into_sorted();
        assert_eq!(out[0].1, "b");
        assert_eq!(out[1].1, "c");
    }

    #[test]
    fn large_stream_matches_naive_selection() {
        let mut tk = TopK::new(16);
        let mut all = Vec::new();
        let mut x = 123456789u64;
        for i in 0..5000u64 {
            // simple LCG scores
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let score = (x >> 33) as f64 / 1e6;
            all.push((score, i));
            tk.push(score, i);
        }
        all.sort_by(|a, b| b.0.total_cmp(&a.0));
        let got = tk.into_sorted();
        for (g, w) in got.iter().zip(all.iter().take(16)) {
            assert_eq!(g.0, w.0);
            assert_eq!(g.1, w.1);
        }
    }
}
