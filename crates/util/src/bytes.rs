//! [`Bytes`]: a cheaply-sliceable, backend-agnostic byte region.
//!
//! The storage layer hands out byte ranges that may live on the heap
//! (owned buffers, `RamDirectory` files) or inside a memory-mapped
//! snapshot ([`crate::mmap::Mmap`]). `Bytes` erases the difference: it
//! is a `(source, start, len)` view that dereferences to `&[u8]`, and
//! [`Bytes::slice`] produces sub-views without copying — cloning the
//! shared source handle, never its contents. Posting lists built from a
//! mapped segment therefore reference the mapping directly; the OS page
//! cache, not the process heap, holds the corpus.

use std::ops::Range;
use std::sync::Arc;

use crate::mmap::Mmap;

/// Where a [`Bytes`] view's storage lives.
#[derive(Clone)]
enum Source {
    /// A borrowed static region (the empty constant).
    Static(&'static [u8]),
    /// Shared heap storage.
    Heap(Arc<[u8]>),
    /// A shared memory-mapped file.
    Mapped(Arc<Mmap>),
}

impl Source {
    #[inline]
    fn as_slice(&self) -> &[u8] {
        match self {
            Source::Static(s) => s,
            Source::Heap(v) => v,
            Source::Mapped(m) => m.as_slice(),
        }
    }
}

/// An immutable byte region over heap or memory-mapped storage.
///
/// Clones and [slices](Bytes::slice) are O(1): they share the backing
/// storage. Equality and hashing compare contents, matching `&[u8]`.
#[derive(Clone)]
pub struct Bytes {
    source: Source,
    start: usize,
    len: usize,
}

impl Bytes {
    /// The empty region (const, so it can live in a `static`).
    pub const fn empty() -> Self {
        Self {
            source: Source::Static(&[]),
            start: 0,
            len: 0,
        }
    }

    /// Take ownership of a heap buffer.
    pub fn from_vec(v: Vec<u8>) -> Self {
        let len = v.len();
        Self {
            source: Source::Heap(Arc::from(v)),
            start: 0,
            len,
        }
    }

    /// Share an already-counted heap buffer.
    pub fn from_arc(v: Arc<[u8]>) -> Self {
        let len = v.len();
        Self {
            source: Source::Heap(v),
            start: 0,
            len,
        }
    }

    /// View a whole memory mapping.
    pub fn from_mmap(map: Arc<Mmap>) -> Self {
        let len = map.len();
        Self {
            source: Source::Mapped(map),
            start: 0,
            len,
        }
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the region is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bytes themselves.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.source.as_slice()[self.start..self.start + self.len]
    }

    /// A zero-copy sub-view. Panics when `range` exceeds the region
    /// (same contract as slicing `&[u8]`).
    pub fn slice(&self, range: Range<usize>) -> Self {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "slice {range:?} out of bounds of {} bytes",
            self.len
        );
        Self {
            source: self.source.clone(),
            start: self.start + range.start,
            len: range.end - range.start,
        }
    }

    /// True when the backing storage is a memory-mapped file (the view
    /// costs no process heap).
    pub fn is_mapped(&self) -> bool {
        matches!(self.source, Source::Mapped(_))
    }

    /// Heap bytes attributable to this view: its length for heap-backed
    /// storage, zero for mapped or static storage. (Shared heap sources
    /// are counted per view — accounting, not allocation truth.)
    pub fn heap_bytes(&self) -> usize {
        match self.source {
            Source::Heap(_) => self.len,
            Source::Static(_) | Source::Mapped(_) => 0,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::empty()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self::from_vec(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.source {
            Source::Static(_) => "static",
            Source::Heap(_) => "heap",
            Source::Mapped(_) => "mapped",
        };
        write!(f, "Bytes({kind}, {} bytes)", self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_const_and_default() {
        static EMPTY: Bytes = Bytes::empty();
        assert!(EMPTY.is_empty());
        assert_eq!(&*EMPTY, &[] as &[u8]);
        assert_eq!(Bytes::default(), EMPTY);
        assert_eq!(EMPTY.heap_bytes(), 0);
        assert!(!EMPTY.is_mapped());
    }

    #[test]
    fn heap_round_trip_and_slicing() {
        let b = Bytes::from_vec((0u8..32).collect());
        assert_eq!(b.len(), 32);
        assert_eq!(b.heap_bytes(), 32);
        let s = b.slice(4..12);
        assert_eq!(&*s, &[4, 5, 6, 7, 8, 9, 10, 11]);
        let ss = s.slice(2..4);
        assert_eq!(&*ss, &[6, 7]);
        // Slices share storage; equality is by content.
        assert_eq!(ss, Bytes::from_vec(vec![6, 7]));
        assert_ne!(ss, Bytes::from_vec(vec![6, 8]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oversized_slice_panics() {
        Bytes::from_vec(vec![1, 2, 3]).slice(1..5);
    }

    #[test]
    fn mapped_views_report_no_heap() {
        use std::io::Write;
        let path =
            std::env::temp_dir().join(format!("newslink_bytes_map_{}", std::process::id()));
        std::fs::File::create(&path)
            .and_then(|mut f| f.write_all(b"abcdefgh"))
            .unwrap();
        let map = Arc::new(Mmap::map(&std::fs::File::open(&path).unwrap()).unwrap());
        let b = Bytes::from_mmap(map);
        assert!(b.is_mapped());
        assert_eq!(b.heap_bytes(), 0);
        let s = b.slice(2..6);
        assert!(s.is_mapped());
        assert_eq!(&*s, b"cdef");
        std::fs::remove_file(&path).ok();
    }
}
