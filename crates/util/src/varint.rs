//! LEB128 variable-length integer coding.
//!
//! The persistence layer stores posting lists as delta-coded varints —
//! the standard inverted-index compression (Lucene's VInt). Small deltas
//! dominate sorted posting lists, so most entries take one byte.

use std::io::{self, Read, Write};

/// Write `value` as unsigned LEB128.
pub fn write_u64<W: Write>(w: &mut W, mut value: u64) -> io::Result<()> {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            w.write_all(&[byte])?;
            return Ok(());
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Read an unsigned LEB128 value.
pub fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        let b = byte[0];
        if shift >= 63 && b > 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint overflows u64",
            ));
        }
        value |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint too long",
            ));
        }
    }
}

/// Write a `u32` as varint.
pub fn write_u32<W: Write>(w: &mut W, value: u32) -> io::Result<()> {
    write_u64(w, u64::from(value))
}

/// Read a `u32` varint, erroring when out of range.
pub fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let v = read_u64(r)?;
    u32::try_from(v).map_err(|_| {
        io::Error::new(io::ErrorKind::InvalidData, "varint exceeds u32 range")
    })
}

/// Write a length-prefixed UTF-8 string.
pub fn write_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    write_u64(w, s.len() as u64)?;
    w.write_all(s.as_bytes())
}

/// Read a length-prefixed UTF-8 string (bounded by `max_len` bytes).
pub fn read_str<R: Read>(r: &mut R, max_len: usize) -> io::Result<String> {
    let len = read_u64(r)? as usize;
    if len > max_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("string length {len} exceeds limit {max_len}"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "invalid UTF-8"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: u64) -> u64 {
        let mut buf = Vec::new();
        write_u64(&mut buf, v).unwrap();
        read_u64(&mut &buf[..]).unwrap()
    }

    #[test]
    fn round_trips_representative_values() {
        for v in [0u64, 1, 127, 128, 300, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            assert_eq!(round_trip(v), v);
        }
    }

    #[test]
    fn small_values_take_one_byte() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 127).unwrap();
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_u64(&mut buf, 128).unwrap();
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn truncated_input_is_error() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX).unwrap();
        buf.pop();
        assert!(read_u64(&mut &buf[..]).is_err());
        assert!(read_u64(&mut &[][..]).is_err());
    }

    #[test]
    fn overlong_varint_rejected() {
        // 11 continuation bytes can encode > 64 bits.
        let bad = [0xFFu8; 11];
        assert!(read_u64(&mut &bad[..]).is_err());
    }

    #[test]
    fn u32_range_enforced() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::from(u32::MAX) + 1).unwrap();
        assert!(read_u32(&mut &buf[..]).is_err());
        buf.clear();
        write_u32(&mut buf, u32::MAX).unwrap();
        assert_eq!(read_u32(&mut &buf[..]).unwrap(), u32::MAX);
    }

    #[test]
    fn strings_round_trip() {
        let mut buf = Vec::new();
        write_str(&mut buf, "Swat Valley").unwrap();
        write_str(&mut buf, "").unwrap();
        write_str(&mut buf, "日本語").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_str(&mut r, 1024).unwrap(), "Swat Valley");
        assert_eq!(read_str(&mut r, 1024).unwrap(), "");
        assert_eq!(read_str(&mut r, 1024).unwrap(), "日本語");
    }

    #[test]
    fn string_length_limit_enforced() {
        let mut buf = Vec::new();
        write_str(&mut buf, "0123456789").unwrap();
        assert!(read_str(&mut &buf[..], 5).is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 2).unwrap();
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert!(read_str(&mut &buf[..], 10).is_err());
    }
}
