//! Shared utilities for the NewsLink workspace.
//!
//! This crate deliberately has no knowledge of news, graphs or search; it
//! provides the low-level building blocks the other crates share:
//!
//! - [`fxhash`] — a fast, non-cryptographic hasher (FxHash) plus
//!   [`FxHashMap`]/[`FxHashSet`] aliases, following the guidance of the Rust
//!   Performance Book for integer-keyed tables on hot paths.
//! - [`rng`] — deterministic, seedable random-number helpers so every
//!   synthetic artifact in the workspace (knowledge graph, corpora,
//!   simulated user panel) is reproducible from a single seed.
//! - [`topk`] — a bounded min-heap for streaming top-k selection, the
//!   retrieval primitive used by every ranking component.
//! - [`timer`] — a component stopwatch used to reproduce the paper's
//!   per-component time breakdowns (Table VIII, Figure 7).
//! - [`cache`] — capacity-bounded CLOCK caches and hit/miss counters, the
//!   building blocks of the traversal/embedding caches on the hot path.
//! - [`histogram`] — log2-bucketed value histograms for latency
//!   reporting (merge-friendly, quantiles from bucket bounds).
//! - [`shutdown`] — a cloneable one-way stop bit for cooperative
//!   drain-and-exit across worker pools.
//! - [`crc32`] — table-driven CRC-32 (IEEE) for frame checksums in the
//!   persistence and write-ahead-log formats.
//! - [`failpoint`] — deterministic fail-at-byte-N / short-write / lost
//!   unsynced-tail I/O wrappers that drive the crash-recovery test
//!   suites.
//! - [`chaos`] — the network analogue of [`failpoint`]: a seeded
//!   in-process TCP fault proxy (refusal, black-hole, latency, reset,
//!   short write, throttling) driving the cluster resilience suites.
//!
//! With the `serde` feature on, the observability types ([`CacheStats`],
//! [`ComponentTimer`], [`Histogram`]) serialize through the vendored
//! serde shim so metrics endpoints can report them as JSON.
//!
//! The workspace bans `unsafe` everywhere except the single audited
//! [`mmap`] module below (the storage layer's zero-copy foundation);
//! `scripts/tier1.sh` enforces the same boundary with a grep gate.

#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod bytes;
pub mod cache;
pub mod chaos;
pub mod crc32;
pub mod failpoint;
pub mod fst;
pub mod fxhash;
pub mod histogram;
#[allow(unsafe_code)]
pub mod mmap;
pub mod rng;
pub mod shutdown;
pub mod timer;
pub mod topk;
pub mod varint;
pub mod xxh64;

pub use bytes::Bytes;
pub use cache::{CacheCounters, CacheStats, ClockCache};
pub use chaos::{ChaosProxy, ChaosStats, Fault, FaultPlan};
pub use crc32::{crc32, Crc32};
pub use fst::{Fst, FstBuilder};
pub use mmap::Mmap;
pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
pub use histogram::Histogram;
pub use rng::DetRng;
pub use shutdown::ShutdownFlag;
pub use timer::ComponentTimer;
pub use topk::TopK;
pub use xxh64::{xxh64, xxh64_seeded};
