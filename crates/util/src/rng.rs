//! Deterministic random-number helpers.
//!
//! Everything synthetic in the workspace — the knowledge graph, the news
//! corpora, the simulated user panel — must be reproducible from a single
//! seed so that experiment tables are stable across runs and machines.
//! [`DetRng`] wraps a small, fast PCG-style generator (xoshiro256**) seeded
//! through SplitMix64, with convenience methods for the sampling patterns
//! the generators need. `rand`'s distributions remain available through the
//! [`rand::RngCore`] impl.

use rand::RngCore;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** generator.
///
/// Chosen over `StdRng` so the byte streams are pinned by this crate rather
/// than by `rand`'s (version-dependent) choice of algorithm.
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Derive an independent child generator for a named sub-stream.
    ///
    /// Use this to give each synthetic subsystem (geo, people, events, …)
    /// its own stream: adding draws in one subsystem then never perturbs
    /// another.
    pub fn fork(&self, stream: u64) -> Self {
        // Mix the current state with the stream id; children are decorrelated
        // by the SplitMix64 avalanche.
        let mut sm = self
            .s
            .iter()
            .fold(stream, |acc, w| acc.rotate_left(17) ^ *w);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)`. Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below() requires a positive bound");
        // Lemire's multiply-shift rejection method (bias-free).
        let bound = bound as u64;
        loop {
            let x = self.next();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as usize;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    #[inline]
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "range({lo}, {hi}) is empty");
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        // 53 high bits → uniform double in [0, 1).
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to [0, 1]).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Pick a uniformly random element of a non-empty slice.
    #[inline]
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// Sample an index from unnormalized non-negative weights.
    ///
    /// Returns `None` when every weight is zero or the slice is empty.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.unit() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            target -= w;
            if target <= 0.0 {
                return Some(i);
            }
        }
        // Floating-point underflow on the last positive weight.
        weights.iter().rposition(|&w| w > 0.0)
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (k is clamped to n).
    ///
    /// Uses Floyd's algorithm: O(k) expected draws, no allocation of `n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut chosen = crate::FxHashSet::default();
        let mut out = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.below(j + 1);
            let v = if chosen.contains(&t) { j } else { t };
            chosen.insert(v);
            out.push(v);
        }
        out
    }

    /// Standard normal draw (Box–Muller, one value per call).
    pub fn normal(&mut self) -> f64 {
        let u1 = loop {
            let u = self.unit();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Zipf-like rank draw over `[0, n)` with exponent `s` using inverse
    /// transform over the truncated harmonic weights; cheap approximation
    /// adequate for heavy-tailed degree/term distributions.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        assert!(n > 0);
        // Inverse-CDF approximation for P(X >= x) ~ x^(1-s).
        if s <= 1.0 + 1e-9 {
            // Fall back to weighted sampling over 1/rank.
            let u = self.unit();
            let hn: f64 = (1..=n).map(|i| 1.0 / i as f64).sum();
            let mut acc = 0.0;
            for i in 0..n {
                acc += 1.0 / ((i + 1) as f64 * hn);
                if u < acc {
                    return i;
                }
            }
            return n - 1;
        }
        let u = self.unit();
        let x = ((1.0 - u * (1.0 - (n as f64).powf(1.0 - s))).powf(1.0 / (1.0 - s))).floor();
        (x as usize).clamp(1, n) - 1
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(8);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn fork_is_independent_of_parent_consumption() {
        let parent = DetRng::new(3);
        let mut child1 = parent.fork(1);
        let parent2 = DetRng::new(3);
        let _ = parent2; // forks derive from state, not draws
        let mut child1b = parent.fork(1);
        for _ in 0..20 {
            assert_eq!(child1.next_u64(), child1b.next_u64());
        }
        let mut child2 = parent.fork(2);
        assert_ne!(child1.next_u64(), child2.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = DetRng::new(11);
        for bound in [1usize, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_covers_small_range() {
        let mut rng = DetRng::new(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.below(4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_in_half_open_interval() {
        let mut rng = DetRng::new(13);
        for _ in 0..1000 {
            let x = rng.unit();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn pick_weighted_prefers_heavy_weight() {
        let mut rng = DetRng::new(17);
        let weights = [0.0, 10.0, 0.1];
        let mut counts = [0usize; 3];
        for _ in 0..1000 {
            counts[rng.pick_weighted(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[1] > counts[2] * 10);
    }

    #[test]
    fn pick_weighted_all_zero_is_none() {
        let mut rng = DetRng::new(19);
        assert_eq!(rng.pick_weighted(&[0.0, 0.0]), None);
        assert_eq!(rng.pick_weighted(&[]), None);
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = DetRng::new(23);
        let sample = rng.sample_indices(100, 20);
        assert_eq!(sample.len(), 20);
        let set: std::collections::HashSet<_> = sample.iter().collect();
        assert_eq!(set.len(), 20);
        assert!(sample.iter().all(|&i| i < 100));
        // k > n clamps
        assert_eq!(rng.sample_indices(3, 10).len(), 3);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::new(29);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let mut rng = DetRng::new(31);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn zipf_is_heavy_headed() {
        let mut rng = DetRng::new(37);
        let mut counts = vec![0usize; 100];
        for _ in 0..10_000 {
            counts[rng.zipf(100, 1.2)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[50]);
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = DetRng::new(41);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
