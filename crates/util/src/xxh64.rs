//! XXH64 — the 64-bit xxHash, the workspace's *bulk payload* checksum.
//!
//! [`crate::crc32`] guards the small frames: WAL records, snapshot
//! headers, the v4 section directory. Its table-driven fold tops out
//! near 2 GB/s on one core, and a snapshot open must checksum *every*
//! payload byte before serving — so on the memory-mapped fast path the
//! section checksum **is** the cold-start cost. XXH64 runs the same
//! verification several times faster: four independent 64-bit
//! multiply-rotate lanes consume 32 bytes per iteration with no table
//! loads and no serial dependency between lanes, approaching memory
//! bandwidth in safe scalar Rust. The storage layer therefore frames v4
//! segment sections with XXH64 (64-bit, so the collision floor also
//! drops from 2⁻³² to 2⁻⁶⁴) and keeps CRC-32 where frames are tiny and
//! its burst-error guarantees are the point.
//!
//! This is the canonical XXH64 algorithm (seed 0 unless given),
//! bit-compatible with the reference implementation — the known-answer
//! tests below pin the constants.

const PRIME64_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME64_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME64_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME64_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME64_5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline(always)]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME64_2))
        .rotate_left(31)
        .wrapping_mul(PRIME64_1)
}

#[inline(always)]
fn merge_round(hash: u64, acc: u64) -> u64 {
    (hash ^ round(0, acc))
        .wrapping_mul(PRIME64_1)
        .wrapping_add(PRIME64_4)
}

#[inline(always)]
fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("8 bytes"))
}

#[inline(always)]
fn read_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().expect("4 bytes"))
}

/// XXH64 of `bytes` with an explicit seed.
pub fn xxh64_seeded(bytes: &[u8], seed: u64) -> u64 {
    let len = bytes.len();
    let mut hash;
    let mut rest = bytes;

    if len >= 32 {
        let mut v1 = seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2);
        let mut v2 = seed.wrapping_add(PRIME64_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME64_1);
        let mut stripes = rest.chunks_exact(32);
        for s in &mut stripes {
            v1 = round(v1, read_u64(&s[0..]));
            v2 = round(v2, read_u64(&s[8..]));
            v3 = round(v3, read_u64(&s[16..]));
            v4 = round(v4, read_u64(&s[24..]));
        }
        rest = stripes.remainder();
        hash = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        hash = merge_round(hash, v1);
        hash = merge_round(hash, v2);
        hash = merge_round(hash, v3);
        hash = merge_round(hash, v4);
    } else {
        hash = seed.wrapping_add(PRIME64_5);
    }

    hash = hash.wrapping_add(len as u64);

    while rest.len() >= 8 {
        hash = (hash ^ round(0, read_u64(rest)))
            .rotate_left(27)
            .wrapping_mul(PRIME64_1)
            .wrapping_add(PRIME64_4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        hash = (hash ^ u64::from(read_u32(rest)).wrapping_mul(PRIME64_1))
            .rotate_left(23)
            .wrapping_mul(PRIME64_2)
            .wrapping_add(PRIME64_3);
        rest = &rest[4..];
    }
    for &b in rest {
        hash = (hash ^ u64::from(b).wrapping_mul(PRIME64_5))
            .rotate_left(11)
            .wrapping_mul(PRIME64_1);
    }

    hash ^= hash >> 33;
    hash = hash.wrapping_mul(PRIME64_2);
    hash ^= hash >> 29;
    hash = hash.wrapping_mul(PRIME64_3);
    hash ^= hash >> 32;
    hash
}

/// XXH64 of `bytes` with seed 0 — the storage layer's one-shot entry
/// point (sections are checksummed whole; no streaming state needed).
pub fn xxh64(bytes: &[u8]) -> u64 {
    xxh64_seeded(bytes, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vectors() {
        // Canonical vectors from the reference xxHash implementation.
        assert_eq!(xxh64(b""), 0xEF46_DB37_51D8_E999);
        assert_eq!(xxh64_seeded(b"", 1), 0xD5AF_BA13_36A3_BE4B);
        assert_eq!(xxh64(b"a"), 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(xxh64(b"abc"), 0x44BC_2CF5_AD77_0999);
        assert_eq!(
            xxh64(b"xxhash is a fast non-cryptographic hash algorithm"),
            xxh64(b"xxhash is a fast non-cryptographic hash algorithm"),
        );
    }

    #[test]
    fn every_tail_length_is_distinct_and_stable() {
        // Cover all tail branches: 0..=66 bytes crosses the 32-byte
        // stripe boundary, the 8-byte and 4-byte tails and the byte
        // loop. Each prefix must hash differently from its neighbors.
        let data: Vec<u8> = (0u8..=66).collect();
        let mut seen = std::collections::HashSet::new();
        for n in 0..=data.len() {
            assert!(seen.insert(xxh64(&data[..n])), "collision at prefix {n}");
        }
    }

    #[test]
    fn detects_every_single_byte_flip() {
        let data: Vec<u8> = (0..512u16).map(|i| (i % 251) as u8).collect();
        let clean = xxh64(&data);
        for i in 0..data.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut bad = data.clone();
                bad[i] ^= flip;
                assert_ne!(xxh64(&bad), clean, "flip {flip:#x} at {i} undetected");
            }
        }
    }

    #[test]
    fn seed_changes_the_digest() {
        let data = b"seeded hashing";
        assert_ne!(xxh64_seeded(data, 0), xxh64_seeded(data, 1));
        assert_eq!(xxh64(data), xxh64_seeded(data, 0));
    }
}
