//! A cooperative shutdown signal.
//!
//! [`ShutdownFlag`] is a cloneable handle over one shared atomic bit.
//! Long-running loops (the serving layer's accept loop, worker pools,
//! pollers) check [`is_triggered`](ShutdownFlag::is_triggered) between
//! work items; any clone may call [`trigger`](ShutdownFlag::trigger) to
//! ask all of them to wind down. Triggering is idempotent, never blocks,
//! and cannot be undone — drain-and-exit is the only protocol.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared, one-way "please stop" bit.
#[derive(Debug, Clone, Default)]
pub struct ShutdownFlag(Arc<AtomicBool>);

impl ShutdownFlag {
    /// A fresh, untriggered flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request shutdown. Returns `true` if this call was the first to
    /// trigger the flag.
    pub fn trigger(&self) -> bool {
        !self.0.swap(true, Ordering::SeqCst)
    }

    /// True once any clone has triggered.
    pub fn is_triggered(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_bit() {
        let a = ShutdownFlag::new();
        let b = a.clone();
        assert!(!a.is_triggered() && !b.is_triggered());
        assert!(b.trigger(), "first trigger reports true");
        assert!(!a.trigger(), "second trigger reports false");
        assert!(a.is_triggered() && b.is_triggered());
    }

    #[test]
    fn triggers_across_threads() {
        let flag = ShutdownFlag::new();
        let seen = {
            let flag = flag.clone();
            std::thread::spawn(move || {
                while !flag.is_triggered() {
                    std::thread::yield_now();
                }
                true
            })
        };
        flag.trigger();
        assert!(seen.join().unwrap());
    }
}
