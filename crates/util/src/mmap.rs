//! Read-only file memory mapping — the workspace's **single audited
//! `unsafe` module**.
//!
//! Every other crate in the workspace carries `#![deny(unsafe_code)]`;
//! this module is the one place the lint is waived (see `lib.rs`), and
//! `scripts/tier1.sh` greps the tree to keep it that way. The API it
//! exports is safe: [`Mmap`] owns a `PROT_READ`/`MAP_PRIVATE` mapping of
//! a file and hands it out as `&[u8]`, unmapping on drop.
//!
//! ## Safety contract
//!
//! The mapping is backed by the file's pages, so the usual mmap caveat
//! applies: if the *same inode* is truncated while mapped, touching the
//! vanished pages raises `SIGBUS`. The workspace's snapshot protocol
//! never truncates a live snapshot in place — snapshots are replaced by
//! `rename(2)` (see `newslink_core::persist::atomic_write_file`), which
//! keeps the old inode alive until the last mapping drops. `MAP_PRIVATE`
//! additionally isolates the mapping from post-map appends by other
//! writers once a page has been faulted in.
//!
//! On non-Unix targets the type degrades to an owned read of the file —
//! same API, no zero-copy.

use std::fs::File;
use std::io;

#[cfg(unix)]
mod sys {
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;
    /// Linux: pre-fault the whole mapping at `mmap(2)` time. The v4 open
    /// path checksums every byte immediately, so bulk population is never
    /// wasted work — and it replaces one minor fault per 4 KiB page
    /// during the CRC walk with a single populate pass.
    #[cfg(target_os = "linux")]
    const MAP_POPULATE: i32 = 0x8000;
    #[cfg(not(target_os = "linux"))]
    const MAP_POPULATE: i32 = 0;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    /// Map `len` bytes of `file` read-only. `len` must be non-zero
    /// (`mmap(2)` rejects zero-length maps).
    pub(super) fn map(file: &File, len: usize) -> io::Result<*mut u8> {
        // SAFETY: we pass a valid open fd, a non-zero length, a null
        // address hint and offset 0; the kernel either returns a fresh
        // page-aligned region of at least `len` readable bytes or
        // MAP_FAILED, which we turn into the errno error.
        let raw = |flags: i32| unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                flags,
                file.as_raw_fd(),
                0,
            )
        };
        let mut ptr = raw(MAP_PRIVATE | MAP_POPULATE);
        if ptr as isize == -1 && MAP_POPULATE != 0 {
            // A kernel that rejects MAP_POPULATE still serves the plain
            // mapping; pages then fault in on first touch as before.
            ptr = raw(MAP_PRIVATE);
        }
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(ptr.cast())
    }

    /// Unmap a region previously returned by [`map`].
    pub(super) fn unmap(ptr: *mut u8, len: usize) {
        // SAFETY: `ptr`/`len` came from a successful `map` call and are
        // unmapped exactly once (enforced by `Mmap`'s single Drop).
        unsafe {
            munmap(ptr.cast(), len);
        }
    }
}

/// An immutable, read-only memory map of a whole file.
///
/// Dereferences to `&[u8]`. `Send + Sync`: the mapping is never written
/// through, so shared references from any thread are fine.
#[derive(Debug)]
pub struct Mmap {
    #[cfg(unix)]
    ptr: *mut u8,
    #[cfg(not(unix))]
    buf: Vec<u8>,
    len: usize,
}

// SAFETY: the region is PROT_READ and this type exposes no mutation, so
// concurrent shared access from any thread reads immutable memory. The
// raw pointer is owned exclusively by this struct.
#[cfg(unix)]
unsafe impl Send for Mmap {}
// SAFETY: see `Send` above — `&Mmap` only permits reads of the mapping.
#[cfg(unix)]
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map all of `file` read-only. An empty file yields an empty map
    /// without touching `mmap(2)`.
    pub fn map(file: &File) -> io::Result<Self> {
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file exceeds address space"))?;
        Self::map_len(file, len)
    }

    #[cfg(unix)]
    fn map_len(file: &File, len: usize) -> io::Result<Self> {
        if len == 0 {
            return Ok(Self {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        Ok(Self {
            ptr: sys::map(file, len)?,
            len,
        })
    }

    #[cfg(not(unix))]
    fn map_len(file: &File, len: usize) -> io::Result<Self> {
        use std::io::Read;
        let mut buf = Vec::with_capacity(len);
        let mut f = file;
        f.read_to_end(&mut buf)?;
        let len = buf.len();
        Ok(Self { buf, len })
    }

    /// Length of the mapping in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for a zero-length mapping.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The mapped bytes.
    #[cfg(unix)]
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: `ptr` points at a live mapping of exactly `len`
        // readable bytes (established by `map_len`, released only in
        // Drop), and the returned lifetime is tied to `&self`.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// The mapped bytes.
    #[cfg(not(unix))]
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(unix)]
impl Drop for Mmap {
    fn drop(&mut self) {
        if !self.ptr.is_null() {
            sys::unmap(self.ptr, self.len);
        }
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(tag: &str, contents: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("newslink_mmap_{}_{tag}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(contents).unwrap();
        f.sync_all().unwrap();
        path
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_file("basic", b"hello mapped world");
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert_eq!(&*map, b"hello mapped world");
        assert_eq!(map.len(), 18);
        assert!(!map.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_empty() {
        let path = temp_file("empty", b"");
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.as_slice(), b"");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn map_outlives_file_handle_and_unlink() {
        let path = temp_file("unlink", b"still readable after unlink");
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(&*map, b"still readable after unlink");
    }

    #[test]
    fn map_is_shareable_across_threads() {
        let path = temp_file("threads", &vec![7u8; 4096 * 3 + 5]);
        let map = std::sync::Arc::new(Mmap::map(&File::open(&path).unwrap()).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&map);
                std::thread::spawn(move || m.iter().map(|&b| b as u64).sum::<u64>())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 7 * (4096 * 3 + 5) as u64);
        }
        std::fs::remove_file(&path).ok();
    }
}
