//! FxHash: the fast, non-cryptographic hash function used throughout rustc.
//!
//! The workspace hashes small integer keys (node ids, term ids, doc ids) on
//! hot paths; SipHash's HashDoS protection is unnecessary here because all
//! keys are internally generated. Implemented in-tree rather than pulling in
//! `rustc-hash` to keep the dependency set to the approved list.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc FxHash implementation
/// (64-bit variant): `0x51_7c_c1_b7_27_22_0a_95`.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A streaming FxHash hasher.
///
/// Quality is low (it is not avalanche-complete) but speed is very high for
/// short keys, which dominates all our workloads.
#[derive(Default, Clone, Copy, Debug)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("chunk is 8 bytes"));
            self.add_to_hash(word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
            // Mix in the length so prefixes hash differently.
            self.add_to_hash(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

/// Hash a single `u64` with FxHash; handy for deterministic pseudo-random
/// derivations (e.g. hash-seeded embedding vectors).
#[inline]
pub fn hash_u64(x: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(x);
    h.finish()
}

/// Hash a string slice with FxHash.
#[inline]
pub fn hash_str(s: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(s.as_bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(hash_str("taliban"), hash_str("taliban"));
        assert_eq!(hash_u64(42), hash_u64(42));
    }

    #[test]
    fn distinct_inputs_hash_differently() {
        assert_ne!(hash_str("pakistan"), hash_str("pakista"));
        assert_ne!(hash_str("pakistan"), hash_str("Pakistan"));
        assert_ne!(hash_u64(1), hash_u64(2));
    }

    #[test]
    fn prefix_inputs_hash_differently() {
        // Regression guard for the tail-padding scheme: a 3-byte string and
        // the same string zero-padded must not collide trivially.
        assert_ne!(hash_str("abc"), hash_str("abc\0"));
        assert_ne!(hash_str(""), hash_str("\0"));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));

        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(99);
        assert!(s.contains(&99));
        assert!(!s.contains(&98));
    }

    #[test]
    fn long_input_uses_word_chunks() {
        let long = "a".repeat(1000);
        let long2 = format!("{}b", "a".repeat(999));
        assert_ne!(hash_str(&long), hash_str(&long2));
        assert_eq!(hash_str(&long), hash_str(&"a".repeat(1000)));
    }
}
