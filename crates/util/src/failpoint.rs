//! Deterministic I/O fault injection for crash-safety tests.
//!
//! Durability code is only as good as the failures it has been run
//! against, and real disks fail in inconvenient ways: a `write` persists
//! a prefix of the buffer, a process dies between `write` and `fsync`, a
//! file read back after a crash ends mid-record. This module provides
//! small, fully deterministic wrappers that reproduce those shapes on
//! demand so a test can assert recovery behaviour at *every* byte offset
//! rather than at whatever offsets a flaky-VM test happened to hit:
//!
//! - [`FailWriter`] — passes bytes through until a budget is exhausted,
//!   then errors; in [`FailMode::ShortWrite`] the crossing write persists
//!   its prefix first (a torn write), in [`FailMode::Clean`] it persists
//!   nothing (a whole-syscall failure).
//! - [`FailReader`] — the read-side twin, for exercising loaders against
//!   media that dies mid-scan.
//! - [`CrashBuffer`] — an in-memory "file + page cache" that separates
//!   written from synced bytes; [`CrashBuffer::crash`] discards the
//!   unsynced tail, modelling `kill -9` after `write` but before
//!   `fsync` (the truncate-on-drop failure shape).
//!
//! All injected errors use [`std::io::ErrorKind::Other`] with a message
//! prefixed `failpoint:` so tests can tell injected failures from real
//! ones.

use std::io::{self, Read, Write};

/// What happens to the write that crosses the failure offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailMode {
    /// The crossing write fails atomically: no bytes of it reach the
    /// inner writer (the whole syscall failed).
    Clean,
    /// The crossing write is torn: the prefix up to the budget reaches
    /// the inner writer, then the error is reported (a short write whose
    /// caller never got to retry).
    ShortWrite,
}

fn injected(at: u64) -> io::Error {
    io::Error::other(format!("failpoint: injected failure at byte {at}"))
}

/// Is `e` an error injected by this module (as opposed to a real one)?
pub fn is_injected(e: &io::Error) -> bool {
    e.to_string().starts_with("failpoint:")
}

/// A [`Write`] that forwards `budget` bytes and then fails every call.
#[derive(Debug)]
pub struct FailWriter<W: Write> {
    inner: W,
    budget: u64,
    written: u64,
    mode: FailMode,
    tripped: bool,
}

impl<W: Write> FailWriter<W> {
    /// Forward exactly `budget` bytes to `inner`, then start failing.
    pub fn new(inner: W, budget: u64, mode: FailMode) -> Self {
        Self {
            inner,
            budget,
            written: 0,
            mode,
            tripped: false,
        }
    }

    /// Bytes actually forwarded to the inner writer.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Has the failure fired yet?
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// Recover the inner writer (e.g. the `Vec<u8>` holding the torn
    /// prefix) for post-crash inspection.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FailWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.tripped {
            return Err(injected(self.budget));
        }
        let remaining = self.budget - self.written;
        if (buf.len() as u64) <= remaining {
            let n = self.inner.write(buf)?;
            self.written += n as u64;
            return Ok(n);
        }
        // This write crosses the failure offset.
        self.tripped = true;
        if self.mode == FailMode::ShortWrite && remaining > 0 {
            self.inner.write_all(&buf[..remaining as usize])?;
            self.written += remaining;
        }
        Err(injected(self.budget))
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.tripped {
            return Err(injected(self.budget));
        }
        self.inner.flush()
    }
}

/// A [`Read`] that yields `budget` bytes and then fails every call.
#[derive(Debug)]
pub struct FailReader<R: Read> {
    inner: R,
    budget: u64,
    read: u64,
}

impl<R: Read> FailReader<R> {
    /// Yield exactly `budget` bytes from `inner`, then start failing.
    pub fn new(inner: R, budget: u64) -> Self {
        Self {
            inner,
            budget,
            read: 0,
        }
    }
}

impl<R: Read> Read for FailReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let remaining = self.budget - self.read;
        if remaining == 0 {
            return Err(injected(self.budget));
        }
        let cap = buf.len().min(remaining as usize);
        let n = self.inner.read(&mut buf[..cap])?;
        self.read += n as u64;
        Ok(n)
    }
}

/// An in-memory file with an explicit page cache: bytes written land in
/// the unsynced tail and only become durable on [`CrashBuffer::sync`].
///
/// [`CrashBuffer::crash`] returns what a post-`kill -9` reader would see
/// (durable bytes only); [`CrashBuffer::contents`] returns what a
/// clean-shutdown reader would see.
#[derive(Debug, Default, Clone)]
pub struct CrashBuffer {
    durable: Vec<u8>,
    pending: Vec<u8>,
}

impl CrashBuffer {
    /// Empty file, empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Make every written byte durable (the `fsync` point).
    pub fn sync(&mut self) {
        self.durable.append(&mut self.pending);
    }

    /// Bytes that survive a crash right now: everything synced, nothing
    /// pending.
    pub fn crash(self) -> Vec<u8> {
        self.durable
    }

    /// Bytes a clean close would leave behind (synced + pending).
    pub fn contents(&self) -> Vec<u8> {
        let mut all = self.durable.clone();
        all.extend_from_slice(&self.pending);
        all
    }

    /// Bytes not yet made durable.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Bytes that are durable.
    pub fn durable_len(&self) -> usize {
        self.durable.len()
    }
}

impl Write for CrashBuffer {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.pending.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        // `flush` empties userspace buffers; it is NOT an fsync and does
        // not make bytes durable. Only `sync` does.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_mode_crossing_write_persists_nothing() {
        let mut w = FailWriter::new(Vec::new(), 5, FailMode::Clean);
        w.write_all(b"abc").unwrap();
        let err = w.write_all(b"defgh").unwrap_err();
        assert!(is_injected(&err), "{err}");
        assert!(w.tripped());
        assert_eq!(w.into_inner(), b"abc");
    }

    #[test]
    fn short_write_mode_persists_the_prefix() {
        let mut w = FailWriter::new(Vec::new(), 5, FailMode::ShortWrite);
        w.write_all(b"abc").unwrap();
        let err = w.write_all(b"defgh").unwrap_err();
        assert!(is_injected(&err), "{err}");
        assert_eq!(w.written(), 5);
        assert_eq!(w.into_inner(), b"abcde");
    }

    #[test]
    fn every_call_fails_after_tripping() {
        let mut w = FailWriter::new(Vec::new(), 0, FailMode::Clean);
        assert!(w.write_all(b"x").is_err());
        assert!(w.write_all(b"y").is_err());
        assert!(w.flush().is_err());
        assert_eq!(w.written(), 0);
    }

    #[test]
    fn budget_boundary_is_exact() {
        // Writing exactly the budget succeeds; one more byte fails.
        let mut w = FailWriter::new(Vec::new(), 4, FailMode::ShortWrite);
        w.write_all(b"abcd").unwrap();
        assert!(!w.tripped());
        assert!(w.write_all(b"e").is_err());
        assert_eq!(w.into_inner(), b"abcd");
    }

    #[test]
    fn reader_fails_after_budget() {
        let data = b"hello world".to_vec();
        let mut r = FailReader::new(&data[..], 5);
        let mut out = Vec::new();
        let err = r.read_to_end(&mut out).unwrap_err();
        assert!(is_injected(&err), "{err}");
        assert_eq!(out, b"hello");
    }

    #[test]
    fn crash_buffer_drops_unsynced_tail() {
        let mut f = CrashBuffer::new();
        f.write_all(b"record-1;").unwrap();
        f.sync();
        f.write_all(b"record-2;").unwrap();
        assert_eq!(f.durable_len(), 9);
        assert_eq!(f.pending_len(), 9);
        assert_eq!(f.contents(), b"record-1;record-2;");
        assert_eq!(f.crash(), b"record-1;");
    }

    #[test]
    fn flush_is_not_sync() {
        let mut f = CrashBuffer::new();
        f.write_all(b"data").unwrap();
        f.flush().unwrap();
        assert_eq!(f.clone().crash(), b"");
        f.sync();
        assert_eq!(f.crash(), b"data");
    }
}
