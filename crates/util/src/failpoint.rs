//! Deterministic I/O fault injection for crash-safety tests.
//!
//! Durability code is only as good as the failures it has been run
//! against, and real disks fail in inconvenient ways: a `write` persists
//! a prefix of the buffer, a process dies between `write` and `fsync`, a
//! file read back after a crash ends mid-record. This module provides
//! small, fully deterministic wrappers that reproduce those shapes on
//! demand so a test can assert recovery behaviour at *every* byte offset
//! rather than at whatever offsets a flaky-VM test happened to hit:
//!
//! - [`FailWriter`] — passes bytes through until a budget is exhausted,
//!   then errors; in [`FailMode::ShortWrite`] the crossing write persists
//!   its prefix first (a torn write), in [`FailMode::Clean`] it persists
//!   nothing (a whole-syscall failure).
//! - [`FailReader`] — the read-side twin, for exercising loaders against
//!   media that dies mid-scan.
//! - [`CrashBuffer`] — an in-memory "file + page cache" that separates
//!   written from synced bytes; [`CrashBuffer::crash`] discards the
//!   unsynced tail, modelling `kill -9` after `write` but before
//!   `fsync` (the truncate-on-drop failure shape).
//! - [`FaultMedia`] — an in-memory stand-in for a *mutable* file (cursor,
//!   truncate, fsync) with one-shot failure injection per operation, for
//!   exercising error-*recovery* paths: the process survives the failed
//!   syscall and keeps using the file, so tests can assert the repair
//!   left it consistent.
//!
//! All injected errors use [`std::io::ErrorKind::Other`] with a message
//! prefixed `failpoint:` so tests can tell injected failures from real
//! ones.

use std::io::{self, Read, Write};

/// What happens to the write that crosses the failure offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailMode {
    /// The crossing write fails atomically: no bytes of it reach the
    /// inner writer (the whole syscall failed).
    Clean,
    /// The crossing write is torn: the prefix up to the budget reaches
    /// the inner writer, then the error is reported (a short write whose
    /// caller never got to retry).
    ShortWrite,
}

fn injected(at: u64) -> io::Error {
    io::Error::other(format!("failpoint: injected failure at byte {at}"))
}

/// Is `e` an error injected by this module (as opposed to a real one)?
pub fn is_injected(e: &io::Error) -> bool {
    e.to_string().starts_with("failpoint:")
}

/// A [`Write`] that forwards `budget` bytes and then fails every call.
#[derive(Debug)]
pub struct FailWriter<W: Write> {
    inner: W,
    budget: u64,
    written: u64,
    mode: FailMode,
    tripped: bool,
}

impl<W: Write> FailWriter<W> {
    /// Forward exactly `budget` bytes to `inner`, then start failing.
    pub fn new(inner: W, budget: u64, mode: FailMode) -> Self {
        Self {
            inner,
            budget,
            written: 0,
            mode,
            tripped: false,
        }
    }

    /// Bytes actually forwarded to the inner writer.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Has the failure fired yet?
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// Recover the inner writer (e.g. the `Vec<u8>` holding the torn
    /// prefix) for post-crash inspection.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FailWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.tripped {
            return Err(injected(self.budget));
        }
        let remaining = self.budget - self.written;
        if (buf.len() as u64) <= remaining {
            let n = self.inner.write(buf)?;
            self.written += n as u64;
            return Ok(n);
        }
        // This write crosses the failure offset.
        self.tripped = true;
        if self.mode == FailMode::ShortWrite && remaining > 0 {
            self.inner.write_all(&buf[..remaining as usize])?;
            self.written += remaining;
        }
        Err(injected(self.budget))
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.tripped {
            return Err(injected(self.budget));
        }
        self.inner.flush()
    }
}

/// A [`Read`] that yields `budget` bytes and then fails every call.
#[derive(Debug)]
pub struct FailReader<R: Read> {
    inner: R,
    budget: u64,
    read: u64,
}

impl<R: Read> FailReader<R> {
    /// Yield exactly `budget` bytes from `inner`, then start failing.
    pub fn new(inner: R, budget: u64) -> Self {
        Self {
            inner,
            budget,
            read: 0,
        }
    }
}

impl<R: Read> Read for FailReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let remaining = self.budget - self.read;
        if remaining == 0 {
            return Err(injected(self.budget));
        }
        let cap = buf.len().min(remaining as usize);
        let n = self.inner.read(&mut buf[..cap])?;
        self.read += n as u64;
        Ok(n)
    }
}

/// An in-memory file with an explicit page cache: bytes written land in
/// the unsynced tail and only become durable on [`CrashBuffer::sync`].
///
/// [`CrashBuffer::crash`] returns what a post-`kill -9` reader would see
/// (durable bytes only); [`CrashBuffer::contents`] returns what a
/// clean-shutdown reader would see.
#[derive(Debug, Default, Clone)]
pub struct CrashBuffer {
    durable: Vec<u8>,
    pending: Vec<u8>,
}

impl CrashBuffer {
    /// Empty file, empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Make every written byte durable (the `fsync` point).
    pub fn sync(&mut self) {
        self.durable.append(&mut self.pending);
    }

    /// Bytes that survive a crash right now: everything synced, nothing
    /// pending.
    pub fn crash(self) -> Vec<u8> {
        self.durable
    }

    /// Bytes a clean close would leave behind (synced + pending).
    pub fn contents(&self) -> Vec<u8> {
        let mut all = self.durable.clone();
        all.extend_from_slice(&self.pending);
        all
    }

    /// Bytes not yet made durable.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Bytes that are durable.
    pub fn durable_len(&self) -> usize {
        self.durable.len()
    }
}

impl Write for CrashBuffer {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.pending.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        // `flush` empties userspace buffers; it is NOT an fsync and does
        // not make bytes durable. Only `sync` does.
        Ok(())
    }
}

/// An in-memory stand-in for a mutable on-disk file: a byte image with a
/// cursor, positioned writes, truncate and fsync — the operations a
/// write-ahead log performs — plus deterministic **one-shot** failure
/// injection on each of them.
///
/// Where [`FailWriter`] models a writer that is abandoned after its
/// failure (the crash shape), `FaultMedia` models the *transient* shape:
/// the failed syscall returns an error, the process keeps the file open
/// and keeps using it. Recovery code can therefore be driven through its
/// repair path and the resulting image inspected with
/// [`contents`](Self::contents).
#[derive(Debug, Default)]
pub struct FaultMedia {
    bytes: Vec<u8>,
    pos: usize,
    /// `Some((remaining_budget, mode))`: the write crossing the budget
    /// fails (tearing its prefix in [`FailMode::ShortWrite`]) and clears
    /// the plan, so later writes succeed again.
    write_plan: Option<(u64, FailMode)>,
    fail_next_sync: bool,
    fail_next_set_len: bool,
    syncs: u64,
}

impl FaultMedia {
    /// An empty file with no failures armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm a one-shot write failure: the write that would carry the file
    /// past `budget` further bytes fails (persisting its prefix up to
    /// the budget in [`FailMode::ShortWrite`], nothing of itself in
    /// [`FailMode::Clean`]); writes after the failing one succeed.
    pub fn fail_write_after(&mut self, budget: u64, mode: FailMode) {
        self.write_plan = Some((budget, mode));
    }

    /// Arm a one-shot [`sync_data`](Self::sync_data) failure.
    pub fn fail_next_sync(&mut self) {
        self.fail_next_sync = true;
    }

    /// Arm a one-shot [`set_len`](Self::set_len) failure.
    pub fn fail_next_set_len(&mut self) {
        self.fail_next_set_len = true;
    }

    /// The current byte image of the file.
    pub fn contents(&self) -> &[u8] {
        &self.bytes
    }

    /// How many [`sync_data`](Self::sync_data) calls have succeeded.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    fn splice(&mut self, buf: &[u8]) {
        let end = self.pos + buf.len();
        if end > self.bytes.len() {
            self.bytes.resize(end, 0);
        }
        self.bytes[self.pos..end].copy_from_slice(buf);
        self.pos = end;
    }

    /// Write all of `buf` at the cursor (overwriting, then extending),
    /// honouring an armed write failure.
    pub fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        if let Some((budget, mode)) = self.write_plan.take() {
            if (buf.len() as u64) > budget {
                if mode == FailMode::ShortWrite {
                    self.splice(&buf[..budget as usize]);
                }
                return Err(injected(self.pos as u64));
            }
            self.write_plan = Some((budget - buf.len() as u64, mode));
        }
        self.splice(buf);
        Ok(())
    }

    /// The fsync point; a no-op here (the image is always "durable"),
    /// but it honours an armed sync failure.
    pub fn sync_data(&mut self) -> io::Result<()> {
        if self.fail_next_sync {
            self.fail_next_sync = false;
            return Err(io::Error::other("failpoint: injected fsync failure"));
        }
        self.syncs += 1;
        Ok(())
    }

    /// Truncate (or zero-extend) the file to `len` bytes. Like
    /// `File::set_len`, the cursor does not move.
    pub fn set_len(&mut self, len: u64) -> io::Result<()> {
        if self.fail_next_set_len {
            self.fail_next_set_len = false;
            return Err(io::Error::other("failpoint: injected truncate failure"));
        }
        self.bytes.resize(len as usize, 0);
        Ok(())
    }

    /// Move the cursor to absolute offset `pos`.
    pub fn seek_to(&mut self, pos: u64) -> io::Result<()> {
        self.pos = pos as usize;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_mode_crossing_write_persists_nothing() {
        let mut w = FailWriter::new(Vec::new(), 5, FailMode::Clean);
        w.write_all(b"abc").unwrap();
        let err = w.write_all(b"defgh").unwrap_err();
        assert!(is_injected(&err), "{err}");
        assert!(w.tripped());
        assert_eq!(w.into_inner(), b"abc");
    }

    #[test]
    fn short_write_mode_persists_the_prefix() {
        let mut w = FailWriter::new(Vec::new(), 5, FailMode::ShortWrite);
        w.write_all(b"abc").unwrap();
        let err = w.write_all(b"defgh").unwrap_err();
        assert!(is_injected(&err), "{err}");
        assert_eq!(w.written(), 5);
        assert_eq!(w.into_inner(), b"abcde");
    }

    #[test]
    fn every_call_fails_after_tripping() {
        let mut w = FailWriter::new(Vec::new(), 0, FailMode::Clean);
        assert!(w.write_all(b"x").is_err());
        assert!(w.write_all(b"y").is_err());
        assert!(w.flush().is_err());
        assert_eq!(w.written(), 0);
    }

    #[test]
    fn budget_boundary_is_exact() {
        // Writing exactly the budget succeeds; one more byte fails.
        let mut w = FailWriter::new(Vec::new(), 4, FailMode::ShortWrite);
        w.write_all(b"abcd").unwrap();
        assert!(!w.tripped());
        assert!(w.write_all(b"e").is_err());
        assert_eq!(w.into_inner(), b"abcd");
    }

    #[test]
    fn reader_fails_after_budget() {
        let data = b"hello world".to_vec();
        let mut r = FailReader::new(&data[..], 5);
        let mut out = Vec::new();
        let err = r.read_to_end(&mut out).unwrap_err();
        assert!(is_injected(&err), "{err}");
        assert_eq!(out, b"hello");
    }

    #[test]
    fn crash_buffer_drops_unsynced_tail() {
        let mut f = CrashBuffer::new();
        f.write_all(b"record-1;").unwrap();
        f.sync();
        f.write_all(b"record-2;").unwrap();
        assert_eq!(f.durable_len(), 9);
        assert_eq!(f.pending_len(), 9);
        assert_eq!(f.contents(), b"record-1;record-2;");
        assert_eq!(f.crash(), b"record-1;");
    }

    #[test]
    fn flush_is_not_sync() {
        let mut f = CrashBuffer::new();
        f.write_all(b"data").unwrap();
        f.flush().unwrap();
        assert_eq!(f.clone().crash(), b"");
        f.sync();
        assert_eq!(f.crash(), b"data");
    }

    #[test]
    fn fault_media_write_failures_are_one_shot() {
        let mut m = FaultMedia::new();
        m.write_all(b"abc").unwrap();
        m.fail_write_after(2, FailMode::ShortWrite);
        m.write_all(b"de").unwrap(); // within budget
        let err = m.write_all(b"fgh").unwrap_err();
        assert!(is_injected(&err), "{err}");
        assert_eq!(m.contents(), b"abcde", "crossing write tore nothing past the budget");
        // The plan is consumed: the very next write succeeds.
        m.write_all(b"xyz").unwrap();
        assert_eq!(m.contents(), b"abcdexyz");
    }

    #[test]
    fn fault_media_clean_mode_persists_nothing_of_the_crossing_write() {
        let mut m = FaultMedia::new();
        m.fail_write_after(2, FailMode::Clean);
        assert!(m.write_all(b"abc").is_err());
        assert_eq!(m.contents(), b"");
    }

    #[test]
    fn fault_media_truncate_seek_and_overwrite_behave_like_a_file() {
        let mut m = FaultMedia::new();
        m.write_all(b"0123456789").unwrap();
        m.set_len(4).unwrap();
        assert_eq!(m.contents(), b"0123");
        m.seek_to(2).unwrap();
        m.write_all(b"ZZZ").unwrap();
        assert_eq!(m.contents(), b"01ZZZ", "overwrite then extend");
        // set_len past the end zero-fills, like File::set_len.
        m.set_len(7).unwrap();
        assert_eq!(m.contents(), b"01ZZZ\0\0");
    }

    #[test]
    fn fault_media_sync_and_truncate_failures_are_one_shot() {
        let mut m = FaultMedia::new();
        m.fail_next_sync();
        let err = m.sync_data().unwrap_err();
        assert!(is_injected(&err), "{err}");
        m.sync_data().unwrap();
        assert_eq!(m.syncs(), 1);
        m.fail_next_set_len();
        assert!(m.set_len(0).is_err());
        m.set_len(0).unwrap();
    }
}
