//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum
//! guarding every persisted frame in the workspace.
//!
//! FxHash ([`crate::fxhash`]) is the right tool for in-memory tables but a
//! poor integrity check: it has no error-detection guarantees and its
//! output depends on word-at-a-time chunking. CRC-32 detects all
//! single-bit errors and all burst errors up to 32 bits in a frame, which
//! is exactly the failure model of a torn or bit-flipped disk write. The
//! implementation is table-driven *slicing-by-8*: eight derived tables
//! (built at compile time, no runtime init) fold 8 input bytes per
//! iteration, producing the identical IEEE digest as the classic
//! byte-at-a-time loop at several times the throughput — this checksum
//! sits on the snapshot cold-start and WAL append paths.
//!
//! Large buffers additionally *braid*: the input splits into three
//! equal streams folded by independent CRC registers inside one loop —
//! slicing-by-8's bottleneck is the serial dependency through the CRC
//! register (each iteration's eight table loads wait on the previous
//! iteration), so three independent chains keep the core's load ports
//! busy — and the three partial registers are then joined exactly with
//! the GF(2) zero-block operator (the `crc32_combine` construction:
//! appending `n` zero bytes is a linear map on the register, applied in
//! `O(log n)` by squaring its bit matrix). Same digest, one pass,
//! no threads.

/// Streaming CRC-32 state. Feed bytes with [`Crc32::update`], read the
/// digest with [`Crc32::finish`].
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

/// `TABLES[0]` is the classic byte-at-a-time table; `TABLES[k]` advances
/// a CRC by `k` additional zero bytes, which is what lets one iteration
/// consume 8 input bytes.
const TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

/// One slicing-by-8 step: fold an 8-byte chunk into `crc`.
#[inline(always)]
fn fold8(crc: u32, c: &[u8]) -> u32 {
    let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
    let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
    TABLES[7][(lo & 0xFF) as usize]
        ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
        ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
        ^ TABLES[4][(lo >> 24) as usize]
        ^ TABLES[3][(hi & 0xFF) as usize]
        ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
        ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
        ^ TABLES[0][(hi >> 24) as usize]
}

/// `mat · vec` over GF(2): XOR of the rows of `mat` selected by the set
/// bits of `vec`. `mat[k]` is the image of register bit `k`.
fn gf2_matrix_times(mat: &[u32; 32], mut vec: u32) -> u32 {
    let mut sum = 0;
    let mut i = 0;
    while vec != 0 {
        if vec & 1 != 0 {
            sum ^= mat[i];
        }
        vec >>= 1;
        i += 1;
    }
    sum
}

/// Matrix square over GF(2): the operator applied twice.
fn gf2_matrix_square(mat: &[u32; 32]) -> [u32; 32] {
    let mut sq = [0u32; 32];
    for (s, &m) in sq.iter_mut().zip(mat.iter()) {
        *s = gf2_matrix_times(mat, m);
    }
    sq
}

/// Advance a *raw* CRC register `reg` past `len` zero bytes, i.e. the
/// linear operator that re-bases a prefix register so an independently
/// computed suffix register (started from zero) can be XORed on:
/// `raw(A ‖ B) = zeros_shift(raw(A), |B|) ^ raw₀(B)`.
fn zeros_shift(mut reg: u32, mut len: u64) -> u32 {
    if len == 0 || reg == 0 {
        return reg;
    }
    // One-zero-bit operator on the reflected register:
    // bit 0 maps to the polynomial, bit k to bit k-1.
    let mut odd = [0u32; 32];
    odd[0] = 0xEDB8_8320;
    for (k, o) in odd.iter_mut().enumerate().skip(1) {
        *o = 1 << (k - 1);
    }
    let mut even = gf2_matrix_square(&odd); // 2 zero bits
    odd = gf2_matrix_square(&even); // 4 zero bits
    loop {
        even = gf2_matrix_square(&odd); // 8·2^i zero bits
        if len & 1 != 0 {
            reg = gf2_matrix_times(&even, reg);
        }
        len >>= 1;
        if len == 0 {
            break;
        }
        odd = gf2_matrix_square(&even);
        if len & 1 != 0 {
            reg = gf2_matrix_times(&odd, reg);
        }
        len >>= 1;
        if len == 0 {
            break;
        }
    }
    reg
}

/// Below this the GF(2) combine arithmetic outweighs the braiding win.
const BRAID_MIN: usize = 4 * 8 * 1024;

impl Crc32 {
    /// Fresh state (all-ones preload per the IEEE spec).
    pub fn new() -> Self {
        Self { state: !0 }
    }

    /// Fold `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        if bytes.len() >= BRAID_MIN {
            self.update_braided(bytes);
        } else {
            self.state = Self::fold_serial(self.state, bytes);
        }
    }

    /// Serial slicing-by-8 over `bytes`, returning the raw register.
    fn fold_serial(mut crc: u32, bytes: &[u8]) -> u32 {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            crc = fold8(crc, c);
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        crc
    }

    /// Three-stream braid: one loop advances three independent registers
    /// over three equal slices, then the zero-block operator splices the
    /// partials into a single register identical to the serial walk's.
    /// (Four lanes measured slower on the target hardware — the extra
    /// stream thrashes the L1-resident tables more than it hides
    /// latency.)
    fn update_braided(&mut self, bytes: &[u8]) {
        let lane = (bytes.len() / 3) & !7;
        let (a, rest) = bytes.split_at(lane);
        let (b, rest) = rest.split_at(lane);
        let (c, tail) = rest.split_at(lane);
        let mut ra = self.state;
        let mut rb = 0u32;
        let mut rc = 0u32;
        for ((ca, cb), cc) in a
            .chunks_exact(8)
            .zip(b.chunks_exact(8))
            .zip(c.chunks_exact(8))
        {
            ra = fold8(ra, ca);
            rb = fold8(rb, cb);
            rc = fold8(rc, cc);
        }
        let mut reg = zeros_shift(ra, lane as u64) ^ rb;
        reg = zeros_shift(reg, lane as u64) ^ rc;
        self.state = Self::fold_serial(reg, tail);
    }

    /// Final digest (state complemented per the IEEE spec).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot convenience: checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The CRC-32 "check" value from the IEEE spec.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0u16..2048).map(|i| (i % 251) as u8).collect();
        let whole = crc32(&data);
        for split in [0, 1, 7, 100, data.len() - 1, data.len()] {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), whole, "split at {split}");
        }
    }

    /// Classic byte-at-a-time reference — the ground truth both the
    /// slicing and braided paths must reproduce exactly.
    fn reference(bytes: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        !crc
    }

    #[test]
    fn braided_path_matches_reference() {
        // Sizes around the braid threshold, including lane-remainder and
        // tail-remainder shapes.
        for n in [
            BRAID_MIN - 1,
            BRAID_MIN,
            BRAID_MIN + 1,
            BRAID_MIN + 7,
            BRAID_MIN + 8,
            3 * BRAID_MIN + 5,
        ] {
            let data: Vec<u8> = (0..n).map(|i| (i * 31 % 251) as u8).collect();
            assert_eq!(crc32(&data), reference(&data), "len {n}");
        }
    }

    #[test]
    fn streaming_across_braid_threshold() {
        let data: Vec<u8> = (0..2 * BRAID_MIN + 13).map(|i| (i % 253) as u8).collect();
        let whole = crc32(&data);
        for split in [1, 100, BRAID_MIN - 1, BRAID_MIN, BRAID_MIN + 9, data.len() - 1] {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), whole, "split at {split}");
        }
    }

    #[test]
    fn zeros_shift_matches_feeding_zeros() {
        for len in [0u64, 1, 7, 8, 63, 255, 1024, 65537] {
            for seed in [0u32, 1, 0xDEAD_BEEF, !0] {
                let zeros = vec![0u8; len as usize];
                let want = Crc32::fold_serial(seed, &zeros);
                assert_eq!(zeros_shift(seed, len), want, "len {len} seed {seed:#x}");
            }
        }
    }

    #[test]
    fn detects_every_single_byte_flip() {
        let data = b"frame body with enough bytes to be interesting".to_vec();
        let clean = crc32(&data);
        for i in 0..data.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut bad = data.clone();
                bad[i] ^= flip;
                assert_ne!(crc32(&bad), clean, "flip {flip:#x} at {i} undetected");
            }
        }
    }
}
