//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum
//! guarding every persisted frame in the workspace.
//!
//! FxHash ([`crate::fxhash`]) is the right tool for in-memory tables but a
//! poor integrity check: it has no error-detection guarantees and its
//! output depends on word-at-a-time chunking. CRC-32 detects all
//! single-bit errors and all burst errors up to 32 bits in a frame, which
//! is exactly the failure model of a torn or bit-flipped disk write. The
//! implementation is the classic table-driven byte-at-a-time loop; the
//! table is built at compile time so there is no runtime init.

/// Streaming CRC-32 state. Feed bytes with [`Crc32::update`], read the
/// digest with [`Crc32::finish`].
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

impl Crc32 {
    /// Fresh state (all-ones preload per the IEEE spec).
    pub fn new() -> Self {
        Self { state: !0 }
    }

    /// Fold `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Final digest (state complemented per the IEEE spec).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot convenience: checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The CRC-32 "check" value from the IEEE spec.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0u16..2048).map(|i| (i % 251) as u8).collect();
        let whole = crc32(&data);
        for split in [0, 1, 7, 100, data.len() - 1, data.len()] {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), whole, "split at {split}");
        }
    }

    #[test]
    fn detects_every_single_byte_flip() {
        let data = b"frame body with enough bytes to be interesting".to_vec();
        let clean = crc32(&data);
        for i in 0..data.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut bad = data.clone();
                bad[i] ^= flip;
                assert_ne!(crc32(&bad), clean, "flip {flip:#x} at {i} undetected");
            }
        }
    }
}
