//! Deterministic network fault injection: a seeded in-process TCP proxy.
//!
//! The network analogue of [`failpoint`](crate::failpoint): where
//! `FaultMedia` reproduces the inconvenient ways disks fail, this module
//! reproduces the inconvenient ways *networks* fail — and does it
//! deterministically, so a resilience test can assert recovery behaviour
//! under a pinned fault schedule instead of whatever a flaky LAN
//! happened to serve up.
//!
//! [`ChaosProxy`] fronts a real TCP listener (a shard server in the
//! cluster tests): clients connect to the proxy's address, the proxy
//! connects onward to the upstream and pumps bytes both ways. Each
//! accepted connection is assigned a [`Fault`] drawn reproducibly from
//! the proxy's [`FaultPlan`] — a pure function of `(seed, connection
//! index)`, so the same seed always yields the same fault schedule:
//!
//! - [`Fault::Refuse`] — accept, then close immediately: the client's
//!   connect succeeds but its first exchange dies (the closest a
//!   userspace proxy gets to a kernel connect-refusal).
//! - [`Fault::BlackHole`] — accept and *read* the client's bytes, but
//!   never answer (the slow-loris shape: the connection looks alive,
//!   nothing ever comes back).
//! - [`Fault::Delay`] — forward faithfully, but hold each upstream
//!   *response* for a fixed latency plus seeded jitter. Response
//!   boundaries are detected from the `Content-Length` framing this
//!   workspace's HTTP always emits, so every request on a kept-alive
//!   connection pays the latency, not just the first.
//! - [`Fault::Reset`] — forward `after_bytes` of response bytes, then
//!   kill the connection abruptly mid-stream.
//! - [`Fault::ShortWrite`] — forward only the first `keep_bytes` of
//!   response bytes, then close: the wire analogue of a torn write.
//! - [`Fault::Throttle`] — forward at a byte rate, modelling a
//!   congested or drip-feeding peer. A tiny rate is the classic
//!   read-timeout defeater: every read makes *some* progress, so only
//!   deadline-anchored clients ever give up.
//!
//! Faults shape the **upstream → client** direction (the response
//! path); the request path is forwarded verbatim, so the upstream sees
//! well-formed requests and the client sees a sick server. Counters in
//! [`ChaosStats`] record what was actually injected, letting tests
//! assert both the schedule and its effects.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::rng::DetRng;
use crate::shutdown::ShutdownFlag;

/// How one proxied connection misbehaves (or doesn't).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Forward faithfully in both directions.
    None,
    /// Accept, then close immediately — connect-level refusal.
    Refuse,
    /// Accept and consume the request, but never answer.
    BlackHole,
    /// Hold each response for `ms` plus a seeded jitter in
    /// `[0, jitter_ms]` before forwarding it.
    Delay {
        /// Fixed latency per response, milliseconds.
        ms: u64,
        /// Upper bound of the per-response seeded jitter, milliseconds.
        jitter_ms: u64,
    },
    /// Forward `after_bytes` response bytes, then kill the connection.
    Reset {
        /// Response bytes forwarded before the connection dies.
        after_bytes: u64,
    },
    /// Forward only the first `keep_bytes` response bytes, then close
    /// cleanly — a truncated (torn) response.
    ShortWrite {
        /// Response bytes the client receives before EOF.
        keep_bytes: u64,
    },
    /// Forward responses at `bytes_per_sec` — a drip-feeding peer.
    Throttle {
        /// Forwarding rate, bytes per second (min 1).
        bytes_per_sec: u64,
    },
}

/// A reproducible per-connection fault assignment: weighted choices
/// drawn from a `u64` seed. [`FaultPlan::fault_for`] is a pure function
/// of `(seed, connection_index)`, so two proxies with the same plan
/// inject the same schedule.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    choices: Vec<(u32, Fault)>,
}

impl FaultPlan {
    /// Every connection passes through untouched.
    pub fn healthy() -> Self {
        Self::always(Fault::None)
    }

    /// Every connection gets the same fault.
    pub fn always(fault: Fault) -> Self {
        Self {
            seed: 0,
            choices: vec![(1, fault)],
        }
    }

    /// Weighted faults drawn per connection from `seed`. Zero-weight
    /// choices are dropped; an empty (or all-zero) list means healthy.
    pub fn seeded(seed: u64, choices: Vec<(u32, Fault)>) -> Self {
        let choices: Vec<(u32, Fault)> = choices.into_iter().filter(|(w, _)| *w > 0).collect();
        if choices.is_empty() {
            return Self::healthy();
        }
        Self { seed, choices }
    }

    /// The fault assigned to connection number `conn` (0-based accept
    /// order). Pure: calling it twice returns the same fault.
    pub fn fault_for(&self, conn: u64) -> Fault {
        if self.choices.len() == 1 {
            return self.choices[0].1;
        }
        let total: u64 = self.choices.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut rng = DetRng::new(self.seed).fork(conn);
        let mut x = rng.below(total as usize) as u64;
        for (w, f) in &self.choices {
            let w = u64::from(*w);
            if x < w {
                return *f;
            }
            x -= w;
        }
        self.choices[self.choices.len() - 1].1
    }

    /// The jitter stream for connection `conn` — decorrelated from the
    /// fault-choice draw so adding choices never shifts the jitter.
    fn jitter_rng(&self, conn: u64) -> DetRng {
        DetRng::new(self.seed).fork(conn).fork(0xD1E7)
    }
}

/// What the proxy actually injected, as lock-free counters.
#[derive(Debug, Default)]
pub struct ChaosStats {
    connections: AtomicU64,
    passthrough: AtomicU64,
    refused: AtomicU64,
    black_holed: AtomicU64,
    delays: AtomicU64,
    resets: AtomicU64,
    short_writes: AtomicU64,
    throttled: AtomicU64,
    bytes_to_upstream: AtomicU64,
    bytes_to_client: AtomicU64,
}

macro_rules! stat_getters {
    ($($(#[$doc:meta])* $name:ident),* $(,)?) => {
        $( $(#[$doc])* pub fn $name(&self) -> u64 { self.$name.load(Ordering::Relaxed) } )*
    };
}

impl ChaosStats {
    stat_getters! {
        /// Connections accepted.
        connections,
        /// Connections proxied with no fault.
        passthrough,
        /// Connections refused (accept-then-close).
        refused,
        /// Connections black-holed (request eaten, no answer).
        black_holed,
        /// Responses held for injected latency.
        delays,
        /// Connections killed mid-response.
        resets,
        /// Responses truncated by a short write.
        short_writes,
        /// Connections forwarded under a byte-rate throttle.
        throttled,
        /// Request bytes forwarded to the upstream.
        bytes_to_upstream,
        /// Response bytes forwarded back to clients.
        bytes_to_client,
    }
}

/// A running fault-injection proxy. Dropping it stops the accept loop;
/// in-flight connection pumps notice the stop flag within ~100 ms.
#[derive(Debug)]
pub struct ChaosProxy {
    addr: SocketAddr,
    stats: Arc<ChaosStats>,
    plan: Arc<Mutex<FaultPlan>>,
    stop: ShutdownFlag,
    accept_thread: Option<JoinHandle<()>>,
}

/// Granularity at which pumps poll the stop flag.
const POLL: Duration = Duration::from_millis(50);

impl ChaosProxy {
    /// Bind an ephemeral local port and start proxying to `upstream`
    /// under `plan`.
    pub fn spawn(upstream: SocketAddr, plan: FaultPlan) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(ChaosStats::default());
        let plan = Arc::new(Mutex::new(plan));
        let stop = ShutdownFlag::new();
        let accept_thread = {
            let (stats, plan, stop) = (Arc::clone(&stats), Arc::clone(&plan), stop.clone());
            std::thread::spawn(move || accept_loop(&listener, upstream, &plan, &stats, &stop))
        };
        Ok(Self {
            addr,
            stats,
            plan,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The proxy's injection counters.
    pub fn stats(&self) -> &ChaosStats {
        &self.stats
    }

    /// Swap the fault plan for future connections (healing a "sick"
    /// replica mid-test). The connection counter keeps running.
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.plan.lock().unwrap_or_else(|e| e.into_inner()) = plan;
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.trigger();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    plan: &Arc<Mutex<FaultPlan>>,
    stats: &Arc<ChaosStats>,
    stop: &ShutdownFlag,
) {
    let mut conn: u64 = 0;
    while !stop.is_triggered() {
        match listener.accept() {
            Ok((client, _)) => {
                let (fault, rng) = {
                    let plan = plan.lock().unwrap_or_else(|e| e.into_inner());
                    (plan.fault_for(conn), plan.jitter_rng(conn))
                };
                conn += 1;
                stats.connections.fetch_add(1, Ordering::Relaxed);
                let (stats, stop) = (Arc::clone(stats), stop.clone());
                // Detached: pumps poll `stop` and exit promptly when the
                // proxy is dropped.
                std::thread::spawn(move || handle_conn(client, upstream, fault, rng, stats, &stop));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

fn handle_conn(
    client: TcpStream,
    upstream: SocketAddr,
    fault: Fault,
    rng: DetRng,
    stats: Arc<ChaosStats>,
    stop: &ShutdownFlag,
) {
    match fault {
        Fault::Refuse => {
            stats.refused.fetch_add(1, Ordering::Relaxed);
            drop(client); // accept-then-close: the client's exchange dies
            return;
        }
        Fault::BlackHole => {
            stats.black_holed.fetch_add(1, Ordering::Relaxed);
            black_hole(client, stop);
            return;
        }
        Fault::None => {
            stats.passthrough.fetch_add(1, Ordering::Relaxed);
        }
        Fault::Throttle { .. } => {
            stats.throttled.fetch_add(1, Ordering::Relaxed);
        }
        // Delay / Reset / ShortWrite count when they actually fire,
        // inside the shaped pump.
        _ => {}
    }
    let Ok(server) = TcpStream::connect_timeout(&upstream, Duration::from_secs(2)) else {
        return; // upstream really is down; the client sees the close
    };
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);
    let (Ok(client_rx), Ok(server_tx)) = (client.try_clone(), server.try_clone()) else {
        return;
    };
    // Request path: verbatim, on its own thread.
    let request_pump = {
        let stop = stop.clone();
        let stats = Arc::clone(&stats);
        std::thread::spawn(move || pump_plain(client_rx, server_tx, &stop, &stats.bytes_to_upstream))
    };
    // Response path: fault-shaped, on this thread.
    pump_shaped(server, client, fault, rng, &stats, stop);
    let _ = request_pump.join();
}

/// Read and discard until the peer closes or the proxy stops: the
/// connection stays "alive" but nothing is ever answered.
fn black_hole(stream: TcpStream, stop: &ShutdownFlag) {
    let _ = stream.set_read_timeout(Some(POLL));
    let mut sink = [0u8; 4096];
    let mut s = &stream;
    while !stop.is_triggered() {
        match s.read(&mut sink) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {}
            Err(_) => break,
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Forward bytes verbatim `from → to`, polling `stop`. On EOF the
/// destination's write side is shut down so the peer sees it.
fn pump_plain(from: TcpStream, to: TcpStream, stop: &ShutdownFlag, forwarded: &AtomicU64) {
    let _ = from.set_read_timeout(Some(POLL));
    let mut buf = [0u8; 4096];
    let (mut rx, mut tx) = (&from, &to);
    while !stop.is_triggered() {
        match rx.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                if tx.write_all(&buf[..n]).is_err() {
                    break;
                }
                forwarded.fetch_add(n as u64, Ordering::Relaxed);
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {}
            Err(_) => break,
        }
    }
    let _ = to.shutdown(Shutdown::Write);
}

/// Track response boundaries in a `Content-Length`-framed HTTP/1.1
/// byte stream, so per-response faults (latency) fire once per response
/// even on kept-alive connections. A response without a
/// `Content-Length` header is treated as close-delimited (the rest of
/// the stream is its body).
#[derive(Debug)]
enum RespFramer {
    /// Accumulating head bytes of the next response.
    Head(Vec<u8>),
    /// Inside a body with this many bytes left.
    Body(u64),
}

impl RespFramer {
    fn new() -> Self {
        RespFramer::Head(Vec::new())
    }

    /// Is the next byte the start of a new response?
    fn at_boundary(&self) -> bool {
        matches!(self, RespFramer::Head(buf) if buf.is_empty())
    }

    /// Advance the framing state over forwarded bytes.
    fn advance(&mut self, mut bytes: &[u8]) {
        while !bytes.is_empty() {
            match self {
                RespFramer::Head(buf) => {
                    buf.extend_from_slice(bytes);
                    bytes = &[];
                    if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                        let body_started = buf.len() as u64 - (pos as u64 + 4);
                        let len = content_length(&buf[..pos]).unwrap_or(u64::MAX);
                        let remaining = len.saturating_sub(body_started);
                        *self = if remaining == 0 {
                            RespFramer::new()
                        } else {
                            RespFramer::Body(remaining)
                        };
                    } else if buf.len() > 64 * 1024 {
                        // Not something we can frame; stop trying.
                        *self = RespFramer::Body(u64::MAX);
                    }
                }
                RespFramer::Body(remaining) => {
                    let take = (*remaining).min(bytes.len() as u64);
                    *remaining -= take;
                    bytes = &bytes[take as usize..];
                    if *remaining == 0 {
                        *self = RespFramer::new();
                    }
                }
            }
        }
    }
}

/// Parse `Content-Length` (case-insensitive) out of a response head.
fn content_length(head: &[u8]) -> Option<u64> {
    let text = std::str::from_utf8(head).ok()?;
    text.split("\r\n").skip(1).find_map(|line| {
        let (name, value) = line.split_once(':')?;
        name.trim()
            .eq_ignore_ascii_case("content-length")
            .then(|| value.trim().parse().ok())?
    })
}

/// Forward response bytes `from → to` under the connection's fault.
fn pump_shaped(
    from: TcpStream,
    to: TcpStream,
    fault: Fault,
    mut rng: DetRng,
    stats: &ChaosStats,
    stop: &ShutdownFlag,
) {
    let _ = from.set_read_timeout(Some(POLL));
    let mut buf = [0u8; 4096];
    let (mut rx, mut tx) = (&from, &to);
    let mut forwarded: u64 = 0;
    let mut framer = RespFramer::new();
    'outer: while !stop.is_triggered() {
        let n = match rx.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                continue;
            }
            Err(_) => break,
        };
        let chunk = &buf[..n];
        match fault {
            Fault::None | Fault::Refuse | Fault::BlackHole => {
                if tx.write_all(chunk).is_err() {
                    break;
                }
            }
            Fault::Delay { ms, jitter_ms } => {
                if framer.at_boundary() {
                    let jitter = if jitter_ms > 0 { rng.below(jitter_ms as usize + 1) as u64 } else { 0 };
                    stats.delays.fetch_add(1, Ordering::Relaxed);
                    sleep_unless_stopped(Duration::from_millis(ms + jitter), stop);
                }
                framer.advance(chunk);
                if tx.write_all(chunk).is_err() {
                    break;
                }
            }
            Fault::Throttle { bytes_per_sec } => {
                let rate = bytes_per_sec.max(1);
                // Fine-grained slices so a low rate *drips*: many small
                // reads each arriving "in time" — exactly the pattern
                // that defeats per-syscall read timeouts.
                for slice in chunk.chunks(64) {
                    if stop.is_triggered() || tx.write_all(slice).is_err() {
                        break 'outer;
                    }
                    let pause = Duration::from_secs_f64(slice.len() as f64 / rate as f64);
                    sleep_unless_stopped(pause, stop);
                }
            }
            Fault::Reset { after_bytes } => {
                let room = after_bytes.saturating_sub(forwarded);
                let take = (room as usize).min(chunk.len());
                if take > 0 && tx.write_all(&chunk[..take]).is_err() {
                    break;
                }
                if (chunk.len() as u64) > room {
                    stats.resets.fetch_add(1, Ordering::Relaxed);
                    stats.bytes_to_client.fetch_add(take as u64, Ordering::Relaxed);
                    break; // abrupt: both sides shut down below, mid-response
                }
            }
            Fault::ShortWrite { keep_bytes } => {
                let room = keep_bytes.saturating_sub(forwarded);
                let take = (room as usize).min(chunk.len());
                if take > 0 && tx.write_all(&chunk[..take]).is_err() {
                    break;
                }
                if (chunk.len() as u64) > room {
                    stats.short_writes.fetch_add(1, Ordering::Relaxed);
                    stats.bytes_to_client.fetch_add(take as u64, Ordering::Relaxed);
                    break; // clean close after the torn prefix
                }
            }
        }
        forwarded += n as u64;
        stats.bytes_to_client.fetch_add(n as u64, Ordering::Relaxed);
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

/// Sleep in stop-aware slices.
fn sleep_unless_stopped(total: Duration, stop: &ShutdownFlag) {
    let end = Instant::now() + total;
    while !stop.is_triggered() {
        let left = end.saturating_duration_since(Instant::now());
        if left.is_zero() {
            break;
        }
        std::thread::sleep(left.min(POLL));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A one-shot echo-ish HTTP upstream: answers every request with a
    /// fixed `Content-Length`-framed body, keep-alive.
    fn upstream(body: &'static str) -> (SocketAddr, ShutdownFlag) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind upstream");
        listener.set_nonblocking(true).expect("nonblocking");
        let addr = listener.local_addr().expect("addr");
        let stop = ShutdownFlag::new();
        let stop2 = stop.clone();
        std::thread::spawn(move || {
            while !stop2.is_triggered() {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let stop3 = stop2.clone();
                        std::thread::spawn(move || serve_conn(stream, body, &stop3));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });
        (addr, stop)
    }

    fn serve_conn(stream: TcpStream, body: &str, stop: &ShutdownFlag) {
        let _ = stream.set_read_timeout(Some(POLL));
        let mut s = &stream;
        let mut buf = [0u8; 4096];
        let mut pending = Vec::new();
        while !stop.is_triggered() {
            match s.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    pending.extend_from_slice(&buf[..n]);
                    // One response per double-CRLF seen (requests here
                    // carry no bodies).
                    while let Some(pos) = pending.windows(4).position(|w| w == b"\r\n\r\n") {
                        pending.drain(..pos + 4);
                        let resp = format!(
                            "HTTP/1.1 200 OK\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{}",
                            body.len(),
                            body
                        );
                        if s.write_all(resp.as_bytes()).is_err() {
                            return;
                        }
                    }
                }
                Err(e)
                    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {}
                Err(_) => break,
            }
        }
    }

    fn get(addr: SocketAddr, timeout: Duration) -> io::Result<String> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        let mut s = &stream;
        s.write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")?;
        let mut out = String::new();
        let deadline = Instant::now() + timeout;
        let mut buf = [0u8; 4096];
        loop {
            match s.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    out.push_str(&String::from_utf8_lossy(&buf[..n]));
                    if out.contains("BODY") || Instant::now() >= deadline {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        Ok(out)
    }

    #[test]
    fn fault_schedule_is_a_pure_function_of_seed_and_index() {
        let choices = vec![
            (3, Fault::None),
            (1, Fault::Refuse),
            (1, Fault::ShortWrite { keep_bytes: 10 }),
            (1, Fault::Delay { ms: 5, jitter_ms: 5 }),
        ];
        let a = FaultPlan::seeded(42, choices.clone());
        let b = FaultPlan::seeded(42, choices.clone());
        let c = FaultPlan::seeded(43, choices);
        let seq = |p: &FaultPlan| (0..200).map(|i| p.fault_for(i)).collect::<Vec<_>>();
        assert_eq!(seq(&a), seq(&b), "same seed, same schedule");
        assert_ne!(seq(&a), seq(&c), "different seed, different schedule");
        // Pure: re-asking for the same connection never drifts.
        assert_eq!(a.fault_for(7), a.fault_for(7));
        // Every weighted class actually appears in a 200-draw schedule.
        let s = seq(&a);
        assert!(s.contains(&Fault::None));
        assert!(s.contains(&Fault::Refuse));
    }

    #[test]
    fn passthrough_forwards_both_ways() {
        let (up, stop) = upstream("BODY");
        let proxy = ChaosProxy::spawn(up, FaultPlan::healthy()).expect("spawn");
        let resp = get(proxy.addr(), Duration::from_secs(2)).expect("get");
        assert!(resp.contains("200 OK"), "{resp}");
        assert!(resp.contains("BODY"), "{resp}");
        assert_eq!(proxy.stats().connections(), 1);
        assert_eq!(proxy.stats().passthrough(), 1);
        stop.trigger();
    }

    #[test]
    fn refuse_kills_the_exchange() {
        let (up, stop) = upstream("BODY");
        let proxy = ChaosProxy::spawn(up, FaultPlan::always(Fault::Refuse)).expect("spawn");
        let resp = get(proxy.addr(), Duration::from_millis(500)).unwrap_or_default();
        assert!(!resp.contains("200 OK"), "refused connection answered: {resp}");
        assert_eq!(proxy.stats().refused(), 1);
        stop.trigger();
    }

    #[test]
    fn black_hole_accepts_but_never_answers() {
        let (up, stop) = upstream("BODY");
        let proxy = ChaosProxy::spawn(up, FaultPlan::always(Fault::BlackHole)).expect("spawn");
        let t = Instant::now();
        let resp = get(proxy.addr(), Duration::from_millis(300)).unwrap_or_default();
        assert!(resp.is_empty(), "black hole leaked bytes: {resp}");
        assert!(t.elapsed() >= Duration::from_millis(250), "client gave up early");
        assert_eq!(proxy.stats().black_holed(), 1);
        stop.trigger();
    }

    #[test]
    fn short_write_truncates_the_response() {
        let (up, stop) = upstream("BODY");
        let proxy = ChaosProxy::spawn(up, FaultPlan::always(Fault::ShortWrite { keep_bytes: 12 }))
            .expect("spawn");
        let resp = get(proxy.addr(), Duration::from_secs(2)).unwrap_or_default();
        assert!(resp.len() <= 12, "kept {} bytes: {resp:?}", resp.len());
        assert_eq!(proxy.stats().short_writes(), 1);
        stop.trigger();
    }

    #[test]
    fn delay_holds_every_response_on_a_kept_alive_connection() {
        let (up, stop) = upstream("BODY");
        let proxy = ChaosProxy::spawn(up, FaultPlan::always(Fault::Delay { ms: 60, jitter_ms: 0 }))
            .expect("spawn");
        let timeout = Duration::from_secs(2);
        let stream = TcpStream::connect_timeout(&proxy.addr(), timeout).expect("connect");
        stream.set_read_timeout(Some(timeout)).expect("timeout");
        let mut s = &stream;
        let mut buf = [0u8; 4096];
        let mut latencies = Vec::new();
        for _ in 0..2 {
            let t = Instant::now();
            s.write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n").expect("send");
            let mut got = String::new();
            while !got.contains("BODY") {
                let n = s.read(&mut buf).expect("read");
                assert!(n > 0, "EOF mid-response");
                got.push_str(&String::from_utf8_lossy(&buf[..n]));
            }
            latencies.push(t.elapsed());
        }
        for (i, l) in latencies.iter().enumerate() {
            assert!(
                *l >= Duration::from_millis(55),
                "request {i} answered in {l:?} — delay must hit every response, not just the first"
            );
        }
        assert_eq!(proxy.stats().delays(), 2);
        stop.trigger();
    }

    #[test]
    fn set_plan_heals_future_connections() {
        let (up, stop) = upstream("BODY");
        let proxy = ChaosProxy::spawn(up, FaultPlan::always(Fault::Refuse)).expect("spawn");
        let sick = get(proxy.addr(), Duration::from_millis(300)).unwrap_or_default();
        assert!(!sick.contains("200 OK"));
        proxy.set_plan(FaultPlan::healthy());
        let healed = get(proxy.addr(), Duration::from_secs(2)).expect("healed get");
        assert!(healed.contains("200 OK"), "{healed}");
        stop.trigger();
    }

    #[test]
    fn framer_tracks_response_boundaries() {
        let mut f = RespFramer::new();
        assert!(f.at_boundary());
        let resp = b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nBODY";
        f.advance(&resp[..10]);
        assert!(!f.at_boundary(), "mid-head");
        f.advance(&resp[10..resp.len() - 2]);
        assert!(!f.at_boundary(), "mid-body");
        f.advance(&resp[resp.len() - 2..]);
        assert!(f.at_boundary(), "after a full response");
        // Split across responses in one chunk.
        let two = [&resp[..], &resp[..]].concat();
        f.advance(&two);
        assert!(f.at_boundary());
    }
}
