//! Log2-bucketed value histograms.
//!
//! [`Histogram`] counts `u64` observations (the serving layer records
//! request latencies in microseconds) into power-of-two buckets: bucket 0
//! holds the value `0`, bucket `i ≥ 1` holds `[2^(i-1), 2^i - 1]`. Two
//! properties make this the right shape for a metrics endpoint:
//!
//! - recording is a single array increment (no allocation, no sort), so a
//!   histogram can sit behind a mutex on the request path;
//! - merging is element-wise addition, so per-worker histograms fold into
//!   one fleet-wide report associatively and commutatively.
//!
//! Quantiles are answered from bucket boundaries: `quantile(q)` returns
//! the *upper bound* of the bucket containing the q-th ranked sample, so
//! the true sample value `v` satisfies `v <= quantile(q) < 2·v` (exact
//! for `v = 0`). Property tests in `tests/prop.rs` pin merge
//! associativity, bucket monotonicity, and these quantile bounds.

use std::time::Duration;

/// Number of buckets: one for zero plus one per bit of `u64`.
pub const BUCKET_COUNT: usize = 65;

/// The bucket index observing `value` increments.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The largest value falling into bucket `index` (saturates to
/// `u64::MAX` for the last bucket).
#[inline]
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// A fixed-size log2 histogram of `u64` observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKET_COUNT],
    total: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: [0; BUCKET_COUNT],
            total: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.total += 1;
        self.sum += value as u128;
    }

    /// Record a duration in whole microseconds.
    pub fn record_micros(&mut self, elapsed: Duration) {
        self.record(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean recorded value (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Fold another histogram into this one (element-wise addition).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
    }

    /// `self` merged with `other`, by value.
    pub fn merged(&self, other: &Histogram) -> Histogram {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// Upper bound of the bucket containing the `q`-th ranked sample
    /// (`q` clamped to `[0, 1]`; zero when empty). The true sample `v`
    /// satisfies `v <= quantile(q) < 2·v` for `v > 0`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(BUCKET_COUNT - 1)
    }

    /// Upper bound of the highest nonzero bucket (zero when empty).
    pub fn max_bound(&self) -> u64 {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map(bucket_upper_bound)
            .unwrap_or(0)
    }

    /// `(upper_bound, count)` for every nonzero bucket, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper_bound(i), c))
    }
}

/// Render as `{"count", "mean", "p50", "p90", "p99", "max", "buckets":
/// [{"le", "count"}, …]}` — the shape the serving layer's `/metrics`
/// endpoint reports.
#[cfg(feature = "serde")]
impl serde::Serialize for Histogram {
    fn serialize_value(&self) -> serde::Value {
        let buckets = self
            .nonzero_buckets()
            .map(|(le, count)| {
                serde::Value::Object(vec![
                    ("le".to_string(), le.serialize_value()),
                    ("count".to_string(), count.serialize_value()),
                ])
            })
            .collect();
        serde::Value::Object(vec![
            ("count".to_string(), self.total.serialize_value()),
            ("mean".to_string(), self.mean().serialize_value()),
            ("p50".to_string(), self.quantile(0.50).serialize_value()),
            ("p90".to_string(), self.quantile(0.90).serialize_value()),
            ("p99".to_string(), self.quantile(0.99).serialize_value()),
            ("max".to_string(), self.max_bound().serialize_value()),
            ("buckets".to_string(), serde::Value::Array(buckets)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        // Every value lands in a bucket whose bounds contain it.
        for v in [0u64, 1, 2, 3, 7, 8, 1000, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i));
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1));
            }
        }
    }

    #[test]
    fn record_count_and_mean() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        for v in [0u64, 10, 100, 90] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 200);
        assert!((h.mean() - 50.0).abs() < 1e-9);
        assert!(!h.is_empty());
    }

    #[test]
    fn quantiles_bound_the_samples() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        assert!((500..1000).contains(&p50), "p50={p50}");
        assert!(h.quantile(1.0) >= 1000);
        assert!(h.quantile(0.0) >= 1);
        assert_eq!(h.max_bound(), bucket_upper_bound(bucket_index(1000)));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new();
        a.record(5);
        let mut b = Histogram::new();
        b.record(5);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 510);
        let buckets: Vec<_> = a.nonzero_buckets().collect();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0], (bucket_upper_bound(bucket_index(5)), 2));
    }

    #[test]
    fn record_micros_converts() {
        let mut h = Histogram::new();
        h.record_micros(Duration::from_millis(3));
        assert_eq!(h.sum(), 3000);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serializes_summary_shape() {
        use serde::Serialize;
        let mut h = Histogram::new();
        h.record(7);
        let v = h.serialize_value();
        assert_eq!(v.get("count").and_then(|c| c.as_i64()), Some(1));
        assert!(v.get("buckets").and_then(|b| b.as_array()).is_some());
    }
}
