//! Property tests for the utility primitives.

use proptest::prelude::*;

use newslink_util::{histogram, varint};
use newslink_util::{DetRng, Histogram, TopK};

proptest! {
    /// TopK agrees with sort-and-truncate for arbitrary score streams.
    #[test]
    fn topk_matches_sorting(
        scores in prop::collection::vec(-1e6f64..1e6, 0..200),
        k in 0usize..20,
    ) {
        let mut tk = TopK::new(k);
        for (i, &s) in scores.iter().enumerate() {
            tk.push(s, i);
        }
        let got = tk.into_sorted();
        let mut want: Vec<(f64, usize)> =
            scores.iter().copied().enumerate().map(|(i, s)| (s, i)).collect();
        // descending score, ascending index on ties (earlier insertion wins)
        want.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        want.truncate(k);
        prop_assert_eq!(got, want);
    }

    /// Varints round-trip any u64 and any sequence.
    #[test]
    fn varint_round_trips(values in prop::collection::vec(any::<u64>(), 0..64)) {
        let mut buf = Vec::new();
        for &v in &values {
            varint::write_u64(&mut buf, v).unwrap();
        }
        let mut r = &buf[..];
        for &v in &values {
            prop_assert_eq!(varint::read_u64(&mut r).unwrap(), v);
        }
        prop_assert!(r.is_empty());
    }

    /// Strings of any shape round-trip.
    #[test]
    fn varint_strings_round_trip(s in "\\PC*") {
        let mut buf = Vec::new();
        varint::write_str(&mut buf, &s).unwrap();
        let got = varint::read_str(&mut &buf[..], s.len().max(1)).unwrap();
        prop_assert_eq!(got, s);
    }

    /// below() is uniform enough to hit every bucket of a small range.
    #[test]
    fn rng_below_stays_in_bounds(seed in any::<u64>(), bound in 1usize..1000) {
        let mut rng = DetRng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    /// sample_indices returns distinct in-range indices.
    #[test]
    fn rng_sample_indices_distinct(seed in any::<u64>(), n in 1usize..200, k in 0usize..100) {
        let mut rng = DetRng::new(seed);
        let s = rng.sample_indices(n, k);
        prop_assert_eq!(s.len(), k.min(n));
        let set: std::collections::HashSet<_> = s.iter().collect();
        prop_assert_eq!(set.len(), s.len());
        prop_assert!(s.iter().all(|&i| i < n));
    }

    /// pick_weighted never selects a zero-weight item.
    #[test]
    fn rng_pick_weighted_respects_zeros(
        seed in any::<u64>(),
        weights in prop::collection::vec(0.0f64..10.0, 1..20),
    ) {
        let mut rng = DetRng::new(seed);
        for _ in 0..50 {
            match rng.pick_weighted(&weights) {
                Some(i) => prop_assert!(weights[i] > 0.0),
                None => prop_assert!(weights.iter().all(|&w| w <= 0.0)),
            }
        }
    }

    /// Histogram merge is associative (and agrees with recording the
    /// concatenated stream).
    #[test]
    fn histogram_merge_associative(
        xs in prop::collection::vec(any::<u64>(), 0..100),
        ys in prop::collection::vec(any::<u64>(), 0..100),
        zs in prop::collection::vec(any::<u64>(), 0..100),
    ) {
        let build = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (a, b, c) = (build(&xs), build(&ys), build(&zs));
        prop_assert_eq!(a.merged(&b).merged(&c), a.merged(&b.merged(&c)));
        prop_assert_eq!(a.merged(&b), b.merged(&a));
        let mut all = xs.clone();
        all.extend(&ys);
        all.extend(&zs);
        prop_assert_eq!(build(&all), a.merged(&b).merged(&c));
    }

    /// Bucket index is monotone in the value, and every value lies within
    /// its bucket's bounds.
    #[test]
    fn histogram_buckets_monotone(mut values in prop::collection::vec(any::<u64>(), 2..100)) {
        values.sort_unstable();
        for w in values.windows(2) {
            prop_assert!(histogram::bucket_index(w[0]) <= histogram::bucket_index(w[1]));
        }
        for &v in &values {
            let i = histogram::bucket_index(v);
            prop_assert!(v <= histogram::bucket_upper_bound(i));
            if i > 0 {
                prop_assert!(v > histogram::bucket_upper_bound(i - 1));
            }
        }
    }

    /// Quantiles are bucket upper bounds: for the q-th ranked sample v,
    /// v <= quantile(q) < 2·v (exact at v = 0), and quantile(1.0) bounds
    /// the maximum.
    #[test]
    fn histogram_quantile_bounds(
        values in prop::collection::vec(0u64..1_000_000, 1..200),
        q in 0.0f64..1.0,
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        let true_v = sorted[rank - 1];
        let got = h.quantile(q);
        prop_assert!(got >= true_v, "quantile({q}) = {got} < sample {true_v}");
        if true_v > 0 {
            prop_assert!(got < 2 * true_v, "quantile({q}) = {got} >= 2·{true_v}");
        } else {
            prop_assert_eq!(got, 0);
        }
        prop_assert!(h.quantile(1.0) >= *sorted.last().unwrap());
        prop_assert_eq!(h.count(), values.len() as u64);
    }
}
