//! Paired bootstrap significance testing.
//!
//! Table IV compares methods on the same query set, so per-query outcomes
//! are *paired*. The paired bootstrap (Efron & Tibshirani) resamples
//! queries with replacement and asks how often the observed metric
//! difference would flip sign — the standard IR significance test. Used to
//! substantiate statements like "NewsLink's HIT@1 edge over Lucene is a
//! statistical tie at this corpus scale" (EXPERIMENTS.md).

use serde::Serialize;

use newslink_util::DetRng;

use crate::context::QueryCase;
use crate::methods::SearchMethod;

/// The bootstrap outcome for a paired metric difference (method A − B).
#[derive(Debug, Clone, Serialize)]
pub struct BootstrapResult {
    /// Observed difference of means.
    pub observed_diff: f64,
    /// Two-sided bootstrap p-value for the null `diff == 0`.
    pub p_value: f64,
    /// Resampling iterations.
    pub iterations: usize,
    /// Paired sample size.
    pub samples: usize,
}

impl BootstrapResult {
    /// Conventional significance at the given level.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Paired bootstrap over per-query scores (e.g. 0/1 hit indicators).
///
/// Returns `None` when the slices are empty or lengths differ.
pub fn paired_bootstrap(
    a: &[f64],
    b: &[f64],
    iterations: usize,
    seed: u64,
) -> Option<BootstrapResult> {
    if a.is_empty() || a.len() != b.len() || iterations == 0 {
        return None;
    }
    let n = a.len();
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let observed: f64 = diffs.iter().sum::<f64>() / n as f64;
    let mut rng = DetRng::new(seed);
    let mut le = 0usize; // resampled mean <= 0
    let mut ge = 0usize; // resampled mean >= 0
    for _ in 0..iterations {
        let mut sum = 0.0;
        for _ in 0..n {
            sum += diffs[rng.below(n)];
        }
        let mean = sum / n as f64;
        if mean <= 0.0 {
            le += 1;
        }
        if mean >= 0.0 {
            ge += 1;
        }
    }
    // Two-sided p-value with the +1 continuity correction.
    let tail = le.min(ge);
    let p = (2.0 * (tail as f64 + 1.0) / (iterations as f64 + 1.0)).min(1.0);
    Some(BootstrapResult {
        observed_diff: observed,
        p_value: p,
        iterations,
        samples: n,
    })
}

/// HIT@k indicators (1.0 / 0.0) per query for a method.
pub fn hit_indicators(method: &dyn SearchMethod, cases: &[QueryCase], k: usize) -> Vec<f64> {
    cases
        .iter()
        .map(|c| {
            let hit = method.rank(&c.query, k).contains(&c.doc);
            if hit {
                1.0
            } else {
                0.0
            }
        })
        .collect()
}

/// Convenience: paired bootstrap of HIT@k between two methods on the same
/// cases.
pub fn compare_hit_at_k(
    a: &dyn SearchMethod,
    b: &dyn SearchMethod,
    cases: &[QueryCase],
    k: usize,
    iterations: usize,
    seed: u64,
) -> Option<BootstrapResult> {
    let ha = hit_indicators(a, cases, k);
    let hb = hit_indicators(b, cases, k);
    paired_bootstrap(&ha, &hb, iterations, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_are_not_significant() {
        let a = vec![1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 1.0];
        let r = paired_bootstrap(&a, &a, 500, 1).unwrap();
        assert_eq!(r.observed_diff, 0.0);
        assert!(r.p_value > 0.9, "p {}", r.p_value);
        assert!(!r.significant_at(0.05));
    }

    #[test]
    fn consistent_advantage_is_significant() {
        // A beats B on 30 of 40 queries, never loses.
        let a: Vec<f64> = (0..40).map(|i| if i < 35 { 1.0 } else { 0.0 }).collect();
        let b: Vec<f64> = (0..40).map(|i| if i < 5 { 1.0 } else { 0.0 }).collect();
        let r = paired_bootstrap(&a, &b, 2000, 2).unwrap();
        assert!(r.observed_diff > 0.7);
        assert!(r.significant_at(0.05), "p {}", r.p_value);
    }

    #[test]
    fn tiny_noisy_difference_is_not_significant() {
        // A and B each win 3 disjoint queries of 40.
        let mut a = vec![0.0; 40];
        let mut b = vec![0.0; 40];
        for i in 0..3 {
            a[i] = 1.0;
            b[39 - i] = 1.0;
        }
        let r = paired_bootstrap(&a, &b, 2000, 3).unwrap();
        assert_eq!(r.observed_diff, 0.0);
        assert!(!r.significant_at(0.05));
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(paired_bootstrap(&[], &[], 100, 1).is_none());
        assert!(paired_bootstrap(&[1.0], &[1.0, 0.0], 100, 1).is_none());
        assert!(paired_bootstrap(&[1.0], &[0.0], 0, 1).is_none());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = vec![1.0, 0.0, 1.0, 0.0, 1.0];
        let b = vec![0.0, 0.0, 1.0, 1.0, 1.0];
        let r1 = paired_bootstrap(&a, &b, 300, 7).unwrap();
        let r2 = paired_bootstrap(&a, &b, 300, 7).unwrap();
        assert_eq!(r1.p_value, r2.p_value);
    }

    #[test]
    fn hit_indicators_against_real_methods() {
        use crate::context::{EvalContext, EvalScale};
        use crate::methods::LuceneMethod;
        use newslink_corpus::{CorpusFlavor, QueryStrategy};
        let ctx = EvalContext::build(CorpusFlavor::CnnLike, EvalScale::Tiny, 51);
        let cases = ctx.queries(QueryStrategy::LargestEntityDensity);
        let lucene = LuceneMethod::new(&ctx);
        let hits = hit_indicators(&lucene, &cases, 5);
        assert_eq!(hits.len(), cases.len());
        assert!(hits.iter().all(|&h| h == 0.0 || h == 1.0));
        // A method compared with itself is never significant.
        let r = compare_hit_at_k(&lucene, &lucene, &cases, 5, 200, 9).unwrap();
        assert!(!r.significant_at(0.05));
    }
}
