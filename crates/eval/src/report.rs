//! Machine-readable experiment reports.
//!
//! Besides the paper-style text tables, every bench target can dump its
//! raw results as JSON so downstream analysis (plotting, regression
//! tracking across commits) does not have to scrape stdout. Reports are
//! written when the `NEWSLINK_REPORT_DIR` environment variable names a
//! directory.

use std::path::{Path, PathBuf};

use serde::Serialize;

/// The report directory from `NEWSLINK_REPORT_DIR`, if configured.
pub fn report_dir() -> Option<PathBuf> {
    std::env::var_os("NEWSLINK_REPORT_DIR").map(PathBuf::from)
}

/// Serialize `value` as pretty JSON into `dir/name.json`.
pub fn write_report<T: Serialize>(dir: &Path, name: &str, value: &T) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Write `value` to the configured report directory (no-op without one).
/// Returns the written path, if any; I/O errors are reported to stderr
/// rather than failing the experiment.
pub fn maybe_report<T: Serialize>(name: &str, value: &T) -> Option<PathBuf> {
    let dir = report_dir()?;
    match write_report(&dir, name, value) {
        Ok(path) => Some(path),
        Err(e) => {
            eprintln!("warning: could not write report {name}: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::MatchingRatio;

    #[test]
    fn write_report_round_trips_json() {
        let dir = std::env::temp_dir().join("newslink_report_test");
        let value = MatchingRatio {
            corpus: "CNN".into(),
            ratio: 0.975,
            queries: 60,
        };
        let path = write_report(&dir, "table_v", &value).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"corpus\": \"CNN\""));
        assert!(text.contains("0.975"));
        let parsed: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(parsed["queries"], 60);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn nested_structures_serialize() {
        let dir = std::env::temp_dir().join("newslink_report_test");
        let scores = vec![crate::runner::MethodScores {
            method: "Lucene".into(),
            strategy: "density".into(),
            sim: vec![(5, 0.9)],
            hit: vec![(1, 0.8)],
        }];
        let path = write_report(&dir, "table_iv_cnn", &scores).unwrap();
        let parsed: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(parsed[0]["method"], "Lucene");
        assert_eq!(parsed[0]["sim"][0][0], 5);
        std::fs::remove_file(&path).ok();
    }
}
