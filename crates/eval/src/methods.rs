//! The unified method registry: every Table IV / VII competitor behind one
//! trait, so runners can sweep them uniformly.

use newslink_baselines::vector::cosine;
use newslink_baselines::{
    Doc2Vec, Doc2VecConfig, Lda, LdaConfig, Qeprf, QeprfConfig, SbertEmbedder,
};
use newslink_core::{EmbeddingModel, NewsLinkConfig, NewsLinkIndex};
use newslink_nlp::analyze;
use newslink_text::{Bm25, Searcher};
use newslink_util::TopK;

use crate::context::EvalContext;

/// A ranked-retrieval method under evaluation.
///
/// `Sync` so runners can fan queries out across threads.
pub trait SearchMethod: Sync {
    /// Display name for tables (e.g. `NewsLink(0.2)`).
    fn name(&self) -> String;
    /// Top-k corpus document indices for `query`, best first.
    fn rank(&self, query: &str, k: usize) -> Vec<usize>;
}

/// Brute-force cosine ranking over precomputed document vectors.
fn rank_by_cosine(doc_vectors: &[Vec<f32>], query_vec: &[f32], k: usize) -> Vec<usize> {
    let mut topk = TopK::new(k);
    for (i, v) in doc_vectors.iter().enumerate() {
        let s = cosine(query_vec, v);
        if s > 0.0 {
            topk.push(s, i);
        }
    }
    topk.into_sorted().into_iter().map(|(_, i)| i).collect()
}

// ---------------------------------------------------------------------------

/// The Lucene baseline: BM25 over the text index, default settings.
pub struct LuceneMethod<'c> {
    ctx: &'c EvalContext,
}

impl<'c> LuceneMethod<'c> {
    /// Build over the fixture's text index.
    pub fn new(ctx: &'c EvalContext) -> Self {
        Self { ctx }
    }
}

impl SearchMethod for LuceneMethod<'_> {
    fn name(&self) -> String {
        "Lucene".to_string()
    }

    fn rank(&self, query: &str, k: usize) -> Vec<usize> {
        let searcher = Searcher::new(&self.ctx.bow_index, Bm25::default());
        searcher
            .search(&analyze(query), k)
            .into_iter()
            .map(|h| h.doc.index())
            .collect()
    }
}

// ---------------------------------------------------------------------------

/// QEPRF: KG-description + PRF query expansion over BM25.
pub struct QeprfMethod<'c> {
    ctx: &'c EvalContext,
    config: QeprfConfig,
}

impl<'c> QeprfMethod<'c> {
    /// Build with default expansion settings.
    pub fn new(ctx: &'c EvalContext) -> Self {
        Self {
            ctx,
            config: QeprfConfig::default(),
        }
    }
}

impl SearchMethod for QeprfMethod<'_> {
    fn name(&self) -> String {
        "QEPRF".to_string()
    }

    fn rank(&self, query: &str, k: usize) -> Vec<usize> {
        let q = Qeprf::new(
            &self.ctx.world.graph,
            &self.ctx.label_index,
            &self.ctx.bow_index,
            &self.ctx.doc_terms,
            self.config.clone(),
        );
        q.search(query, k).into_iter().map(|h| h.doc.index()).collect()
    }
}

// ---------------------------------------------------------------------------

/// Doc2Vec substitute: random-indexing embeddings trained on the train
/// split, brute-force cosine ranking.
pub struct Doc2VecMethod {
    model: Doc2Vec,
    doc_vectors: Vec<Vec<f32>>,
}

impl Doc2VecMethod {
    /// Train on the fixture's training split and embed every document.
    pub fn new(ctx: &EvalContext) -> Self {
        let model = Doc2Vec::train(&ctx.train_terms(), Doc2VecConfig::default());
        let doc_vectors = ctx.doc_terms.iter().map(|t| model.embed(t)).collect();
        Self { model, doc_vectors }
    }
}

impl SearchMethod for Doc2VecMethod {
    fn name(&self) -> String {
        "Doc2Vec".to_string()
    }

    fn rank(&self, query: &str, k: usize) -> Vec<usize> {
        let qv = self.model.embed(&analyze(query));
        rank_by_cosine(&self.doc_vectors, &qv, k)
    }
}

// ---------------------------------------------------------------------------

/// SBERT substitute: pretrained-style SIF-pooled sentence vectors.
pub struct SbertMethod {
    embedder: SbertEmbedder,
    doc_vectors: Vec<Vec<f32>>,
}

impl SbertMethod {
    /// Embed every document with the corpus-independent embedder.
    pub fn new(ctx: &EvalContext) -> Self {
        let embedder = SbertEmbedder::new(256, 0x5BE7);
        let doc_vectors = ctx.texts.iter().map(|t| embedder.embed(t)).collect();
        Self {
            embedder,
            doc_vectors,
        }
    }
}

impl SearchMethod for SbertMethod {
    fn name(&self) -> String {
        "SBERT".to_string()
    }

    fn rank(&self, query: &str, k: usize) -> Vec<usize> {
        let qv = self.embedder.embed(query);
        rank_by_cosine(&self.doc_vectors, &qv, k)
    }
}

// ---------------------------------------------------------------------------

/// LDA: collapsed-Gibbs topic mixtures, cosine over θ.
pub struct LdaMethod {
    model: Lda,
    doc_thetas: Vec<Vec<f64>>,
}

impl LdaMethod {
    /// Train on the training split and infer θ for every document.
    pub fn new(ctx: &EvalContext) -> Self {
        let model = Lda::train(&ctx.train_terms(), LdaConfig::default());
        let doc_thetas = ctx.doc_terms.iter().map(|t| model.infer(t)).collect();
        Self { model, doc_thetas }
    }
}

impl SearchMethod for LdaMethod {
    fn name(&self) -> String {
        "LDA".to_string()
    }

    fn rank(&self, query: &str, k: usize) -> Vec<usize> {
        let q = self.model.infer(&analyze(query));
        let mut topk = TopK::new(k);
        for (i, theta) in self.doc_thetas.iter().enumerate() {
            let s = Lda::similarity(&q, theta);
            if s > 0.0 {
                topk.push(s, i);
            }
        }
        topk.into_sorted().into_iter().map(|(_, i)| i).collect()
    }
}

// ---------------------------------------------------------------------------

/// NewsLink(β), optionally with the TreeEmb model (the paper's
/// `TreeEmb(β)` rows of Table VII).
pub struct NewsLinkMethod<'c> {
    ctx: &'c EvalContext,
    config: NewsLinkConfig,
    index: NewsLinkIndex,
}

impl<'c> NewsLinkMethod<'c> {
    /// Embed and index the fixture's corpus under `model` with weight β.
    pub fn new(ctx: &'c EvalContext, beta: f64, model: EmbeddingModel) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let config = NewsLinkConfig::default()
            .with_beta(beta)
            .with_model(model)
            .with_threads(threads);
        Self::with_config(ctx, config)
    }

    /// Embed and index under an explicit configuration (used by ablation
    /// benches, e.g. the `single_path` width ablation).
    pub fn with_config(ctx: &'c EvalContext, config: NewsLinkConfig) -> Self {
        let index = newslink_core::index_corpus(
            &ctx.world.graph,
            &ctx.label_index,
            &config,
            &ctx.texts,
        );
        Self { ctx, config, index }
    }

    /// The built index (reused by timing experiments).
    pub fn index(&self) -> &NewsLinkIndex {
        &self.index
    }

    /// The configuration in use.
    pub fn config(&self) -> &NewsLinkConfig {
        &self.config
    }
}

impl SearchMethod for NewsLinkMethod<'_> {
    fn name(&self) -> String {
        match self.config.model {
            EmbeddingModel::Lcag => format!("NewsLink({})", self.config.beta),
            EmbeddingModel::Tree => format!("TreeEmb({})", self.config.beta),
        }
    }

    fn rank(&self, query: &str, k: usize) -> Vec<usize> {
        let outcome = newslink_core::search(
            &self.ctx.world.graph,
            &self.ctx.label_index,
            &self.config,
            &self.index,
            query,
            k,
        );
        outcome.results.into_iter().map(|r| r.doc.index()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{EvalContext, EvalScale};
    use newslink_corpus::{CorpusFlavor, QueryStrategy};

    fn ctx() -> EvalContext {
        EvalContext::build(CorpusFlavor::CnnLike, EvalScale::Tiny, 13)
    }

    #[test]
    fn all_methods_return_bounded_ranked_lists() {
        let ctx = ctx();
        let q = &ctx.queries(QueryStrategy::LargestEntityDensity)[0];
        let methods: Vec<Box<dyn SearchMethod>> = vec![
            Box::new(LuceneMethod::new(&ctx)),
            Box::new(QeprfMethod::new(&ctx)),
            Box::new(SbertMethod::new(&ctx)),
        ];
        for m in &methods {
            let r = m.rank(&q.query, 5);
            assert!(r.len() <= 5, "{}", m.name());
            assert!(r.iter().all(|&d| d < ctx.corpus.len()), "{}", m.name());
            // no duplicates
            let set: std::collections::HashSet<_> = r.iter().collect();
            assert_eq!(set.len(), r.len(), "{}", m.name());
        }
    }

    #[test]
    fn lucene_recovers_exact_text() {
        let ctx = ctx();
        let q = &ctx.queries(QueryStrategy::LargestEntityDensity)[0];
        let lucene = LuceneMethod::new(&ctx);
        let r = lucene.rank(&q.query, 5);
        assert!(
            r.contains(&q.doc),
            "BM25 should recover the source of its own sentence"
        );
    }

    #[test]
    fn newslink_method_names() {
        let ctx = ctx();
        let nl = NewsLinkMethod::new(&ctx, 0.2, EmbeddingModel::Lcag);
        assert_eq!(nl.name(), "NewsLink(0.2)");
        assert!(nl.index().doc_count() == ctx.corpus.len());
        let te = NewsLinkMethod::new(&ctx, 1.0, EmbeddingModel::Tree);
        assert_eq!(te.name(), "TreeEmb(1)");
    }

    #[test]
    fn newslink_ranks_reasonably() {
        let ctx = ctx();
        let q = &ctx.queries(QueryStrategy::LargestEntityDensity)[0];
        let nl = NewsLinkMethod::new(&ctx, 0.2, EmbeddingModel::Lcag);
        let r = nl.rank(&q.query, 5);
        assert!(!r.is_empty());
        assert!(r.contains(&q.doc), "blended search should recover source");
    }

    #[test]
    fn trained_methods_build() {
        let ctx = ctx();
        let d2v = Doc2VecMethod::new(&ctx);
        let lda = LdaMethod::new(&ctx);
        let q = &ctx.queries(QueryStrategy::Random)[0];
        assert!(d2v.rank(&q.query, 3).len() <= 3);
        assert!(lda.rank(&q.query, 3).len() <= 3);
        assert_eq!(d2v.name(), "Doc2Vec");
        assert_eq!(lda.name(), "LDA");
    }
}
