//! Paper-style table rendering for experiment reports.

use crate::runner::{EmbeddingTiming, MatchingRatio, MethodScores, QueryTiming};
use crate::user_study::UserStudyResult;

/// `(metric name, density value, random value)` cells for one method.
type MergedCells = Vec<(String, f64, f64)>;

/// Pair up density/random rows of the same method:
/// the paper prints `density/random` in one cell.
fn merged_rows(scores: &[MethodScores]) -> Vec<(String, MergedCells)> {
    let mut out: Vec<(String, MergedCells)> = Vec::new();
    for s in scores.iter().filter(|s| s.strategy == "density") {
        let partner = scores
            .iter()
            .find(|r| r.method == s.method && r.strategy == "random");
        let mut cells = Vec::new();
        for (i, &(k, v)) in s.sim.iter().enumerate() {
            let rv = partner.map(|p| p.sim[i].1).unwrap_or(f64::NAN);
            cells.push((format!("SIM@{k}"), v, rv));
        }
        for (i, &(k, v)) in s.hit.iter().enumerate() {
            let rv = partner.map(|p| p.hit[i].1).unwrap_or(f64::NAN);
            cells.push((format!("HIT@{k}"), v, rv));
        }
        out.push((s.method.clone(), cells));
    }
    out
}

/// Render a Table IV / VII style block for one corpus.
pub fn render_scores(title: &str, scores: &[MethodScores]) -> String {
    let rows = merged_rows(scores);
    let mut out = String::new();
    out.push_str(&format!("== {title} (cells: density/random) ==\n"));
    if rows.is_empty() {
        out.push_str("(no rows)\n");
        return out;
    }
    // Header.
    out.push_str(&format!("{:<16}", "method"));
    for (name, _, _) in &rows[0].1 {
        out.push_str(&format!(" {name:>12}"));
    }
    out.push('\n');
    for (method, cells) in &rows {
        out.push_str(&format!("{method:<16}"));
        for (_, d, r) in cells {
            out.push_str(&format!(" {:>5.3}/{:<5.3}", d, r));
        }
        out.push('\n');
    }
    out
}

/// Render Table V.
pub fn render_matching(rows: &[MatchingRatio]) -> String {
    let mut out = String::from("== Table V: average entity matching ratio ==\n");
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:>7.2}%  ({} test queries)\n",
            r.corpus,
            r.ratio * 100.0,
            r.queries
        ));
    }
    out
}

/// Render Table VIII.
pub fn render_query_timing(rows: &[QueryTiming]) -> String {
    let mut out = String::from(
        "== Table VIII: query processing time per component (ms/query) ==\n",
    );
    out.push_str(&format!(
        "{:<8} {:>10} {:>10} {:>10}\n",
        "corpus", "NLP", "NE", "NS"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:>10.3} {:>10.3} {:>10.3}   ({} queries)\n",
            r.corpus, r.nlp_ms, r.ne_ms, r.ns_ms, r.queries
        ));
    }
    out
}

/// Render Figure 7.
pub fn render_embed_timing(rows: &[EmbeddingTiming]) -> String {
    let mut out =
        String::from("== Figure 7: average embedding time per news document (ms/doc) ==\n");
    for r in rows {
        for (model, nlp, ne) in &r.rows {
            out.push_str(&format!(
                "{:<8} {:<10} NLP {:>8.3}  NE {:>8.3}\n",
                r.corpus, model, nlp, ne
            ));
        }
    }
    out
}

/// Render Figure 5 as a text bar chart.
pub fn render_user_study(r: &UserStudyResult) -> String {
    let total = (r.helpful + r.neutral + r.not_helpful).max(1);
    let bar = |n: usize| "#".repeat(n * 40 / total);
    format!(
        "== Figure 5: simulated user study ({} participants x {} pairs) ==\n\
         helpful     {:>4} {}\n\
         neutral     {:>4} {}\n\
         not helpful {:>4} {}\n\
         helpful fraction: {:.1}%\n",
        r.participants,
        r.pairs.len(),
        r.helpful,
        bar(r.helpful),
        r.neutral,
        bar(r.neutral),
        r.not_helpful,
        bar(r.not_helpful),
        r.helpful_fraction() * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scores() -> Vec<MethodScores> {
        vec![
            MethodScores {
                method: "Lucene".into(),
                strategy: "density".into(),
                sim: vec![(5, 0.964), (10, 0.958), (20, 0.954)],
                hit: vec![(1, 0.807), (5, 0.917)],
            },
            MethodScores {
                method: "Lucene".into(),
                strategy: "random".into(),
                sim: vec![(5, 0.953), (10, 0.947), (20, 0.941)],
                hit: vec![(1, 0.806), (5, 0.926)],
            },
        ]
    }

    #[test]
    fn render_scores_merges_strategies() {
        let s = render_scores("CNN", &scores());
        assert!(s.contains("Lucene"));
        assert!(s.contains("SIM@5"));
        assert!(s.contains("HIT@1"));
        assert!(s.contains("0.964/0.953"));
    }

    #[test]
    fn render_scores_empty() {
        assert!(render_scores("x", &[]).contains("no rows"));
    }

    #[test]
    fn render_matching_formats_percent() {
        let s = render_matching(&[MatchingRatio {
            corpus: "CNN".into(),
            ratio: 0.9754,
            queries: 100,
        }]);
        assert!(s.contains("97.54%"));
    }

    #[test]
    fn render_user_study_shows_fraction() {
        let r = UserStudyResult {
            pairs: vec![],
            participants: 20,
            helpful: 120,
            neutral: 50,
            not_helpful: 30,
        };
        let s = render_user_study(&r);
        assert!(s.contains("60.0%"));
        assert!(s.contains("helpful"));
    }

    #[test]
    fn render_timings() {
        let s = render_query_timing(&[QueryTiming {
            corpus: "CNN".into(),
            nlp_ms: 0.5,
            ne_ms: 12.0,
            ns_ms: 1.25,
            queries: 50,
        }]);
        assert!(s.contains("12.000"));
        let s = render_embed_timing(&[EmbeddingTiming {
            corpus: "CNN".into(),
            rows: vec![("NewsLink".into(), 0.4, 9.0)],
        }]);
        assert!(s.contains("NewsLink"));
    }
}
