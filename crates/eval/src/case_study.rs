//! Case study (Figure 6, Tables I/II/VI): a fully worked query/result
//! pair with its subgraph embeddings and rendered relationship paths.

use std::fmt;

use serde::Serialize;

use newslink_core::{EmbeddingModel, NewsLinkConfig};
use newslink_corpus::QueryStrategy;
use newslink_embed::{overlap_to_dot, relationship_paths};
use newslink_nlp::NlpPipeline;

use crate::context::EvalContext;

/// The rendered case study.
#[derive(Debug, Clone, Serialize)]
pub struct CaseStudy {
    /// The partial query text.
    pub query: String,
    /// Full text of the retrieved result.
    pub result: String,
    /// Entities matched in both texts (Table I column 3).
    pub matched_entities: Vec<String>,
    /// Entities identified in the texts but resolved only through the KG
    /// (Table I column 4 analog: present in one text, absent in the other).
    pub unmatched_entities: Vec<String>,
    /// Induced entities: embedding nodes mentioned in neither text
    /// (Table I column 5 — e.g. *Khyber* in the paper's example).
    pub induced_entities: Vec<String>,
    /// Rendered relationship paths (Tables II / VI).
    pub paths: Vec<String>,
    /// Graphviz DOT of the two embeddings with overlap coloring (the
    /// Figure 6 picture; render with `dot -Tsvg`).
    pub dot: String,
}

impl fmt::Display for CaseStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "QUERY   : {}", self.query)?;
        writeln!(f, "RESULT  : {}", self.result)?;
        writeln!(f, "matched : {}", self.matched_entities.join(", "))?;
        writeln!(f, "unmatched: {}", self.unmatched_entities.join(", "))?;
        writeln!(f, "induced : {}", self.induced_entities.join(", "))?;
        writeln!(f, "relationship paths:")?;
        for p in &self.paths {
            writeln!(f, "  {p}")?;
        }
        Ok(())
    }
}

/// Run the case study: retrieve with embeddings only (β = 1, as in
/// §VII-E) and explain the top non-self result. Returns `None` when no
/// query produces an explained result (tiny corpora).
pub fn run_case_study(ctx: &EvalContext) -> Option<CaseStudy> {
    let config = NewsLinkConfig::default()
        .with_beta(1.0)
        .with_model(EmbeddingModel::Lcag)
        .with_threads(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        );
    let index =
        newslink_core::index_corpus(&ctx.world.graph, &ctx.label_index, &config, &ctx.texts);
    let nlp = NlpPipeline::new(&ctx.world.graph, &ctx.label_index);

    for case in ctx.queries(QueryStrategy::LargestEntityDensity) {
        let outcome = newslink_core::search(
            &ctx.world.graph,
            &ctx.label_index,
            &config,
            &index,
            &case.query,
            5,
        );
        let Some(hit) = outcome.results.iter().find(|r| r.doc.index() != case.doc) else {
            continue;
        };
        let result_doc = hit.doc.index();
        let result_embedding = index.embedding(hit.doc).expect("live build-time doc");
        let paths = relationship_paths(&outcome.embedding, result_embedding, 6, 8);
        if paths.is_empty() {
            continue;
        }

        // Entity bookkeeping for the Table-I-style columns.
        let qa = nlp.analyze_document(&case.query);
        let ra = nlp.analyze_document(&ctx.texts[result_doc]);
        let q_entities = qa.all_entities();
        let r_entities = ra.all_entities();
        let matched: Vec<String> = q_entities.intersection(&r_entities).cloned().collect();
        let unmatched: Vec<String> = q_entities
            .symmetric_difference(&r_entities)
            .cloned()
            .collect();
        let both_lower =
            format!("{} {}", case.query, ctx.texts[result_doc]).to_lowercase();
        let mut induced: Vec<String> = outcome
            .embedding
            .all_nodes()
            .iter()
            .chain(result_embedding.all_nodes().iter())
            .map(|&n| ctx.world.graph.label(n).to_string())
            .filter(|l| !both_lower.contains(&l.to_lowercase()))
            .collect();
        induced.sort();
        induced.dedup();

        return Some(CaseStudy {
            query: case.query.clone(),
            result: ctx.texts[result_doc].clone(),
            matched_entities: matched,
            unmatched_entities: unmatched,
            induced_entities: induced,
            paths: paths
                .iter()
                .map(|p| p.render(&ctx.world.graph))
                .collect(),
            dot: overlap_to_dot(
                &ctx.world.graph,
                &outcome.embedding,
                result_embedding,
                "figure6",
            ),
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::EvalScale;
    use newslink_corpus::CorpusFlavor;

    #[test]
    fn case_study_produces_paths_and_entities() {
        let ctx = EvalContext::build(CorpusFlavor::CnnLike, EvalScale::Tiny, 41);
        let cs = run_case_study(&ctx).expect("tiny corpus should yield a case");
        assert!(!cs.paths.is_empty());
        assert!(!cs.query.is_empty());
        assert!(!cs.result.is_empty());
        // Paths render with direction arrows.
        assert!(cs.paths.iter().any(|p| p.contains('→') || p.contains('←')));
        let display = cs.to_string();
        assert!(display.contains("relationship paths"));
        assert!(cs.dot.starts_with("digraph"));
        assert!(cs.dot.contains("->"));
    }
}
