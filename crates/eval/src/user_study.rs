//! Simulated user study (Figure 5; DESIGN.md §6.7).
//!
//! The paper showed 20 human participants ten query/result pairs retrieved
//! with subgraph embeddings only (β = 1) and asked whether the embedding
//! information helps understand the stories' relatedness. Participants are
//! unavailable offline, so we simulate a panel whose *failure modes are
//! exactly the three the paper's participants reported*:
//!
//! 1. the participant already knows the connection → not helped;
//! 2. the embedding adds nothing beyond the text → not helpful;
//! 3. the embedding is too large → overload, not helpful.
//!
//! Each simulated participant draws personal thresholds from a seeded RNG;
//! each pair contributes features (relationship-path count, novel induced
//! entities, embedding size) computed from the real retrieval pipeline.

use serde::Serialize;

use newslink_core::{EmbeddingModel, NewsLinkConfig};
use newslink_corpus::QueryStrategy;
use newslink_embed::relationship_paths;
use newslink_util::DetRng;

use crate::context::EvalContext;

/// A participant's answer for one pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Verdict {
    /// The embedding helped understand the relatedness.
    Helpful,
    /// Indifferent.
    Neutral,
    /// Actively unhelpful (redundant or overwhelming).
    NotHelpful,
}

/// Features of one query/result pair shown to the panel.
#[derive(Debug, Clone, Serialize)]
pub struct PairFeatures {
    /// Corpus doc index of the query document.
    pub query_doc: usize,
    /// Corpus doc index of the top result.
    pub result_doc: usize,
    /// Number of relationship paths linking the two embeddings.
    pub path_count: usize,
    /// Induced entities (embedding nodes not mentioned in either text).
    pub novel_entities: usize,
    /// Total nodes across both embeddings.
    pub embedding_size: usize,
}

/// Aggregated study outcome.
#[derive(Debug, Clone, Serialize)]
pub struct UserStudyResult {
    /// Pair features shown.
    pub pairs: Vec<PairFeatures>,
    /// Panel size.
    pub participants: usize,
    /// Total Helpful votes.
    pub helpful: usize,
    /// Total Neutral votes.
    pub neutral: usize,
    /// Total NotHelpful votes.
    pub not_helpful: usize,
}

impl UserStudyResult {
    /// Fraction of votes that were Helpful.
    pub fn helpful_fraction(&self) -> f64 {
        let total = self.helpful + self.neutral + self.not_helpful;
        if total == 0 {
            0.0
        } else {
            self.helpful as f64 / total as f64
        }
    }
}

/// One simulated participant's private thresholds.
struct Participant {
    /// Probability they already know the connection (failure mode 1).
    knows_prob: f64,
    /// Minimum novel entities demanded (failure mode 2).
    novelty_need: usize,
    /// Embedding size above which they feel overloaded (failure mode 3).
    overload_at: usize,
}

impl Participant {
    fn draw(rng: &mut DetRng) -> Self {
        Self {
            knows_prob: 0.05 + 0.25 * rng.unit(),
            novelty_need: 1 + rng.below(2),
            overload_at: 40 + rng.below(60),
        }
    }

    fn judge(&self, rng: &mut DetRng, pair: &PairFeatures) -> Verdict {
        if rng.chance(self.knows_prob) {
            // Already knew the connection — extra information is noise.
            return Verdict::Neutral;
        }
        if pair.embedding_size > self.overload_at {
            return Verdict::NotHelpful;
        }
        if pair.novel_entities < self.novelty_need {
            // Everything shown was already in the text.
            return Verdict::NotHelpful;
        }
        if pair.path_count >= 1 {
            Verdict::Helpful
        } else {
            Verdict::Neutral
        }
    }
}

/// Build pair features with the β = 1 retrieval pipeline (as in §VII-D).
pub fn build_pairs(ctx: &EvalContext, n_pairs: usize) -> Vec<PairFeatures> {
    let config = NewsLinkConfig::default()
        .with_beta(1.0)
        .with_model(EmbeddingModel::Lcag)
        .with_threads(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        );
    let index =
        newslink_core::index_corpus(&ctx.world.graph, &ctx.label_index, &config, &ctx.texts);
    let mut pairs = Vec::new();
    for case in ctx.queries(QueryStrategy::LargestEntityDensity) {
        if pairs.len() == n_pairs {
            break;
        }
        let outcome = newslink_core::search(
            &ctx.world.graph,
            &ctx.label_index,
            &config,
            &index,
            &case.query,
            5,
        );
        // Top result that is not the query's own document.
        let Some(hit) = outcome.results.iter().find(|r| r.doc.index() != case.doc) else {
            continue;
        };
        let result_doc = hit.doc.index();
        let result_embedding = index.embedding(hit.doc).expect("live build-time doc");
        let query_embedding = index
            .embedding(newslink_text::DocId(case.doc as u32))
            .expect("live build-time doc");
        let paths = relationship_paths(query_embedding, result_embedding, 6, 50);
        let both_texts = format!("{} {}", ctx.texts[case.doc], ctx.texts[result_doc]);
        let lower = both_texts.to_lowercase();
        let mut novel = 0usize;
        let mut size = 0usize;
        for &node in query_embedding
            .all_nodes()
            .iter()
            .chain(result_embedding.all_nodes().iter())
        {
            size += 1;
            let label = ctx.world.graph.label(node).to_lowercase();
            if !lower.contains(&label) {
                novel += 1;
            }
        }
        pairs.push(PairFeatures {
            query_doc: case.doc,
            result_doc,
            path_count: paths.len(),
            novel_entities: novel,
            embedding_size: size,
        });
    }
    pairs
}

/// Run the full simulated study.
pub fn run_user_study(
    ctx: &EvalContext,
    n_pairs: usize,
    participants: usize,
    seed: u64,
) -> UserStudyResult {
    let pairs = build_pairs(ctx, n_pairs);
    let mut rng = DetRng::new(seed);
    let mut helpful = 0;
    let mut neutral = 0;
    let mut not_helpful = 0;
    for _ in 0..participants {
        let p = Participant::draw(&mut rng);
        for pair in &pairs {
            match p.judge(&mut rng, pair) {
                Verdict::Helpful => helpful += 1,
                Verdict::Neutral => neutral += 1,
                Verdict::NotHelpful => not_helpful += 1,
            }
        }
    }
    UserStudyResult {
        pairs,
        participants,
        helpful,
        neutral,
        not_helpful,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::EvalScale;
    use newslink_corpus::CorpusFlavor;

    fn ctx() -> EvalContext {
        EvalContext::build(CorpusFlavor::CnnLike, EvalScale::Tiny, 31)
    }

    #[test]
    fn pairs_have_real_retrieval_features() {
        let ctx = ctx();
        let pairs = build_pairs(&ctx, 5);
        assert!(!pairs.is_empty());
        for p in &pairs {
            assert_ne!(p.query_doc, p.result_doc);
            assert!(p.embedding_size > 0);
        }
    }

    #[test]
    fn study_is_deterministic() {
        let ctx = ctx();
        let a = run_user_study(&ctx, 5, 10, 77);
        let b = run_user_study(&ctx, 5, 10, 77);
        assert_eq!(a.helpful, b.helpful);
        assert_eq!(a.neutral, b.neutral);
        assert_eq!(a.not_helpful, b.not_helpful);
    }

    #[test]
    fn majority_finds_embeddings_helpful() {
        // The paper's headline: "more than half participants think the
        // subgraph embeddings are helpful".
        let ctx = ctx();
        let r = run_user_study(&ctx, 10, 20, 5);
        assert!(
            r.helpful_fraction() > 0.5,
            "helpful fraction {} (h={} n={} nh={})",
            r.helpful_fraction(),
            r.helpful,
            r.neutral,
            r.not_helpful
        );
        // And the failure modes exist: not everyone is helped.
        assert!(r.neutral + r.not_helpful > 0);
    }

    #[test]
    fn vote_totals_add_up() {
        let ctx = ctx();
        let r = run_user_study(&ctx, 4, 7, 3);
        assert_eq!(
            r.helpful + r.neutral + r.not_helpful,
            r.pairs.len() * r.participants
        );
    }
}
