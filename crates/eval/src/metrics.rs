//! Evaluation metrics: SIM@k and HIT@k (§VII-B).
//!
//! SIM@k averages, over test cases and over the top-k results, the cosine
//! similarity between the *full query document* and each result document
//! in the judge (FastText-substitute) embedding space. HIT@k is the
//! fraction of test queries whose own source document appears in the
//! top-k.

use newslink_baselines::vector::cosine;
use newslink_baselines::FastTextEmbedder;

/// One evaluated query: the source document index and the ranked result
/// document indices a method returned.
#[derive(Debug, Clone)]
pub struct RankedCase {
    /// Index of the query's source document in the corpus.
    pub query_doc: usize,
    /// Ranked result document indices (best first).
    pub results: Vec<usize>,
}

/// SIM@k over a set of cases.
///
/// `doc_vectors[d]` must hold the judge embedding of document `d`'s full
/// text. Queries with fewer than `k` results average over what they have;
/// queries with no results contribute 0 (a method that returns nothing is
/// maximally unhelpful, matching the paper's averaging over all test
/// cases).
pub fn sim_at_k(cases: &[RankedCase], doc_vectors: &[Vec<f32>], k: usize) -> f64 {
    if cases.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for case in cases {
        let q = &doc_vectors[case.query_doc];
        let top = &case.results[..case.results.len().min(k)];
        if top.is_empty() {
            continue;
        }
        let s: f64 = top.iter().map(|&r| cosine(q, &doc_vectors[r])).sum();
        total += s / top.len() as f64;
    }
    total / cases.len() as f64
}

/// HIT@k over a set of cases.
pub fn hit_at_k(cases: &[RankedCase], k: usize) -> f64 {
    if cases.is_empty() {
        return 0.0;
    }
    let hits = cases
        .iter()
        .filter(|c| c.results.iter().take(k).any(|&r| r == c.query_doc))
        .count();
    hits as f64 / cases.len() as f64
}

/// Precompute judge embeddings for every document text.
pub fn judge_vectors(judge: &FastTextEmbedder, texts: &[String]) -> Vec<Vec<f32>> {
    texts.iter().map(|t| judge.embed(t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vectors() -> Vec<Vec<f32>> {
        vec![
            vec![1.0, 0.0],  // 0
            vec![1.0, 0.0],  // 1 — identical to 0
            vec![0.0, 1.0],  // 2 — orthogonal to 0
            vec![0.7, 0.7],  // 3 — diagonal
        ]
    }

    #[test]
    fn hit_at_k_counts_self_recovery() {
        let cases = vec![
            RankedCase { query_doc: 0, results: vec![0, 2] },
            RankedCase { query_doc: 1, results: vec![2, 1] },
            RankedCase { query_doc: 2, results: vec![0, 1] },
        ];
        assert!((hit_at_k(&cases, 1) - 1.0 / 3.0).abs() < 1e-12);
        assert!((hit_at_k(&cases, 2) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sim_at_k_averages_cosines() {
        let v = vectors();
        let cases = vec![RankedCase { query_doc: 0, results: vec![1, 2] }];
        // cos(0,1)=1, cos(0,2)=0 → SIM@2 = 0.5
        assert!((sim_at_k(&cases, &v, 2) - 0.5).abs() < 1e-9);
        // SIM@1 = 1.0
        assert!((sim_at_k(&cases, &v, 1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fewer_results_than_k_average_over_available() {
        let v = vectors();
        let cases = vec![RankedCase { query_doc: 0, results: vec![1] }];
        assert!((sim_at_k(&cases, &v, 10) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_results_contribute_zero() {
        let v = vectors();
        let cases = vec![
            RankedCase { query_doc: 0, results: vec![] },
            RankedCase { query_doc: 0, results: vec![0] },
        ];
        assert!((sim_at_k(&cases, &v, 5) - 0.5).abs() < 1e-9);
        assert_eq!(hit_at_k(&cases, 5), 0.5);
    }

    #[test]
    fn empty_cases_are_zero() {
        assert_eq!(sim_at_k(&[], &[], 5), 0.0);
        assert_eq!(hit_at_k(&[], 5), 0.0);
    }

    #[test]
    fn judge_vectors_embed_all_texts() {
        let judge = FastTextEmbedder::new(64, 1);
        let texts = vec!["one story".to_string(), "another story".to_string()];
        let vs = judge_vectors(&judge, &texts);
        assert_eq!(vs.len(), 2);
        assert_eq!(vs[0].len(), 64);
    }
}
