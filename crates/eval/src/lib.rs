//! Evaluation harness: reproduces every table and figure of the paper's
//! experiment section (§VII).
//!
//! - [`context`] — the pinned fixture (world, corpus, split, text index);
//! - [`metrics`] — SIM@k / HIT@k under the FastText-substitute judge;
//! - [`methods`] — all Table IV / VII competitors behind one trait;
//! - [`runner`] — per-table experiment runners;
//! - [`user_study`] — the simulated panel of Figure 5;
//! - [`case_study`] — the worked example of Figure 6 / Tables I, II, VI;
//! - [`tables`] — paper-style text rendering.

#![deny(unsafe_code)]

pub mod case_study;
pub mod context;
pub mod methods;
pub mod metrics;
pub mod report;
pub mod runner;
pub mod significance;
pub mod tables;
pub mod user_study;

pub use case_study::{run_case_study, CaseStudy};
pub use context::{EvalContext, EvalScale, QueryCase};
pub use methods::{
    Doc2VecMethod, LdaMethod, LuceneMethod, NewsLinkMethod, QeprfMethod, SbertMethod,
    SearchMethod,
};
pub use metrics::{hit_at_k, judge_vectors, sim_at_k, RankedCase};
pub use report::{maybe_report, report_dir, write_report};
pub use significance::{compare_hit_at_k, hit_indicators, paired_bootstrap, BootstrapResult};
pub use runner::{
    evaluate_method, judge, run_fig7, run_table_iv, run_table_v, run_table_vii, run_table_viii,
    EmbeddingTiming, MatchingRatio, MethodScores, QueryTiming, HIT_KS, SIM_KS,
};
pub use tables::{
    render_embed_timing, render_matching, render_query_timing, render_scores, render_user_study,
};
pub use user_study::{build_pairs, run_user_study, PairFeatures, UserStudyResult, Verdict};
