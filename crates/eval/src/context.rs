//! The shared evaluation fixture: world + corpus + splits + text index.
//!
//! Every experiment (Tables IV, V, VII, VIII; Figures 5–7) runs against an
//! [`EvalContext`], which pins one synthetic world, one generated corpus,
//! the 80/10/10 split, the analyzed term streams, and the BM25 text index
//! over the *whole* corpus (the paper queries "the entire news corpus").

use newslink_corpus::{
    generate_corpus, select_query, Corpus, CorpusConfig, CorpusFlavor, QueryStrategy, Split,
};
use newslink_kg::{synth, LabelIndex, SynthConfig, SynthWorld};
use newslink_nlp::{analyze, NlpPipeline};
use newslink_text::{IndexBuilder, InvertedIndex};
use newslink_util::DetRng;

/// One evaluation query: the source test document and the query sentence
/// extracted from it.
#[derive(Debug, Clone)]
pub struct QueryCase {
    /// Corpus index of the source document.
    pub doc: usize,
    /// The (partial) query text.
    pub query: String,
}

/// Scale of an evaluation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalScale {
    /// Tiny: unit-test sized (small world, ~80 docs).
    Tiny,
    /// Default bench scale (medium world, ~600 docs per corpus).
    Small,
    /// Fuller run (medium world, ~2400 docs).
    Medium,
    /// Stress scale (large world, ~12000 docs).
    Large,
}

impl EvalScale {
    /// Parse from the `NEWSLINK_SCALE` environment variable.
    pub fn from_env() -> Self {
        match std::env::var("NEWSLINK_SCALE").as_deref() {
            Ok("tiny") => EvalScale::Tiny,
            Ok("medium") => EvalScale::Medium,
            Ok("large") => EvalScale::Large,
            _ => EvalScale::Small,
        }
    }

    /// World configuration for this scale.
    pub fn world_config(self, seed: u64) -> SynthConfig {
        match self {
            EvalScale::Tiny => SynthConfig::small(seed),
            EvalScale::Small | EvalScale::Medium => SynthConfig::medium(seed),
            EvalScale::Large => SynthConfig::large(seed),
        }
    }

    /// Documents per corpus for this scale.
    pub fn documents(self) -> usize {
        match self {
            EvalScale::Tiny => 80,
            EvalScale::Small => 600,
            EvalScale::Medium => 2400,
            EvalScale::Large => 12_000,
        }
    }
}

/// The pinned evaluation fixture.
pub struct EvalContext {
    /// The synthetic world (graph + registers).
    pub world: SynthWorld,
    /// Label index over the world graph.
    pub label_index: LabelIndex,
    /// The generated corpus.
    pub corpus: Corpus,
    /// The 80/10/10 split.
    pub split: Split,
    /// Full document texts (aligned with corpus doc ids).
    pub texts: Vec<String>,
    /// Analyzed BOW term streams per document.
    pub doc_terms: Vec<Vec<String>>,
    /// BM25 text index over the whole corpus (the Lucene substitute).
    pub bow_index: InvertedIndex,
    /// The master seed.
    pub seed: u64,
}

impl EvalContext {
    /// Build a fixture for `flavor` at `scale` with `seed`.
    pub fn build(flavor: CorpusFlavor, scale: EvalScale, seed: u64) -> Self {
        let world = synth::generate(&scale.world_config(seed));
        let label_index = LabelIndex::build(&world.graph);
        let corpus = generate_corpus(
            &world,
            &CorpusConfig::new(seed ^ 0xC0_FF_EE, scale.documents(), flavor),
        );
        let split = Split::new(corpus.len(), seed ^ 0x5311);
        let texts: Vec<String> = corpus.docs.iter().map(|d| d.text.clone()).collect();
        let doc_terms: Vec<Vec<String>> = texts.iter().map(|t| analyze(t)).collect();
        let mut ib = IndexBuilder::new();
        for t in &doc_terms {
            ib.add_document(t);
        }
        Self {
            world,
            label_index,
            corpus,
            split,
            texts,
            doc_terms,
            bow_index: ib.build(),
            seed,
        }
    }

    /// Term streams of the training split (for trainable baselines).
    pub fn train_terms(&self) -> Vec<Vec<String>> {
        self.split
            .train
            .iter()
            .map(|&i| self.doc_terms[i].clone())
            .collect()
    }

    /// Build the evaluation query set from the test split.
    pub fn queries(&self, strategy: QueryStrategy) -> Vec<QueryCase> {
        let nlp = NlpPipeline::new(&self.world.graph, &self.label_index);
        let mut rng = DetRng::new(self.seed ^ 0x9E_AB_12);
        let mut out = Vec::new();
        for &doc in &self.split.test {
            let analysis = nlp.analyze_document(&self.texts[doc]);
            if let Some(query) = select_query(&analysis, strategy, &mut rng) {
                out.push(QueryCase { doc, query });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> EvalContext {
        EvalContext::build(CorpusFlavor::CnnLike, EvalScale::Tiny, 7)
    }

    #[test]
    fn fixture_is_internally_consistent() {
        let ctx = tiny();
        assert_eq!(ctx.corpus.len(), 80);
        assert_eq!(ctx.texts.len(), 80);
        assert_eq!(ctx.doc_terms.len(), 80);
        assert_eq!(ctx.bow_index.doc_count(), 80);
        assert_eq!(ctx.split.len(), 80);
        assert_eq!(ctx.split.test.len(), 8);
    }

    #[test]
    fn queries_come_from_test_split() {
        let ctx = tiny();
        let qs = ctx.queries(QueryStrategy::LargestEntityDensity);
        assert!(!qs.is_empty());
        for q in &qs {
            assert!(ctx.split.test.contains(&q.doc));
            assert!(!q.query.is_empty());
            assert!(ctx.texts[q.doc].contains(&q.query));
        }
    }

    #[test]
    fn density_and_random_strategies_differ_somewhere() {
        let ctx = tiny();
        let d = ctx.queries(QueryStrategy::LargestEntityDensity);
        let r = ctx.queries(QueryStrategy::Random);
        assert_eq!(d.len(), r.len());
        assert!(
            d.iter().zip(&r).any(|(a, b)| a.query != b.query),
            "strategies should pick different sentences for some doc"
        );
    }

    #[test]
    fn train_terms_match_split() {
        let ctx = tiny();
        assert_eq!(ctx.train_terms().len(), ctx.split.train.len());
    }

    #[test]
    fn scale_from_env_defaults_to_small() {
        // (Does not set the variable to avoid cross-test interference.)
        assert_eq!(EvalScale::Small.documents(), 600);
        assert_eq!(EvalScale::Tiny.documents(), 80);
    }
}
