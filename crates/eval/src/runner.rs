//! Experiment runners: one function per paper table/figure.

use serde::Serialize;

use newslink_baselines::FastTextEmbedder;
use newslink_core::EmbeddingModel;
use newslink_corpus::QueryStrategy;
use newslink_nlp::NlpPipeline;

use crate::context::{EvalContext, QueryCase};
use crate::methods::{
    Doc2VecMethod, LdaMethod, LuceneMethod, NewsLinkMethod, QeprfMethod, SbertMethod,
    SearchMethod,
};
use crate::metrics::{hit_at_k, judge_vectors, sim_at_k, RankedCase};

/// The k values the paper reports.
pub const SIM_KS: [usize; 3] = [5, 10, 20];
/// HIT@k depths of Table IV.
pub const HIT_KS: [usize; 2] = [1, 5];

/// Scores of one method under one query strategy.
#[derive(Debug, Clone, Serialize)]
pub struct MethodScores {
    /// Method display name.
    pub method: String,
    /// Query strategy name (`density` / `random`).
    pub strategy: String,
    /// `(k, SIM@k)` pairs.
    pub sim: Vec<(usize, f64)>,
    /// `(k, HIT@k)` pairs.
    pub hit: Vec<(usize, f64)>,
}

/// Evaluate one method over prepared query cases.
pub fn evaluate_method(
    method: &dyn SearchMethod,
    cases: &[QueryCase],
    strategy: QueryStrategy,
    doc_vectors: &[Vec<f32>],
) -> MethodScores {
    let max_k = SIM_KS.iter().chain(HIT_KS.iter()).copied().max().unwrap_or(5);
    // Queries are independent: fan them out across scoped threads.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(cases.len())
        .max(1);
    let mut ranked: Vec<Option<RankedCase>> = Vec::new();
    ranked.resize_with(cases.len(), || None);
    let chunk = cases.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let mut slots = ranked.as_mut_slice();
        let mut offset = 0usize;
        while offset < cases.len() {
            let take = chunk.min(cases.len() - offset);
            let (head, rest) = slots.split_at_mut(take);
            slots = rest;
            let batch = &cases[offset..offset + take];
            scope.spawn(move || {
                for (slot, c) in head.iter_mut().zip(batch) {
                    *slot = Some(RankedCase {
                        query_doc: c.doc,
                        results: method.rank(&c.query, max_k),
                    });
                }
            });
            offset += take;
        }
    });
    let ranked: Vec<RankedCase> = ranked.into_iter().map(|r| r.expect("ranked")).collect();
    MethodScores {
        method: method.name(),
        strategy: strategy.name().to_string(),
        sim: SIM_KS
            .iter()
            .map(|&k| (k, sim_at_k(&ranked, doc_vectors, k)))
            .collect(),
        hit: HIT_KS.iter().map(|&k| (k, hit_at_k(&ranked, k))).collect(),
    }
}

/// The FastText-substitute judge used by all SIM@k evaluations.
pub fn judge() -> FastTextEmbedder {
    FastTextEmbedder::new(128, 0xFA57)
}

/// Table IV: all six methods, both query strategies, one corpus.
pub fn run_table_iv(ctx: &EvalContext) -> Vec<MethodScores> {
    let judge = judge();
    let vectors = judge_vectors(&judge, &ctx.texts);
    let methods: Vec<Box<dyn SearchMethod + '_>> = vec![
        Box::new(Doc2VecMethod::new(ctx)),
        Box::new(SbertMethod::new(ctx)),
        Box::new(LdaMethod::new(ctx)),
        Box::new(QeprfMethod::new(ctx)),
        Box::new(LuceneMethod::new(ctx)),
        Box::new(NewsLinkMethod::new(ctx, 0.2, EmbeddingModel::Lcag)),
    ];
    let mut out = Vec::new();
    for strategy in [QueryStrategy::LargestEntityDensity, QueryStrategy::Random] {
        let cases = ctx.queries(strategy);
        for m in &methods {
            out.push(evaluate_method(m.as_ref(), &cases, strategy, &vectors));
        }
    }
    out
}

/// Table V: average entity matching ratio per test query.
#[derive(Debug, Clone, Serialize)]
pub struct MatchingRatio {
    /// Corpus name.
    pub corpus: String,
    /// Mean matched/identified ratio over test queries.
    pub ratio: f64,
    /// Number of test queries measured.
    pub queries: usize,
}

/// Compute Table V for one fixture.
pub fn run_table_v(ctx: &EvalContext) -> MatchingRatio {
    let nlp = NlpPipeline::new(&ctx.world.graph, &ctx.label_index);
    let cases = ctx.queries(QueryStrategy::LargestEntityDensity);
    let mut total = 0.0;
    let mut n = 0usize;
    for c in &cases {
        let a = nlp.analyze_document(&c.query);
        if a.stats.identified > 0 {
            total += a.stats.ratio();
            n += 1;
        }
    }
    MatchingRatio {
        corpus: ctx.corpus.flavor.name().to_string(),
        ratio: if n == 0 { 1.0 } else { total / n as f64 },
        queries: n,
    }
}

/// Table VII: NewsLink(β) vs TreeEmb(β) for the paper's β sweep.
pub fn run_table_vii(ctx: &EvalContext, betas: &[f64]) -> Vec<MethodScores> {
    let judge = judge();
    let vectors = judge_vectors(&judge, &ctx.texts);
    let mut out = Vec::new();
    for &model in &[EmbeddingModel::Lcag, EmbeddingModel::Tree] {
        for &beta in betas {
            let method = NewsLinkMethod::new(ctx, beta, model);
            for strategy in [QueryStrategy::LargestEntityDensity, QueryStrategy::Random] {
                let cases = ctx.queries(strategy);
                out.push(evaluate_method(&method, &cases, strategy, &vectors));
            }
        }
    }
    out
}

/// Table VIII: per-component query latency (milliseconds).
#[derive(Debug, Clone, Serialize)]
pub struct QueryTiming {
    /// Corpus name.
    pub corpus: String,
    /// Mean NLP time per query (ms).
    pub nlp_ms: f64,
    /// Mean NE (subgraph embedding) time per query (ms).
    pub ne_ms: f64,
    /// Mean NS (retrieval) time per query (ms).
    pub ns_ms: f64,
    /// Queries measured.
    pub queries: usize,
}

/// Measure Table VIII on a prebuilt NewsLink method.
pub fn run_table_viii(ctx: &EvalContext, method: &NewsLinkMethod<'_>) -> QueryTiming {
    let cases = ctx.queries(QueryStrategy::LargestEntityDensity);
    let mut nlp = 0.0;
    let mut ne = 0.0;
    let mut ns = 0.0;
    for c in &cases {
        let outcome = newslink_core::search(
            &ctx.world.graph,
            &ctx.label_index,
            method.config(),
            method.index(),
            &c.query,
            20,
        );
        nlp += outcome.timer.total("nlp").as_secs_f64() * 1e3;
        ne += outcome.timer.total("ne").as_secs_f64() * 1e3;
        ns += outcome.timer.total("ns").as_secs_f64() * 1e3;
    }
    let n = cases.len().max(1) as f64;
    QueryTiming {
        corpus: ctx.corpus.flavor.name().to_string(),
        nlp_ms: nlp / n,
        ne_ms: ne / n,
        ns_ms: ns / n,
        queries: cases.len(),
    }
}

/// Figure 7: average embedding time per document for both NE models.
#[derive(Debug, Clone, Serialize)]
pub struct EmbeddingTiming {
    /// Corpus name.
    pub corpus: String,
    /// `(model, nlp ms/doc, ne ms/doc)` rows.
    pub rows: Vec<(String, f64, f64)>,
}

/// Measure Figure 7 by re-embedding the corpus under each model.
pub fn run_fig7(ctx: &EvalContext) -> EmbeddingTiming {
    let mut rows = Vec::new();
    for (name, model) in [
        ("NewsLink", EmbeddingModel::Lcag),
        ("TreeEmb", EmbeddingModel::Tree),
    ] {
        let config = newslink_core::NewsLinkConfig::default().with_model(model);
        let index = newslink_core::index_corpus(
            &ctx.world.graph,
            &ctx.label_index,
            &config,
            &ctx.texts,
        );
        let n = ctx.texts.len().max(1) as f64;
        rows.push((
            name.to_string(),
            index.timer.total("nlp").as_secs_f64() * 1e3 / n,
            index.timer.total("ne").as_secs_f64() * 1e3 / n,
        ));
    }
    EmbeddingTiming {
        corpus: ctx.corpus.flavor.name().to_string(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::EvalScale;
    use newslink_corpus::CorpusFlavor;

    fn ctx() -> EvalContext {
        EvalContext::build(CorpusFlavor::CnnLike, EvalScale::Tiny, 21)
    }

    #[test]
    fn evaluate_method_produces_all_metrics() {
        let ctx = ctx();
        let judge = judge();
        let vectors = judge_vectors(&judge, &ctx.texts);
        let cases = ctx.queries(QueryStrategy::LargestEntityDensity);
        let m = LuceneMethod::new(&ctx);
        let s = evaluate_method(&m, &cases, QueryStrategy::LargestEntityDensity, &vectors);
        assert_eq!(s.method, "Lucene");
        assert_eq!(s.sim.len(), 3);
        assert_eq!(s.hit.len(), 2);
        for (_, v) in s.sim.iter().chain(&s.hit) {
            assert!((0.0..=1.0).contains(v), "{v}");
        }
        // HIT@5 >= HIT@1 by construction.
        assert!(s.hit[1].1 >= s.hit[0].1);
    }

    #[test]
    fn lucene_hits_are_high_for_exact_sentences() {
        let ctx = ctx();
        let judge = judge();
        let vectors = judge_vectors(&judge, &ctx.texts);
        let cases = ctx.queries(QueryStrategy::LargestEntityDensity);
        let m = LuceneMethod::new(&ctx);
        let s = evaluate_method(&m, &cases, QueryStrategy::LargestEntityDensity, &vectors);
        assert!(s.hit[1].1 > 0.4, "HIT@5 = {}", s.hit[1].1);
    }

    #[test]
    fn table_v_ratio_is_high_but_imperfect() {
        let ctx = ctx();
        let r = run_table_v(&ctx);
        assert!(r.ratio > 0.5, "ratio {}", r.ratio);
        assert!(r.ratio <= 1.0);
        assert!(r.queries > 0);
    }

    #[test]
    fn table_viii_timings_positive() {
        let ctx = ctx();
        let nl = NewsLinkMethod::new(&ctx, 0.2, EmbeddingModel::Lcag);
        let t = run_table_viii(&ctx, &nl);
        assert!(t.ne_ms >= 0.0);
        assert!(t.queries > 0);
    }
}
