//! Query execution: term-at-a-time accumulation and top-k selection.

use newslink_util::{FxHashMap, TopK};

use crate::inverted::{CollectionStats, DocId, InvertedIndex};
use crate::score::{Bm25, Scorer};

/// A ranked result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// The matching document.
    pub doc: DocId,
    /// Its score under the searcher's scorer.
    pub score: f64,
}

/// Query-side term frequencies.
///
/// Build this **once** per query and reuse it for every segment: `FxHash`
/// is deterministic, so the same insertion sequence yields the same map
/// layout and therefore the same iteration order. Since each document
/// lives in exactly one segment, scoring every segment with one shared
/// `qtf` replays the exact per-document accumulation sequence of the
/// monolithic path — bit-identical sums.
pub fn query_tf<T: AsRef<str>>(query_terms: &[T]) -> FxHashMap<&str, u32> {
    let mut qtf: FxHashMap<&str, u32> = FxHashMap::default();
    for t in query_terms {
        *qtf.entry(t.as_ref()).or_default() += 1;
    }
    qtf
}

/// BM25-score every live document of one segment under a global-stats
/// overlay.
///
/// `stats` carries the collection-wide document count and total length,
/// `global_df` the collection-wide document frequency of each query term
/// (live documents only), and `live` decides whether a segment-local doc
/// still counts (tombstone filter). The returned map is keyed by
/// segment-local [`DocId`]; the caller translates to global ids.
///
/// On a single segment with `stats = CollectionStats::from_index`,
/// `global_df` = dictionary doc-freqs and `live = |_| true`, this is
/// bit-identical to `Searcher::new(segment, scorer).score_all(query)`.
pub fn score_segment(
    scorer: Bm25,
    segment: &InvertedIndex,
    stats: CollectionStats,
    qtf: &FxHashMap<&str, u32>,
    global_df: &FxHashMap<&str, u32>,
    mut live: impl FnMut(DocId) -> bool,
) -> FxHashMap<DocId, f64> {
    let mut acc: FxHashMap<DocId, f64> = FxHashMap::default();
    for (term, &qtf) in qtf {
        let Some(id) = segment.term_id(term) else { continue };
        let df = global_df.get(term).copied().unwrap_or(0);
        for p in segment.postings(id) {
            if !live(p.doc) {
                continue;
            }
            let c = scorer.contribution_with(stats, segment.doc_len(p.doc), p.tf, df, qtf);
            if c != 0.0 {
                *acc.entry(p.doc).or_default() += c;
            }
        }
    }
    acc
}

/// Executes queries against one [`InvertedIndex`] with one [`Scorer`].
pub struct Searcher<'i, S: Scorer> {
    index: &'i InvertedIndex,
    scorer: S,
}

impl<'i, S: Scorer> Searcher<'i, S> {
    /// Create a searcher.
    pub fn new(index: &'i InvertedIndex, scorer: S) -> Self {
        Self { index, scorer }
    }

    /// The underlying index.
    pub fn index(&self) -> &'i InvertedIndex {
        self.index
    }

    /// Score every document matching at least one query term.
    ///
    /// Returns the normalized accumulator map — the building block for
    /// blended scoring (NewsLink's Equation 3 combines two of these maps).
    pub fn score_all<T: AsRef<str>>(&self, query_terms: &[T]) -> FxHashMap<DocId, f64> {
        let qtf = query_tf(query_terms);
        let mut acc: FxHashMap<DocId, f64> = FxHashMap::default();
        for (term, &qtf) in &qtf {
            let Some(id) = self.index.term_id(term) else { continue };
            let df = self.index.doc_freq(id);
            for p in self.index.postings(id) {
                let c = self.scorer.contribution(self.index, p.doc, p.tf, df, qtf);
                if c != 0.0 {
                    *acc.entry(p.doc).or_default() += c;
                }
            }
        }
        for (doc, score) in acc.iter_mut() {
            *score = self.scorer.normalize(self.index, *doc, *score);
        }
        acc
    }

    /// Random-access scoring: the score of one specific document for a
    /// term query (the Threshold Algorithm's random-access probe).
    pub fn score_doc<T: AsRef<str>>(&self, query_terms: &[T], doc: DocId) -> f64 {
        let qtf = query_tf(query_terms);
        let mut score = 0.0;
        for (term, &qtf) in &qtf {
            let Some(id) = self.index.term_id(term) else { continue };
            let df = self.index.doc_freq(id);
            if let Some((_, p)) = self.index.postings(id).find(doc) {
                score += self.scorer.contribution(self.index, doc, p.tf, df, qtf);
            }
        }
        self.scorer.normalize(self.index, doc, score)
    }

    /// Top-k documents for a term query, sorted by descending score (ties:
    /// lower doc id first, deterministically).
    pub fn search<T: AsRef<str>>(&self, query_terms: &[T], k: usize) -> Vec<Hit> {
        let acc = self.score_all(query_terms);
        let mut entries: Vec<(DocId, f64)> = acc.into_iter().collect();
        // Deterministic feed order into TopK (hash maps iterate arbitrarily).
        entries.sort_unstable_by_key(|(d, _)| *d);
        let mut topk = TopK::new(k);
        for (doc, score) in entries {
            topk.push(score, doc);
        }
        topk.into_sorted()
            .into_iter()
            .map(|(score, doc)| Hit { doc, score })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inverted::IndexBuilder;
    use crate::score::{Bm25, TfIdfCosine};

    fn sample() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        b.add_document(&["taliban", "attack", "pakistan", "attack"]); // 0
        b.add_document(&["pakistan", "election", "results"]); // 1
        b.add_document(&["cricket", "match", "score"]); // 2
        b.add_document(&["taliban", "pakistan", "conflict"]); // 3
        b.build()
    }

    #[test]
    fn bm25_search_ranks_matching_docs() {
        let idx = sample();
        let s = Searcher::new(&idx, Bm25::default());
        let hits = s.search(&["taliban", "pakistan"], 10);
        assert_eq!(hits.len(), 3);
        // Docs 0 and 3 match both terms; doc 1 matches only one.
        let top2: Vec<u32> = hits[..2].iter().map(|h| h.doc.0).collect();
        assert!(top2.contains(&0));
        assert!(top2.contains(&3));
        assert_eq!(hits[2].doc, DocId(1));
        assert!(hits[0].score >= hits[1].score);
    }

    #[test]
    fn k_limits_results() {
        let idx = sample();
        let s = Searcher::new(&idx, Bm25::default());
        assert_eq!(s.search(&["pakistan"], 2).len(), 2);
        assert_eq!(s.search(&["pakistan"], 0).len(), 0);
    }

    #[test]
    fn no_match_returns_empty() {
        let idx = sample();
        let s = Searcher::new(&idx, Bm25::default());
        assert!(s.search(&["zebra"], 5).is_empty());
        assert!(s.search::<&str>(&[], 5).is_empty());
    }

    #[test]
    fn score_all_matches_search_scores() {
        let idx = sample();
        let s = Searcher::new(&idx, Bm25::default());
        let all = s.score_all(&["taliban", "pakistan"]);
        for hit in s.search(&["taliban", "pakistan"], 10) {
            assert!((all[&hit.doc] - hit.score).abs() < 1e-12);
        }
    }

    #[test]
    fn repeated_query_terms_increase_score() {
        let idx = sample();
        let s = Searcher::new(&idx, Bm25::default());
        let single = s.score_all(&["pakistan"]);
        let double = s.score_all(&["pakistan", "pakistan"]);
        assert!(double[&DocId(1)] > single[&DocId(1)]);
    }

    #[test]
    fn tfidf_cosine_search_is_normalized() {
        let idx = sample();
        let scorer = TfIdfCosine::new(&idx);
        let s = Searcher::new(&idx, scorer);
        let hits = s.search(&["taliban", "attack"], 10);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].doc, DocId(0));
        // Cosine against a unit-ish query stays bounded in practice.
        assert!(hits.iter().all(|h| h.score.is_finite() && h.score > 0.0));
    }

    #[test]
    fn search_matches_naive_scoring_exactly() {
        // term-at-a-time accumulation must equal direct per-doc scoring
        let idx = sample();
        let bm = Bm25::default();
        let s = Searcher::new(&idx, bm);
        let query = ["taliban", "attack", "pakistan"];
        let got = s.score_all(&query);
        for doc in 0..idx.doc_count() as u32 {
            let doc = DocId(doc);
            let mut want = 0.0;
            for term in &query {
                let tf = idx.term_freq(term, doc);
                let df = idx
                    .dictionary()
                    .get(term)
                    .map(|t| idx.dictionary().doc_freq(t))
                    .unwrap_or(0);
                want += bm.contribution(&idx, doc, tf, df, 1);
            }
            if want != 0.0 {
                assert!((got[&doc] - want).abs() < 1e-12);
            } else {
                assert!(!got.contains_key(&doc));
            }
        }
    }

    #[test]
    fn score_doc_matches_score_all() {
        let idx = sample();
        let s = Searcher::new(&idx, Bm25::default());
        let q = ["taliban", "pakistan", "zebra"];
        let all = s.score_all(&q);
        for d in 0..idx.doc_count() as u32 {
            let doc = DocId(d);
            let got = s.score_doc(&q, doc);
            let want = all.get(&doc).copied().unwrap_or(0.0);
            assert!((got - want).abs() < 1e-12, "doc {d}");
        }
    }

    #[test]
    fn score_segment_single_segment_is_bit_identical_to_score_all() {
        let idx = sample();
        let scorer = Bm25::default();
        let query = ["taliban", "pakistan", "pakistan", "zebra"];
        let want = Searcher::new(&idx, scorer).score_all(&query);

        let qtf = query_tf(&query);
        let stats = CollectionStats::from_index(&idx);
        let dict = idx.dictionary();
        let mut global_df: FxHashMap<&str, u32> = FxHashMap::default();
        for &term in qtf.keys() {
            let df = dict.get(term).map(|t| dict.doc_freq(t)).unwrap_or(0);
            global_df.insert(term, df);
        }
        let got = score_segment(scorer, &idx, stats, &qtf, &global_df, |_| true);

        assert_eq!(got.len(), want.len());
        for (doc, score) in &want {
            assert_eq!(got[doc].to_bits(), score.to_bits(), "doc {doc:?}");
        }
    }

    #[test]
    fn score_segment_tombstone_filter_drops_docs() {
        let idx = sample();
        let scorer = Bm25::default();
        let query = ["pakistan"];
        let qtf = query_tf(&query);
        let stats = CollectionStats::from_index(&idx);
        // df excluding tombstoned doc 1: "pakistan" appears live in 0 and 3.
        let mut global_df: FxHashMap<&str, u32> = FxHashMap::default();
        global_df.insert("pakistan", 2);
        let got = score_segment(scorer, &idx, stats, &qtf, &global_df, |d| d != DocId(1));
        assert!(!got.contains_key(&DocId(1)));
        assert!(got.contains_key(&DocId(0)));
        assert!(got.contains_key(&DocId(3)));
    }

    #[test]
    fn deterministic_tie_breaking() {
        let mut b = IndexBuilder::new();
        b.add_document(&["same", "words"]);
        b.add_document(&["same", "words"]);
        let idx = b.build();
        let s = Searcher::new(&idx, Bm25::default());
        let hits = s.search(&["same"], 2);
        assert_eq!(hits[0].doc, DocId(0));
        assert_eq!(hits[1].doc, DocId(1));
    }
}
