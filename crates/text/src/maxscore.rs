//! Document-at-a-time top-k with MaxScore and block-max pruning.
//!
//! The paper's NS component "employ\[s\] existing top-k ranking algorithms
//! \[Threshold Algorithm; VSM\]" (§VI). This module provides the
//! index-pruning half of that machinery:
//!
//! - [`maxscore_search`] / [`maxscore_search_with`] — single-side BM25
//!   top-k with Turtle & Flood's MaxScore term partition, upgraded with
//!   block-max bounds: terms are split into an *essential* set — at least
//!   one of which any new top-k document must contain — and a
//!   non-essential remainder evaluated only for candidates that survive a
//!   per-block score bound check. [`PostingCursor::seek`] skips whole
//!   compressed blocks via their metadata without decoding them.
//! - [`blended_scan`] — the *two-sided* evaluator behind NewsLink's
//!   Equation-3 score `(1-β)·bow + β·bon`: one cursor set drives both the
//!   BOW and the BON posting lists with the combined bound
//!   `(1-β)·bow_bound + β·bon_bound`, producing the blended top-k
//!   directly, without materializing per-document score maps.
//! - [`side_scan`] — an exhaustive cursor scan of one side used by the
//!   Threshold Algorithm path to build its sorted-access lists.
//!
//! ## Exactness
//!
//! Pruning decisions only ever *skip* pushing a document whose score
//! upper bound cannot beat the current k-th score; a skipped push is
//! exactly one the top-k heap would have rejected (rejected pushes leave
//! the heap untouched, including its tie counter). Full scores are
//! accumulated in the same canonical term order as the exhaustive
//! evaluator ([`crate::search::score_segment`]), so surviving documents
//! carry bit-identical f64 scores. Every bound is additionally inflated
//! by [`SAFETY`] before comparison so floating-point rounding in the
//! bound arithmetic can never turn a mathematical upper bound into a
//! hair-too-small one.

use std::sync::atomic::{AtomicU64, Ordering};

use newslink_util::{FxHashMap, TopK};

use crate::dictionary::TermId;
use crate::inverted::{CollectionStats, DocId, InvertedIndex, PostingCursor, PostingList};
use crate::score::Bm25;
use crate::search::Hit;

/// Multiplicative inflation applied to every pruning bound before it is
/// compared against the heap threshold. Bounds are mathematical upper
/// bounds evaluated in floating point; their handful of f64 operations
/// can land within ~1e-14 relative error of the true supremum, so
/// comparing `bound * SAFETY` guarantees a document whose exact score
/// would beat the threshold is never skipped — pruning stays exact, it
/// only becomes infinitesimally less eager.
pub const SAFETY: f64 = 1.0 + 1e-9;

/// Work counters for the pruned evaluators: how much the index structure
/// let us avoid.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PruneStats {
    /// Live candidate documents examined (DAAT pivots).
    pub candidates: u64,
    /// Candidates that survived every bound check and were fully scored.
    pub scored: u64,
    /// Posting blocks skipped whole by metadata, never decoded.
    pub blocks_skipped: u64,
}

impl PruneStats {
    /// Fold another evaluator pass's counters in.
    pub fn add(&mut self, other: &PruneStats) {
        self.candidates += other.candidates;
        self.scored += other.scored;
        self.blocks_skipped += other.blocks_skipped;
    }
}

/// Work counters for the intra-query parallel segment fan-out: how many
/// workers a query's NS stage used and how much pruning the shared
/// cross-segment floor bought. All zero when the scan ran sequentially.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ParallelStats {
    /// Scoped worker threads the fan-out ran on (0 = sequential path).
    pub workers: u64,
    /// Segments scanned concurrently under the shared floor.
    pub segments: u64,
    /// Successful monotone raises of the shared pruning floor.
    pub floor_raises: u64,
    /// Candidates discarded where the shared floor — not the segment's
    /// own heap threshold — was the binding bound.
    pub floor_pruned: u64,
    /// Posting blocks skipped whole during bound refinement of those
    /// floor-discarded candidates: decode work the shared floor paid for.
    pub floor_blocks_skipped: u64,
}

impl ParallelStats {
    /// Fold another query's counters in (metrics aggregation).
    pub fn add(&mut self, other: &ParallelStats) {
        self.workers = self.workers.max(other.workers);
        self.segments += other.segments;
        self.floor_raises += other.floor_raises;
        self.floor_pruned += other.floor_pruned;
        self.floor_blocks_skipped += other.floor_blocks_skipped;
    }
}

/// An externally supplied pruning floor consulted by [`blended_scan`]
/// every time it re-derives its threshold `θ`.
///
/// The sequential path passes a plain `f64` (the merged heap's k-th
/// score after the previous segments — constant for the duration of one
/// segment's scan). The parallel path passes a [`SharedFloor`] so
/// segments scanned concurrently prune against each other's *live*
/// progress: `get` is re-read at every threshold check, and `raise` is
/// offered each time a segment's own heap threshold rises.
pub trait Floor {
    /// The current floor value. Any candidate whose score upper bound
    /// (inflated by [`SAFETY`]) is at or below `max(get(), local θ)` is
    /// discarded — so implementations must only ever report values that
    /// provably cannot survive the final merge (see [`SharedFloor`]).
    fn get(&self) -> f64;
    /// Offer a proven lower bound on the final merged k-th score (a full
    /// local heap's threshold). Default: ignore (constant floors).
    #[inline]
    fn raise(&self, _kth: f64) {}
    /// Record a candidate discarded because the external floor (not the
    /// local heap) was the binding bound, along with the posting blocks
    /// skipped whole while refining it. Default: ignore.
    #[inline]
    fn note_floor_prune(&self, _refine_blocks: u64) {}
}

/// A constant floor: the sequential cross-segment threshold.
impl Floor for f64 {
    #[inline]
    fn get(&self) -> f64 {
        *self
    }
}

/// Lock-free shared pruning floor for concurrent segment scans: an
/// `AtomicU64` holding the f64 bits of the best k-th score any segment's
/// local heap has reached so far, raised monotonically via fetch-update.
///
/// **Why sharing it is exact** (the §6l safety argument, proven by the
/// `parallel_prop` suite): a full local `TopK(k)`'s threshold is the
/// k-th best score of real documents, all of which reach the final
/// merge — so the merged k-th score can only be ≥ it, and the floor is
/// always a lower bound on the final merged threshold. The scan discards
/// a candidate only when `bound · SAFETY ≤ floor` with `bound ≥ score`,
/// i.e. only documents *strictly* below the floor (ties survive: for a
/// doc scoring exactly `floor > 0`, `bound · SAFETY > floor`). Such
/// documents lose the final merge no matter the push order, and inside a
/// local heap they are only ever eviction victims — never competing with
/// an above-floor document for a tie — so which documents survive, and
/// their tie order, is untouched. Memory ordering is `Relaxed`
/// throughout: the floor is monotone and advisory, so a stale read is
/// just a slightly weaker (still valid) earlier value.
#[derive(Debug)]
pub struct SharedFloor {
    bits: AtomicU64,
    raises: AtomicU64,
    pruned: AtomicU64,
    blocks: AtomicU64,
}

impl SharedFloor {
    /// A floor starting at `f64::NEG_INFINITY` (no constraint).
    pub fn new() -> Self {
        Self::seeded(f64::NEG_INFINITY)
    }

    /// A floor pre-seeded with an externally proven threshold (e.g. a
    /// router-supplied merge floor); the seed is not counted as a raise.
    pub fn seeded(floor: f64) -> Self {
        Self {
            bits: AtomicU64::new(floor.to_bits()),
            raises: AtomicU64::new(0),
            pruned: AtomicU64::new(0),
            blocks: AtomicU64::new(0),
        }
    }

    /// The current floor value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Drain the counters into a [`ParallelStats`] describing a fan-out
    /// that ran on `workers` threads over `segments` segments.
    pub fn harvest(&self, workers: usize, segments: usize) -> ParallelStats {
        ParallelStats {
            workers: workers as u64,
            segments: segments as u64,
            floor_raises: self.raises.load(Ordering::Relaxed),
            floor_pruned: self.pruned.load(Ordering::Relaxed),
            floor_blocks_skipped: self.blocks.load(Ordering::Relaxed),
        }
    }
}

impl Default for SharedFloor {
    fn default() -> Self {
        Self::new()
    }
}

impl Floor for SharedFloor {
    #[inline]
    fn get(&self) -> f64 {
        self.value()
    }

    #[inline]
    fn raise(&self, kth: f64) {
        // Monotone max on the f64 *values* (not their bit patterns —
        // negative floors order backwards as bits). Scores are finite and
        // the seed is -inf, so total_cmp-free `>` is sufficient.
        let raised = self
            .bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                (kth > f64::from_bits(cur)).then(|| kth.to_bits())
            })
            .is_ok();
        if raised {
            self.raises.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[inline]
    fn note_floor_prune(&self, refine_blocks: u64) {
        self.pruned.fetch_add(1, Ordering::Relaxed);
        self.blocks.fetch_add(refine_blocks, Ordering::Relaxed);
    }
}

/// Upper bound of BM25's tf-saturation factor over all document lengths:
/// `tf·(k1+1) / (tf + k1·(1-b))` — the saturation at the minimal length
/// norm `1-b` (`doc_len = 0`). Exact (not just an upper bound) for
/// `b = 0`, where the norm is length-independent.
#[inline]
fn sat_bound(scorer: &Bm25, tf: u32) -> f64 {
    if tf == 0 {
        return 0.0;
    }
    let tf = f64::from(tf);
    tf * (scorer.k1 + 1.0) / (tf + scorer.k1 * (1.0 - scorer.b))
}

/// Top-k search with MaxScore pruning; identical results to exhaustive
/// BM25 evaluation (same scores, same deterministic tie-breaking).
pub fn maxscore_search<T: AsRef<str>>(
    index: &InvertedIndex,
    scorer: Bm25,
    query_terms: &[T],
    k: usize,
) -> Vec<Hit> {
    maxscore_search_with(
        index,
        scorer,
        query_terms,
        k,
        CollectionStats::from_index(index),
        |term| index.term_id(term).map(|t| index.doc_freq(t)).unwrap_or(0),
        |_| true,
    )
}

/// Per-query-term state for the single-side DAAT traversal.
struct TermCursor<'i> {
    cursor: PostingCursor<'i>,
    /// `qtf · idf` ([`Bm25::term_partial`]) — multiply by a saturation
    /// bound for a score bound, or by the actual saturation for the
    /// term's exact contribution.
    base: f64,
    /// Upper bound on this term's contribution to any document.
    max_contribution: f64,
}

/// MaxScore top-k over one **segment** of a larger collection.
///
/// `stats` and `df_of` supply the collection-wide overlay (live document
/// count, total length, per-term live document frequency) while postings
/// and document lengths stay segment-local; `live` filters tombstoned
/// documents out of candidacy. With monolithic stats, dictionary
/// doc-freqs, and an always-true filter this reduces to
/// [`maxscore_search`], and scores match the exhaustive evaluator
/// bit-for-bit because both delegate to [`Bm25::contribution_with`].
pub fn maxscore_search_with<T: AsRef<str>>(
    index: &InvertedIndex,
    scorer: Bm25,
    query_terms: &[T],
    k: usize,
    stats: CollectionStats,
    df_of: impl Fn(&str) -> u32,
    live: impl Fn(DocId) -> bool,
) -> Vec<Hit> {
    if k == 0 {
        return Vec::new();
    }
    // Aggregate query-side term frequencies and build cursors. The
    // query's own string rides along so `df_of` never needs an
    // id-to-term lookup (which would materialize a mapped dictionary).
    let mut qtf: FxHashMap<TermId, (u32, &str)> = FxHashMap::default();
    for t in query_terms {
        if let Some(id) = index.term_id(t.as_ref()) {
            qtf.entry(id).or_insert((0, t.as_ref())).0 += 1;
        }
    }
    let mut cursors: Vec<TermCursor<'_>> = qtf
        .into_iter()
        .filter_map(|(term, (qtf, text))| {
            let postings = index.postings(term);
            if postings.is_empty() {
                return None;
            }
            let df = df_of(text);
            let base = f64::from(qtf) * scorer.idf(stats.docs, df);
            // Bounded by the saturation limit of the list's largest tf at
            // the smallest possible length norm.
            let max_contribution = base * sat_bound(&scorer, postings.max_tf());
            Some(TermCursor {
                cursor: postings.cursor(),
                base,
                max_contribution,
            })
        })
        .collect();
    if cursors.is_empty() {
        return Vec::new();
    }
    // Ascending by bound: prefix terms are the non-essential ones.
    cursors.sort_by(|a, b| a.max_contribution.total_cmp(&b.max_contribution));
    // prefix_bounds[i] = sum of bounds of cursors[0..i].
    let mut prefix_bounds = vec![0.0f64; cursors.len() + 1];
    for i in 0..cursors.len() {
        prefix_bounds[i + 1] = prefix_bounds[i] + cursors[i].max_contribution;
    }

    let mut topk: TopK<DocId> = TopK::new(k);
    // Number of non-essential (prefix) terms; grows as threshold rises.
    let mut first_essential = 0usize;

    loop {
        // Raise the essential boundary as far as the threshold allows.
        if let Some(theta) = topk.threshold() {
            while first_essential < cursors.len()
                && prefix_bounds[first_essential + 1] * SAFETY <= theta
            {
                first_essential += 1;
            }
        }
        if first_essential >= cursors.len() {
            break; // no essential terms left: nothing new can qualify
        }
        // Next candidate: smallest current doc among essential cursors
        // (essential cursors never lag behind the pivot).
        let mut pivot: Option<DocId> = None;
        for c in &cursors[first_essential..] {
            if let Some(d) = c.cursor.current_doc() {
                pivot = Some(match pivot {
                    Some(p) if p <= d => p,
                    _ => d,
                });
            }
        }
        let Some(doc) = pivot else { break };

        // Tombstoned documents never qualify: advance past and move on.
        if !live(doc) {
            for c in cursors[first_essential..].iter_mut() {
                if c.cursor.current_doc() == Some(doc) {
                    c.cursor.advance();
                }
            }
            continue;
        }

        // Block-max refinement: tighten the essential bound from list-level
        // to the blocks the candidate actually lives in.
        if let Some(theta) = topk.threshold() {
            let mut block_bound = prefix_bounds[first_essential];
            for c in &cursors[first_essential..] {
                if c.cursor.current_doc() == Some(doc) {
                    block_bound += c.base * sat_bound(&scorer, c.cursor.block_max_tf());
                }
            }
            if block_bound * SAFETY <= theta {
                for c in cursors[first_essential..].iter_mut() {
                    if c.cursor.current_doc() == Some(doc) {
                        c.cursor.advance();
                    }
                }
                continue;
            }
        }

        // Score essential terms for `doc`, advancing their cursors. The
        // per-term `base` is exactly `qtf · idf`, so finishing from the
        // partial is bit-identical to `contribution_with` and skips the
        // per-posting idf recomputation.
        let mut score = 0.0;
        let doc_len = index.doc_len(doc);
        for c in cursors[first_essential..].iter_mut() {
            if let Some(p) = c.cursor.current() {
                if p.doc == doc {
                    score += scorer.contribution_from_partial(stats, doc_len, p.tf, c.base);
                    c.cursor.advance();
                }
            }
        }
        // Add non-essential terms most-promising-first, abandoning the
        // candidate as soon as even full bounds cannot reach the threshold.
        for i in (0..first_essential).rev() {
            if let Some(theta) = topk.threshold() {
                if (score + prefix_bounds[i + 1]) * SAFETY <= theta {
                    score = f64::NEG_INFINITY; // cannot qualify
                    break;
                }
            }
            let c = &mut cursors[i];
            c.cursor.seek(doc);
            if let Some(p) = c.cursor.current() {
                if p.doc == doc {
                    score += scorer.contribution_from_partial(stats, doc_len, p.tf, c.base);
                }
            }
        }
        if score > 0.0 {
            topk.push(score, doc);
        }
    }

    let mut hits: Vec<Hit> = topk
        .into_sorted()
        .into_iter()
        .map(|(score, doc)| Hit { doc, score })
        .collect();
    // TopK ties break by insertion order, which here is doc order — same
    // as the exhaustive Searcher. Re-sort defensively for determinism.
    hits.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.doc.cmp(&b.doc)));
    hits
}

/// One side (BOW or BON) of the blended evaluator, fully resolved
/// against one segment.
pub struct SideSpec<'i> {
    /// The segment's inverted index for this side (document lengths).
    pub index: &'i InvertedIndex,
    /// The side's BM25 parameterization.
    pub scorer: Bm25,
    /// Collection-wide overlay statistics for the side.
    pub stats: CollectionStats,
    /// `(postings, query_tf, global_df)` per resolved query term, in the
    /// shared canonical query-term order — the order
    /// [`crate::search::score_segment`] accumulates contributions in,
    /// which the blended evaluator must reproduce for bit-identity.
    pub terms: Vec<(&'i PostingList, u32, u32)>,
    /// Normalization divisor (the side's global score max, or 1.0).
    pub norm: f64,
}

/// Per-term cursor state of the blended evaluator. Cursor order is the
/// canonical accumulation order: all BOW terms first, then all BON
/// terms, each side in its spec order.
struct BlendedCursor<'i> {
    cursor: PostingCursor<'i>,
    /// 0 = BOW, 1 = BON.
    side: usize,
    scorer: Bm25,
    /// `qtf · idf` ([`Bm25::term_partial`]) — the document-independent
    /// factor of this term's raw contribution, folded once per term so
    /// the scoring loop multiplies it by saturation per posting instead
    /// of recomputing the idf (bit-identical: the product associates at
    /// the same boundary).
    partial: f64,
    /// `weight · qtf · idf / norm` — multiply by a saturation bound for
    /// a weighted normalized score bound.
    base: f64,
    /// List-level weighted upper bound on this term's blended
    /// contribution.
    wub: f64,
}

/// Pruned blended top-k scan of **one segment**: pushes every live
/// document whose Equation-3 score `(1-β)·bow + β·bon` can still beat
/// the threshold of `topk`, in ascending doc-id order, with scores
/// bit-identical to the exhaustive map-based evaluator.
///
/// For bit-identical top-k across segments, feed each segment a *fresh*
/// `topk` and merge the survivors afterwards: a heap carried across
/// segments can retain a different one of several tied documents than
/// the per-segment-then-merge structure the exhaustive path uses.
/// (Sharing `topk` across segments is fine when only the retained
/// *values* matter, e.g. a top-1 max pass.)
///
/// `floor` is an extra pruning threshold from *outside* this segment,
/// consulted through the [`Floor`] trait at every threshold check. The
/// sequential path passes the merged heap's current k-th score as a
/// plain `&f64` (or `&f64::NEG_INFINITY` for none); the parallel path
/// passes a [`SharedFloor`] that concurrent segment scans raise against
/// each other. Skipping a candidate whose bound is ≤ the floor cannot
/// change the merged outcome: such a document would be rejected when
/// the survivors are pushed into the (already full, min ≥ floor)
/// merged heap, and inside this segment's heap ≤-floor entries are only
/// ever eviction victims, so which above-floor documents survive — and
/// their tie order — is unaffected by their presence. Whenever this
/// segment's own heap threshold rises it is offered back through
/// [`Floor::raise`], making the pruning bidirectional under a shared
/// floor.
///
/// `map_doc` translates segment-local ids to global ones at push time;
/// `live` filters tombstoned documents. A side passed as `None`
/// contributes 0.0, matching the exhaustive path's behavior for
/// `β ∈ {0, 1}` and for sides with no live documents.
#[allow(clippy::too_many_arguments)]
pub fn blended_scan(
    bow: Option<&SideSpec<'_>>,
    bon: Option<&SideSpec<'_>>,
    beta: f64,
    floor: &impl Floor,
    live: impl Fn(DocId) -> bool,
    map_doc: impl Fn(DocId) -> DocId,
    topk: &mut TopK<(DocId, f64, f64)>,
    stats_out: &mut PruneStats,
) {
    let sides = [bow, bon];
    let weights = [1.0 - beta, beta];
    let mut cursors: Vec<BlendedCursor<'_>> = Vec::new();
    for (si, spec) in sides.iter().enumerate() {
        let Some(spec) = spec else { continue };
        for &(list, qtf, df) in &spec.terms {
            if list.is_empty() {
                continue;
            }
            let base = weights[si] * f64::from(qtf) * spec.scorer.idf(spec.stats.docs, df)
                / spec.norm;
            let wub = base * sat_bound(&spec.scorer, list.max_tf());
            cursors.push(BlendedCursor {
                cursor: list.cursor(),
                side: si,
                scorer: spec.scorer,
                partial: spec.scorer.term_partial(spec.stats, df, qtf),
                base,
                wub,
            });
        }
    }
    if cursors.is_empty() {
        return;
    }
    // Evaluation order ascending by bound; ties by canonical index so the
    // partition is deterministic. (Bound order only steers *which* docs
    // get fully scored, never their scores.)
    let mut order: Vec<usize> = (0..cursors.len()).collect();
    order.sort_by(|&a, &b| cursors[a].wub.total_cmp(&cursors[b].wub).then(a.cmp(&b)));
    // prefix_bounds[i] = sum of bounds of order[0..i].
    let mut prefix_bounds = vec![0.0f64; cursors.len() + 1];
    for i in 0..cursors.len() {
        prefix_bounds[i + 1] = prefix_bounds[i] + cursors[order[i]].wub;
    }
    let mut first_essential = 0usize;

    loop {
        let theta = topk.threshold().unwrap_or(f64::NEG_INFINITY).max(floor.get());
        while first_essential < cursors.len()
            && prefix_bounds[first_essential + 1] * SAFETY <= theta
        {
            first_essential += 1;
        }
        if first_essential >= cursors.len() {
            break;
        }
        let mut pivot: Option<DocId> = None;
        for &ci in &order[first_essential..] {
            if let Some(d) = cursors[ci].cursor.current_doc() {
                pivot = Some(match pivot {
                    Some(p) if p <= d => p,
                    _ => d,
                });
            }
        }
        let Some(doc) = pivot else { break };

        if live(doc) {
            stats_out.candidates += 1;
            // Bound refinement, most-promising non-essential first:
            // `bound` holds block-level bounds for every cursor known to
            // sit on `doc` plus list-level bounds for the not-yet-seeked
            // prefix. Only bounds are consulted here — actual scores are
            // computed once, in canonical order, for survivors.
            let mut bound = prefix_bounds[first_essential];
            for &ci in &order[first_essential..] {
                let c = &cursors[ci];
                if c.cursor.current_doc() == Some(doc) {
                    bound += c.base * sat_bound(&c.scorer, c.cursor.block_max_tf());
                }
            }
            let mut abandoned = false;
            let mut refine_blocks = 0u64;
            let mut j = first_essential;
            loop {
                let local = topk.threshold().unwrap_or(f64::NEG_INFINITY);
                let ext = floor.get();
                if bound * SAFETY <= local.max(ext) {
                    if ext > local {
                        // The external (shared) floor, not this segment's
                        // own heap, killed the candidate: credit it.
                        floor.note_floor_prune(refine_blocks);
                    }
                    abandoned = true;
                    break;
                }
                if j == 0 {
                    break;
                }
                j -= 1;
                let ci = order[j];
                bound -= cursors[ci].wub;
                let c = &mut cursors[ci];
                let before = c.cursor.blocks_skipped();
                c.cursor.seek(doc);
                refine_blocks += c.cursor.blocks_skipped() - before;
                if c.cursor.current_doc() == Some(doc) {
                    bound += c.base * sat_bound(&c.scorer, c.cursor.block_max_tf());
                }
            }
            if !abandoned {
                stats_out.scored += 1;
                // Canonical-order accumulation: identical f64 sums to the
                // exhaustive evaluator's per-document map entries. The
                // per-term `qtf · idf` partial is folded into the cursor;
                // only the length-dependent saturation is computed here.
                let mut raw = [0.0f64; 2];
                for c in &cursors {
                    if let Some(p) = c.cursor.current() {
                        if p.doc == doc {
                            let spec = sides[c.side].expect("cursor from an active side");
                            raw[c.side] += spec.scorer.contribution_from_partial(
                                spec.stats,
                                spec.index.doc_len(doc),
                                p.tf,
                                c.partial,
                            );
                        }
                    }
                }
                let bow_v = sides[0].map_or(0.0, |s| raw[0] / s.norm);
                let bon_v = sides[1].map_or(0.0, |s| raw[1] / s.norm);
                let score = (1.0 - beta) * bow_v + beta * bon_v;
                if score > 0.0 && topk.push(score, (map_doc(doc), bow_v, bon_v)) {
                    // A full heap's k-th score is a proven lower bound on
                    // the final merged threshold: offer it to siblings.
                    if let Some(kth) = topk.threshold() {
                        floor.raise(kth);
                    }
                }
            }
        }
        for c in cursors.iter_mut() {
            if c.cursor.current_doc() == Some(doc) {
                c.cursor.advance();
            }
        }
    }
    stats_out.blocks_skipped += cursors
        .iter()
        .map(|c| c.cursor.blocks_skipped())
        .sum::<u64>();
}

/// Exhaustive cursor-driven scan of one side over one segment: the raw
/// (unnormalized) score of every live matching document, ascending by
/// local doc id, each accumulated in the canonical term order — the
/// per-document sums are bit-identical to
/// [`crate::search::score_segment`]'s map entries. Feeds the Threshold
/// Algorithm's sorted-access lists without materializing hash maps.
/// `spec.norm` is ignored here; callers normalize after finding the
/// global max.
pub fn side_scan(
    spec: &SideSpec<'_>,
    live: impl Fn(DocId) -> bool,
    out: &mut Vec<(DocId, f64)>,
) {
    // `qtf · idf` folded once per term (bit-identical to evaluating the
    // whole product per posting — see [`Bm25::contribution_from_partial`]).
    let mut cursors: Vec<(PostingCursor<'_>, f64)> = spec
        .terms
        .iter()
        .filter(|(list, _, _)| !list.is_empty())
        .map(|&(list, qtf, df)| (list.cursor(), spec.scorer.term_partial(spec.stats, df, qtf)))
        .collect();
    loop {
        let mut pivot: Option<DocId> = None;
        for (c, _) in &cursors {
            if let Some(d) = c.current_doc() {
                pivot = Some(match pivot {
                    Some(p) if p <= d => p,
                    _ => d,
                });
            }
        }
        let Some(doc) = pivot else { break };
        if live(doc) {
            let mut raw = 0.0;
            for (c, partial) in &cursors {
                if let Some(p) = c.current() {
                    if p.doc == doc {
                        raw += spec.scorer.contribution_from_partial(
                            spec.stats,
                            spec.index.doc_len(doc),
                            p.tf,
                            *partial,
                        );
                    }
                }
            }
            if raw != 0.0 {
                out.push((doc, raw));
            }
        }
        for (c, _) in cursors.iter_mut() {
            if c.current_doc() == Some(doc) {
                c.advance();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inverted::IndexBuilder;
    use crate::search::{query_tf, score_segment, Searcher};
    use newslink_util::DetRng;

    fn random_index(seed: u64, docs: usize, vocab: usize) -> (InvertedIndex, Vec<Vec<String>>) {
        let mut rng = DetRng::new(seed);
        let mut b = IndexBuilder::new();
        let mut all = Vec::new();
        for _ in 0..docs {
            let len = rng.range(3, 30);
            let terms: Vec<String> = (0..len)
                .map(|_| format!("t{}", rng.zipf(vocab, 1.2)))
                .collect();
            b.add_document(&terms);
            all.push(terms);
        }
        (b.build(), all)
    }

    #[test]
    fn matches_exhaustive_search_exactly() {
        let (index, _) = random_index(1, 300, 50);
        let searcher = Searcher::new(&index, Bm25::default());
        for qseed in 0..20u64 {
            let mut rng = DetRng::new(1000 + qseed);
            let qlen = rng.range(1, 6);
            let query: Vec<String> = (0..qlen).map(|_| format!("t{}", rng.zipf(50, 1.2))).collect();
            let naive = searcher.search(&query, 10);
            let pruned = maxscore_search(&index, Bm25::default(), &query, 10);
            assert_eq!(naive.len(), pruned.len(), "query {query:?}");
            for (a, b) in naive.iter().zip(&pruned) {
                assert_eq!(a.doc, b.doc, "query {query:?}");
                assert!((a.score - b.score).abs() < 1e-9, "query {query:?}");
            }
        }
    }

    #[test]
    fn handles_unknown_terms() {
        let (index, _) = random_index(2, 50, 20);
        assert!(maxscore_search(&index, Bm25::default(), &["zzz"], 5).is_empty());
        let mixed = maxscore_search(&index, Bm25::default(), &["zzz", "t1"], 5);
        let naive = Searcher::new(&index, Bm25::default()).search(&["zzz", "t1"], 5);
        assert_eq!(mixed.len(), naive.len());
    }

    #[test]
    fn k_zero_and_empty_query() {
        let (index, _) = random_index(3, 50, 20);
        assert!(maxscore_search(&index, Bm25::default(), &["t1"], 0).is_empty());
        assert!(maxscore_search::<&str>(&index, Bm25::default(), &[], 10).is_empty());
    }

    #[test]
    fn small_k_prunes_but_stays_exact() {
        let (index, _) = random_index(4, 1000, 30);
        let query = ["t0", "t1", "t2", "t3", "t4"];
        let naive = Searcher::new(&index, Bm25::default()).search(&query, 1);
        let pruned = maxscore_search(&index, Bm25::default(), &query, 1);
        assert_eq!(naive[0].doc, pruned[0].doc);
        assert!((naive[0].score - pruned[0].score).abs() < 1e-9);
    }

    #[test]
    fn repeated_query_terms_weighted() {
        let (index, _) = random_index(5, 200, 20);
        let naive = Searcher::new(&index, Bm25::default()).search(&["t1", "t1", "t2"], 8);
        let pruned = maxscore_search(&index, Bm25::default(), &["t1", "t1", "t2"], 8);
        for (a, b) in naive.iter().zip(&pruned) {
            assert_eq!(a.doc, b.doc);
            assert!((a.score - b.score).abs() < 1e-9);
        }
    }

    #[test]
    fn overlay_with_tombstones_matches_filtered_exhaustive() {
        let (index, docs) = random_index(7, 200, 30);
        // Tombstone every fifth document.
        let dead: Vec<DocId> = (0..docs.len() as u32)
            .filter(|d| d % 5 == 0)
            .map(DocId)
            .collect();
        let is_live = |d: DocId| !dead.contains(&d);
        // Overlay stats over live docs only.
        let mut stats = CollectionStats::default();
        for d in 0..docs.len() as u32 {
            if is_live(DocId(d)) {
                stats.add_doc(index.doc_len(DocId(d)));
            }
        }
        let df_of = |term: &str| {
            index
                .postings_for(term)
                .iter()
                .filter(|p| is_live(p.doc))
                .count() as u32
        };
        let query = ["t0", "t1", "t2"];
        let pruned = maxscore_search_with(&index, Bm25::default(), &query, 10, stats, df_of, is_live);
        assert!(!pruned.is_empty());
        assert!(pruned.iter().all(|h| is_live(h.doc)));

        // Reference: rebuild an index from live docs only and search it.
        let mut b = IndexBuilder::new();
        let mut live_ids = Vec::new();
        for (i, terms) in docs.iter().enumerate() {
            if is_live(DocId(i as u32)) {
                live_ids.push(i as u32);
                b.add_document(terms);
            }
        }
        let fresh = b.build();
        let want = Searcher::new(&fresh, Bm25::default()).search(&query, 10);
        assert_eq!(pruned.len(), want.len());
        for (a, b) in pruned.iter().zip(&want) {
            assert_eq!(a.doc, DocId(live_ids[b.doc.index()]));
            assert!((a.score - b.score).abs() < 1e-9);
        }
    }

    #[test]
    fn seek_gallops_correctly() {
        let mut b = IndexBuilder::new();
        for i in 0..100 {
            if i % 3 == 0 {
                b.add_document(&["x"]);
            } else {
                b.add_document(&["y"]);
            }
        }
        let index = b.build();
        let naive = Searcher::new(&index, Bm25::default()).search(&["x", "y"], 10);
        let pruned = maxscore_search(&index, Bm25::default(), &["x", "y"], 10);
        assert_eq!(naive.len(), pruned.len());
        for (a, b) in naive.iter().zip(&pruned) {
            assert_eq!(a.doc, b.doc);
        }
    }

    /// Build a [`SideSpec`] the way the segmented engine does: terms in
    /// `query_tf` iteration order, dictionary doc-freqs, no overlay.
    fn spec_for<'i>(
        index: &'i InvertedIndex,
        scorer: Bm25,
        qtf: &FxHashMap<&str, u32>,
        norm: f64,
    ) -> SideSpec<'i> {
        let dict = index.dictionary();
        let mut terms = Vec::new();
        for (term, &q) in qtf {
            let Some(id) = dict.get(term) else { continue };
            terms.push((index.postings(id), q, dict.doc_freq(id)));
        }
        SideSpec {
            index,
            scorer,
            stats: CollectionStats::from_index(index),
            terms,
            norm,
        }
    }

    /// Exhaustive oracle mirroring the engine's map-based blended path.
    fn blended_exhaustive(
        index: &InvertedIndex,
        query: &[String],
        beta: f64,
        k: usize,
    ) -> Vec<(DocId, f64, f64, f64)> {
        let qtf = query_tf(query);
        let dict = index.dictionary();
        let stats = CollectionStats::from_index(index);
        let mut df = FxHashMap::default();
        for term in qtf.keys() {
            if let Some(id) = dict.get(term) {
                df.insert(*term, dict.doc_freq(id));
            }
        }
        let scores = score_segment(Bm25::default(), index, stats, &qtf, &df, |_| true);
        let mut docs: Vec<DocId> = scores.keys().copied().collect();
        docs.sort_unstable();
        let mut topk = TopK::new(k);
        for doc in docs {
            let bow = scores.get(&doc).copied().unwrap_or(0.0);
            let score = (1.0 - beta) * bow + beta * 0.0;
            if score > 0.0 {
                topk.push(score, (doc, bow, 0.0));
            }
        }
        topk.into_sorted()
            .into_iter()
            .map(|(s, (d, bw, bn))| (d, s, bw, bn))
            .collect()
    }

    #[test]
    fn blended_scan_single_side_is_bit_identical_to_exhaustive() {
        let (index, _) = random_index(11, 400, 40);
        for beta in [0.0, 0.4] {
            for k in [1usize, 5, 1000] {
                for qseed in 0..10u64 {
                    let mut rng = DetRng::new(3000 + qseed);
                    let qlen = rng.range(1, 6);
                    let query: Vec<String> =
                        (0..qlen).map(|_| format!("t{}", rng.zipf(40, 1.2))).collect();
                    let qtf = query_tf(&query);
                    let spec = spec_for(&index, Bm25::default(), &qtf, 1.0);
                    let mut topk = TopK::new(k);
                    let mut stats = PruneStats::default();
                    blended_scan(
                        Some(&spec),
                        None,
                        beta,
                        &f64::NEG_INFINITY,
                        |_| true,
                        |d| d,
                        &mut topk,
                        &mut stats,
                    );
                    let got: Vec<(DocId, f64, f64, f64)> = topk
                        .into_sorted()
                        .into_iter()
                        .map(|(s, (d, bw, bn))| (d, s, bw, bn))
                        .collect();
                    let want = blended_exhaustive(&index, &query, beta, k);
                    assert_eq!(got.len(), want.len(), "beta {beta} k {k} query {query:?}");
                    for (g, w) in got.iter().zip(&want) {
                        assert_eq!(g.0, w.0, "beta {beta} k {k} query {query:?}");
                        assert_eq!(g.1.to_bits(), w.1.to_bits(), "score bits");
                        assert_eq!(g.2.to_bits(), w.2.to_bits(), "bow bits");
                        assert_eq!(g.3.to_bits(), w.3.to_bits(), "bon bits");
                    }
                    assert!(stats.scored <= stats.candidates);
                }
            }
        }
    }

    #[test]
    fn blended_scan_prunes_on_small_k() {
        let (index, _) = random_index(12, 2000, 30);
        let query: Vec<String> = (0..4).map(|i| format!("t{i}")).collect();
        let qtf = query_tf(&query);
        let spec = spec_for(&index, Bm25::default(), &qtf, 1.0);
        let mut topk = TopK::new(3);
        let mut stats = PruneStats::default();
        blended_scan(
            Some(&spec),
            None,
            0.0,
            &f64::NEG_INFINITY,
            |_| true,
            |d| d,
            &mut topk,
            &mut stats,
        );
        assert!(stats.candidates > 0);
        assert!(
            stats.scored < stats.candidates,
            "expected pruning: {stats:?}"
        );
    }

    #[test]
    fn side_scan_matches_score_segment_bitwise() {
        let (index, _) = random_index(13, 300, 25);
        for qseed in 0..10u64 {
            let mut rng = DetRng::new(5000 + qseed);
            let qlen = rng.range(1, 5);
            let query: Vec<String> = (0..qlen).map(|_| format!("t{}", rng.zipf(25, 1.2))).collect();
            let qtf = query_tf(&query);
            let spec = spec_for(&index, Bm25::default(), &qtf, 1.0);
            let mut got = Vec::new();
            side_scan(&spec, |_| true, &mut got);

            let dict = index.dictionary();
            let mut df = FxHashMap::default();
            for term in qtf.keys() {
                if let Some(id) = dict.get(term) {
                    df.insert(*term, dict.doc_freq(id));
                }
            }
            let want = score_segment(
                Bm25::default(),
                &index,
                CollectionStats::from_index(&index),
                &qtf,
                &df,
                |_| true,
            );
            assert_eq!(got.len(), want.len(), "query {query:?}");
            assert!(got.windows(2).all(|w| w[0].0 < w[1].0), "ascending doc ids");
            for (doc, raw) in got {
                assert_eq!(
                    raw.to_bits(),
                    want.get(&doc).copied().unwrap_or(0.0).to_bits(),
                    "query {query:?} doc {doc:?}"
                );
            }
        }
    }
}
