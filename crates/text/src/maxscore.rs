//! Document-at-a-time top-k with MaxScore pruning.
//!
//! The paper's NS component "employ\[s\] existing top-k ranking algorithms
//! \[Threshold Algorithm; VSM\]" (§VI). This module provides the
//! single-index half: a document-at-a-time evaluator with per-term score
//! upper bounds (Turtle & Flood's MaxScore). Terms are split into an
//! *essential* set — at least one of which any new top-k document must
//! contain — and a non-essential remainder evaluated only for candidates,
//! with early exit once the candidate's score bound falls below the
//! current threshold.

use newslink_util::{FxHashMap, TopK};

use crate::dictionary::TermId;
use crate::inverted::{CollectionStats, DocId, InvertedIndex, Posting};
use crate::score::Bm25;
use crate::search::Hit;

/// Per-query-term state for DAAT traversal.
struct TermCursor<'i> {
    postings: &'i [Posting],
    pos: usize,
    df: u32,
    qtf: u32,
    /// Upper bound on this term's contribution to any document.
    max_contribution: f64,
}

impl TermCursor<'_> {
    #[inline]
    fn current(&self) -> Option<Posting> {
        self.postings.get(self.pos).copied()
    }

    /// Advance to the first posting with `doc >= target` (galloping).
    fn seek(&mut self, target: DocId) {
        if self.current().is_some_and(|p| p.doc >= target) {
            return;
        }
        let mut step = 1;
        let mut lo = self.pos;
        let mut hi = self.pos;
        while hi < self.postings.len() && self.postings[hi].doc < target {
            lo = hi;
            hi = (hi + step).min(self.postings.len());
            step *= 2;
        }
        // Binary search in (lo, hi].
        let slice = &self.postings[lo..hi.min(self.postings.len())];
        let offset = slice.partition_point(|p| p.doc < target);
        self.pos = lo + offset;
    }
}

/// Top-k search with MaxScore pruning; identical results to exhaustive
/// BM25 evaluation (same scores, same deterministic tie-breaking).
pub fn maxscore_search<T: AsRef<str>>(
    index: &InvertedIndex,
    scorer: Bm25,
    query_terms: &[T],
    k: usize,
) -> Vec<Hit> {
    let dict = index.dictionary();
    maxscore_search_with(
        index,
        scorer,
        query_terms,
        k,
        CollectionStats::from_index(index),
        |term| dict.get(term).map(|t| dict.doc_freq(t)).unwrap_or(0),
        |_| true,
    )
}

/// MaxScore top-k over one **segment** of a larger collection.
///
/// `stats` and `df_of` supply the collection-wide overlay (live document
/// count, total length, per-term live document frequency) while postings
/// and document lengths stay segment-local; `live` filters tombstoned
/// documents out of candidacy. With monolithic stats, dictionary
/// doc-freqs, and an always-true filter this reduces to
/// [`maxscore_search`], and scores match the exhaustive evaluator
/// bit-for-bit because both delegate to [`Bm25::contribution_with`].
pub fn maxscore_search_with<T: AsRef<str>>(
    index: &InvertedIndex,
    scorer: Bm25,
    query_terms: &[T],
    k: usize,
    stats: CollectionStats,
    df_of: impl Fn(&str) -> u32,
    live: impl Fn(DocId) -> bool,
) -> Vec<Hit> {
    if k == 0 {
        return Vec::new();
    }
    // Aggregate query-side term frequencies and build cursors.
    let mut qtf: FxHashMap<TermId, u32> = FxHashMap::default();
    let dict = index.dictionary();
    for t in query_terms {
        if let Some(id) = dict.get(t.as_ref()) {
            *qtf.entry(id).or_default() += 1;
        }
    }
    let mut cursors: Vec<TermCursor<'_>> = qtf
        .into_iter()
        .filter_map(|(term, qtf)| {
            let postings = index.postings(term);
            if postings.is_empty() {
                return None;
            }
            let df = df_of(dict.term(term));
            // BM25 contribution is bounded by idf · (k1+1) · qtf (the tf
            // saturation limit with the smallest possible length norm).
            let max_contribution = f64::from(qtf) * scorer.idf(stats.docs, df) * (scorer.k1 + 1.0);
            Some(TermCursor {
                postings,
                pos: 0,
                df,
                qtf,
                max_contribution,
            })
        })
        .collect();
    if cursors.is_empty() {
        return Vec::new();
    }
    // Ascending by bound: prefix terms are the non-essential ones.
    cursors.sort_by(|a, b| a.max_contribution.total_cmp(&b.max_contribution));
    // prefix_bounds[i] = sum of bounds of cursors[0..i].
    let mut prefix_bounds = vec![0.0f64; cursors.len() + 1];
    for i in 0..cursors.len() {
        prefix_bounds[i + 1] = prefix_bounds[i] + cursors[i].max_contribution;
    }

    let mut topk: TopK<DocId> = TopK::new(k);
    // Number of non-essential (prefix) terms; grows as threshold rises.
    let mut first_essential = 0usize;

    loop {
        // Raise the essential boundary as far as the threshold allows.
        if let Some(theta) = topk.threshold() {
            while first_essential < cursors.len()
                && prefix_bounds[first_essential + 1] <= theta
            {
                first_essential += 1;
            }
        }
        if first_essential >= cursors.len() {
            break; // no essential terms left: nothing new can qualify
        }
        // Next candidate: smallest current doc among essential cursors.
        let mut pivot: Option<DocId> = None;
        for c in &cursors[first_essential..] {
            if let Some(p) = c.current() {
                pivot = Some(match pivot {
                    Some(d) if d <= p.doc => d,
                    _ => p.doc,
                });
            }
        }
        let Some(doc) = pivot else { break };

        // Tombstoned documents never qualify: advance past and move on.
        if !live(doc) {
            for c in cursors[first_essential..].iter_mut() {
                c.seek(doc);
                if c.current().is_some_and(|p| p.doc == doc) {
                    c.pos += 1;
                }
            }
            continue;
        }

        // Score essential terms for `doc`, advancing their cursors.
        let mut score = 0.0;
        let doc_len = index.doc_len(doc);
        for c in cursors[first_essential..].iter_mut() {
            c.seek(doc);
            if let Some(p) = c.current() {
                if p.doc == doc {
                    score += scorer.contribution_with(stats, doc_len, p.tf, c.df, c.qtf);
                    c.pos += 1;
                }
            }
        }
        // Add non-essential terms most-promising-first, abandoning the
        // candidate as soon as even full bounds cannot reach the threshold.
        for i in (0..first_essential).rev() {
            if let Some(theta) = topk.threshold() {
                if score + prefix_bounds[i + 1] <= theta {
                    score = f64::NEG_INFINITY; // cannot qualify
                    break;
                }
            }
            let c = &mut cursors[i];
            c.seek(doc);
            if let Some(p) = c.current() {
                if p.doc == doc {
                    score += scorer.contribution_with(stats, doc_len, p.tf, c.df, c.qtf);
                }
            }
        }
        if score > 0.0 {
            topk.push(score, doc);
        }
    }

    let mut hits: Vec<Hit> = topk
        .into_sorted()
        .into_iter()
        .map(|(score, doc)| Hit { doc, score })
        .collect();
    // TopK ties break by insertion order, which here is doc order — same
    // as the exhaustive Searcher. Re-sort defensively for determinism.
    hits.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.doc.cmp(&b.doc)));
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inverted::IndexBuilder;
    use crate::search::Searcher;
    use newslink_util::DetRng;

    fn random_index(seed: u64, docs: usize, vocab: usize) -> (InvertedIndex, Vec<Vec<String>>) {
        let mut rng = DetRng::new(seed);
        let mut b = IndexBuilder::new();
        let mut all = Vec::new();
        for _ in 0..docs {
            let len = rng.range(3, 30);
            let terms: Vec<String> = (0..len)
                .map(|_| format!("t{}", rng.zipf(vocab, 1.2)))
                .collect();
            b.add_document(&terms);
            all.push(terms);
        }
        (b.build(), all)
    }

    #[test]
    fn matches_exhaustive_search_exactly() {
        let (index, _) = random_index(1, 300, 50);
        let searcher = Searcher::new(&index, Bm25::default());
        for qseed in 0..20u64 {
            let mut rng = DetRng::new(1000 + qseed);
            let qlen = rng.range(1, 6);
            let query: Vec<String> = (0..qlen).map(|_| format!("t{}", rng.zipf(50, 1.2))).collect();
            let naive = searcher.search(&query, 10);
            let pruned = maxscore_search(&index, Bm25::default(), &query, 10);
            assert_eq!(naive.len(), pruned.len(), "query {query:?}");
            for (a, b) in naive.iter().zip(&pruned) {
                assert_eq!(a.doc, b.doc, "query {query:?}");
                assert!((a.score - b.score).abs() < 1e-9, "query {query:?}");
            }
        }
    }

    #[test]
    fn handles_unknown_terms() {
        let (index, _) = random_index(2, 50, 20);
        assert!(maxscore_search(&index, Bm25::default(), &["zzz"], 5).is_empty());
        let mixed = maxscore_search(&index, Bm25::default(), &["zzz", "t1"], 5);
        let naive = Searcher::new(&index, Bm25::default()).search(&["zzz", "t1"], 5);
        assert_eq!(mixed.len(), naive.len());
    }

    #[test]
    fn k_zero_and_empty_query() {
        let (index, _) = random_index(3, 50, 20);
        assert!(maxscore_search(&index, Bm25::default(), &["t1"], 0).is_empty());
        assert!(maxscore_search::<&str>(&index, Bm25::default(), &[], 10).is_empty());
    }

    #[test]
    fn small_k_prunes_but_stays_exact() {
        let (index, _) = random_index(4, 1000, 30);
        let query = ["t0", "t1", "t2", "t3", "t4"];
        let naive = Searcher::new(&index, Bm25::default()).search(&query, 1);
        let pruned = maxscore_search(&index, Bm25::default(), &query, 1);
        assert_eq!(naive[0].doc, pruned[0].doc);
        assert!((naive[0].score - pruned[0].score).abs() < 1e-9);
    }

    #[test]
    fn repeated_query_terms_weighted() {
        let (index, _) = random_index(5, 200, 20);
        let naive = Searcher::new(&index, Bm25::default()).search(&["t1", "t1", "t2"], 8);
        let pruned = maxscore_search(&index, Bm25::default(), &["t1", "t1", "t2"], 8);
        for (a, b) in naive.iter().zip(&pruned) {
            assert_eq!(a.doc, b.doc);
            assert!((a.score - b.score).abs() < 1e-9);
        }
    }

    #[test]
    fn overlay_with_tombstones_matches_filtered_exhaustive() {
        let (index, docs) = random_index(7, 200, 30);
        // Tombstone every fifth document.
        let dead: Vec<DocId> = (0..docs.len() as u32)
            .filter(|d| d % 5 == 0)
            .map(DocId)
            .collect();
        let is_live = |d: DocId| !dead.contains(&d);
        // Overlay stats over live docs only.
        let mut stats = CollectionStats::default();
        for d in 0..docs.len() as u32 {
            if is_live(DocId(d)) {
                stats.add_doc(index.doc_len(DocId(d)));
            }
        }
        let df_of = |term: &str| {
            index
                .postings_for(term)
                .iter()
                .filter(|p| is_live(p.doc))
                .count() as u32
        };
        let query = ["t0", "t1", "t2"];
        let pruned = maxscore_search_with(&index, Bm25::default(), &query, 10, stats, df_of, is_live);
        assert!(!pruned.is_empty());
        assert!(pruned.iter().all(|h| is_live(h.doc)));

        // Reference: rebuild an index from live docs only and search it.
        let mut b = IndexBuilder::new();
        let mut live_ids = Vec::new();
        for (i, terms) in docs.iter().enumerate() {
            if is_live(DocId(i as u32)) {
                live_ids.push(i as u32);
                b.add_document(terms);
            }
        }
        let fresh = b.build();
        let want = Searcher::new(&fresh, Bm25::default()).search(&query, 10);
        assert_eq!(pruned.len(), want.len());
        for (a, b) in pruned.iter().zip(&want) {
            assert_eq!(a.doc, DocId(live_ids[b.doc.index()]));
            assert!((a.score - b.score).abs() < 1e-9);
        }
    }

    #[test]
    fn seek_gallops_correctly() {
        let mut b = IndexBuilder::new();
        for i in 0..100 {
            if i % 3 == 0 {
                b.add_document(&["x"]);
            } else {
                b.add_document(&["y"]);
            }
        }
        let index = b.build();
        let naive = Searcher::new(&index, Bm25::default()).search(&["x", "y"], 10);
        let pruned = maxscore_search(&index, Bm25::default(), &["x", "y"], 10);
        assert_eq!(naive.len(), pruned.len());
        for (a, b) in naive.iter().zip(&pruned) {
            assert_eq!(a.doc, b.doc);
        }
    }
}
