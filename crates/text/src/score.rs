//! Similarity scoring functions over the inverted index.
//!
//! Two families, matching the paper's setup:
//!
//! - [`Bm25`] — the probabilistic relevance function Lucene 7.x uses by
//!   default (the paper's NS component scores with "BM25 with default
//!   settings provided by Lucene"); and
//! - [`TfIdfCosine`] — classic VSM cosine with `(1+ln tf)·ln(N/df)`
//!   weighting, provided for the scoring-compatibility claim of §VI.
//!
//! Both implement [`Scorer`], which scores one `(query-term, document)`
//! contribution at a time; the search executor accumulates contributions
//! term-at-a-time.

use crate::inverted::{DocId, InvertedIndex};

/// Per-(term, doc) additive scoring.
pub trait Scorer {
    /// Contribution of a query term with document frequency `df` occurring
    /// `tf` times in `doc`, given the query-side term count `qtf`.
    fn contribution(&self, index: &InvertedIndex, doc: DocId, tf: u32, df: u32, qtf: u32) -> f64;

    /// Optional document-level normalization applied after accumulation.
    fn normalize(&self, _index: &InvertedIndex, _doc: DocId, accumulated: f64) -> f64 {
        accumulated
    }
}

/// Okapi BM25 (Robertson & Zaragoza), Lucene defaults `k1 = 1.2`,
/// `b = 0.75`, with Lucene's non-negative idf formulation.
#[derive(Debug, Clone, Copy)]
pub struct Bm25 {
    /// Term-frequency saturation.
    pub k1: f64,
    /// Length normalization strength.
    pub b: f64,
}

impl Default for Bm25 {
    fn default() -> Self {
        Self { k1: 1.2, b: 0.75 }
    }
}

impl Bm25 {
    /// Lucene-style idf: `ln(1 + (N - df + 0.5) / (df + 0.5))`.
    pub fn idf(&self, n_docs: usize, df: u32) -> f64 {
        let n = n_docs as f64;
        let df = df as f64;
        (1.0 + (n - df + 0.5) / (df + 0.5)).ln()
    }

    /// BM25 contribution against explicit collection statistics.
    ///
    /// `stats` and `df` describe the whole collection while `doc_len` is the
    /// document's own token length, so a segmented index can score each
    /// segment locally under a global-stats overlay. The float operations
    /// here are the single source of truth — the [`Scorer`] impl delegates —
    /// which is what guarantees segmented scores are bit-identical to the
    /// monolithic path.
    pub fn contribution_with(
        &self,
        stats: crate::inverted::CollectionStats,
        doc_len: u32,
        tf: u32,
        df: u32,
        qtf: u32,
    ) -> f64 {
        self.contribution_from_partial(stats, doc_len, tf, self.term_partial(stats, df, qtf))
    }

    /// The document-independent factor of a term's BM25 contribution:
    /// `qtf · idf(N, df)`. Constant across every posting of a query term,
    /// so the pruned evaluators fold it once per term instead of once per
    /// posting.
    pub fn term_partial(&self, stats: crate::inverted::CollectionStats, df: u32, qtf: u32) -> f64 {
        qtf as f64 * self.idf(stats.docs, df)
    }

    /// Finish a contribution from a precomputed [`Self::term_partial`].
    ///
    /// `(qtf · idf) · sat` is exactly how `qtf as f64 * idf * sat`
    /// associates (f64 `*` is left-associative), so splitting the product
    /// at the term boundary is bit-identical to evaluating it whole —
    /// these float operations are the single source of truth that
    /// [`Self::contribution_with`] and the hot scan loops both delegate
    /// to.
    pub fn contribution_from_partial(
        &self,
        stats: crate::inverted::CollectionStats,
        doc_len: u32,
        tf: u32,
        partial: f64,
    ) -> f64 {
        if tf == 0 {
            return 0.0;
        }
        let tf = tf as f64;
        let avg = stats.avg_doc_len().max(1e-9);
        let norm = 1.0 - self.b + self.b * (doc_len as f64 / avg);
        let sat = tf * (self.k1 + 1.0) / (tf + self.k1 * norm);
        partial * sat
    }
}

impl Scorer for Bm25 {
    fn contribution(&self, index: &InvertedIndex, doc: DocId, tf: u32, df: u32, qtf: u32) -> f64 {
        self.contribution_with(
            crate::inverted::CollectionStats::from_index(index),
            index.doc_len(doc),
            tf,
            df,
            qtf,
        )
    }
}

/// TF-IDF cosine similarity with logarithmic term frequency.
///
/// The document norm is supplied through [`TfIdfCosine::doc_norms`]
/// precomputation so normalization stays O(1) per candidate.
#[derive(Debug, Clone)]
pub struct TfIdfCosine {
    norms: Vec<f64>,
}

impl TfIdfCosine {
    /// Precompute document vector norms for `index`.
    pub fn new(index: &InvertedIndex) -> Self {
        Self {
            norms: Self::doc_norms(index),
        }
    }

    /// `(1 + ln tf) · ln(N / df)` weight; 0 for `tf = 0`.
    pub fn weight(n_docs: usize, tf: u32, df: u32) -> f64 {
        if tf == 0 || df == 0 {
            return 0.0;
        }
        let idf = ((n_docs as f64) / (df as f64)).ln().max(0.0);
        (1.0 + (tf as f64).ln()) * idf
    }

    /// Per-document Euclidean norms of the TF-IDF vectors.
    pub fn doc_norms(index: &InvertedIndex) -> Vec<f64> {
        let n = index.doc_count();
        let mut sq = vec![0.0f64; n];
        let dict = index.dictionary();
        for t in 0..dict.len() {
            let term = crate::dictionary::TermId(t as u32);
            let df = dict.doc_freq(term);
            for p in index.postings(term) {
                let w = Self::weight(n, p.tf, df);
                sq[p.doc.index()] += w * w;
            }
        }
        sq.into_iter().map(f64::sqrt).collect()
    }
}

impl Scorer for TfIdfCosine {
    fn contribution(&self, index: &InvertedIndex, _doc: DocId, tf: u32, df: u32, qtf: u32) -> f64 {
        let n = index.doc_count();
        Self::weight(n, qtf, df) * Self::weight(n, tf, df)
    }

    fn normalize(&self, _index: &InvertedIndex, doc: DocId, accumulated: f64) -> f64 {
        let norm = self.norms[doc.index()];
        if norm > 0.0 {
            accumulated / norm
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inverted::IndexBuilder;

    fn sample() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        b.add_document(&["taliban", "attack", "pakistan", "attack"]);
        b.add_document(&["pakistan", "election", "results", "pakistan"]);
        b.add_document(&["cricket", "match", "score"]);
        b.build()
    }

    #[test]
    fn bm25_idf_decreases_with_df() {
        let s = Bm25::default();
        assert!(s.idf(100, 1) > s.idf(100, 10));
        assert!(s.idf(100, 10) > s.idf(100, 99));
        assert!(s.idf(100, 100) >= 0.0);
    }

    #[test]
    fn bm25_contribution_positive_and_saturating() {
        let idx = sample();
        let s = Bm25::default();
        let c1 = s.contribution(&idx, DocId(0), 1, 1, 1);
        let c2 = s.contribution(&idx, DocId(0), 2, 1, 1);
        let c10 = s.contribution(&idx, DocId(0), 10, 1, 1);
        assert!(c1 > 0.0);
        assert!(c2 > c1);
        // saturation: the step from 2→10 is less than 8× the step 0→1
        assert!(c10 - c2 < 8.0 * c1);
        assert_eq!(s.contribution(&idx, DocId(0), 0, 1, 1), 0.0);
    }

    #[test]
    fn bm25_rewards_rarity() {
        let idx = sample();
        let s = Bm25::default();
        // "taliban" (df=1) vs "pakistan" (df=2), same tf in same doc
        let rare = s.contribution(&idx, DocId(0), 1, 1, 1);
        let common = s.contribution(&idx, DocId(0), 1, 2, 1);
        assert!(rare > common);
    }

    #[test]
    fn bm25_length_normalization_penalizes_long_docs() {
        let mut b = IndexBuilder::new();
        b.add_document(&["x", "y"]);
        let long: Vec<&str> = std::iter::once("x")
            .chain(std::iter::repeat_n("z", 50))
            .collect();
        b.add_document(&long);
        let idx = b.build();
        let s = Bm25::default();
        let short = s.contribution(&idx, DocId(0), 1, 2, 1);
        let long = s.contribution(&idx, DocId(1), 1, 2, 1);
        assert!(short > long);
    }

    #[test]
    fn contribution_with_is_bit_identical_to_index_path() {
        let idx = sample();
        let stats = crate::inverted::CollectionStats::from_index(&idx);
        let s = Bm25::default();
        for doc in 0..3u32 {
            let doc = DocId(doc);
            for (tf, df, qtf) in [(1, 1, 1), (2, 2, 1), (3, 1, 2), (0, 1, 1)] {
                let a = s.contribution(&idx, doc, tf, df, qtf);
                let b = s.contribution_with(stats, idx.doc_len(doc), tf, df, qtf);
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn term_partial_split_is_bit_identical() {
        // The hot-loop kernel folds `qtf · idf` once per term and
        // multiplies by saturation per posting; the split must reproduce
        // the whole product bit for bit for every BM25 parameterization
        // the engine uses (prose b=0.75, node streams b=0).
        let idx = sample();
        let stats = crate::inverted::CollectionStats::from_index(&idx);
        for scorer in [Bm25::default(), Bm25 { k1: 1.2, b: 0.0 }] {
            for doc in 0..3u32 {
                let doc_len = idx.doc_len(DocId(doc));
                for (tf, df, qtf) in [(1u32, 1, 1), (2, 2, 1), (3, 1, 2), (7, 3, 3), (0, 1, 1)] {
                    // The pre-split expression, written out literally.
                    let whole = if tf == 0 {
                        0.0
                    } else {
                        let tf = tf as f64;
                        let avg = stats.avg_doc_len().max(1e-9);
                        let norm = 1.0 - scorer.b + scorer.b * (doc_len as f64 / avg);
                        let sat = tf * (scorer.k1 + 1.0) / (tf + scorer.k1 * norm);
                        qtf as f64 * scorer.idf(stats.docs, df) * sat
                    };
                    let partial = scorer.term_partial(stats, df, qtf);
                    let split = scorer.contribution_from_partial(stats, doc_len, tf, partial);
                    assert_eq!(whole.to_bits(), split.to_bits());
                    let via_with = scorer.contribution_with(stats, doc_len, tf, df, qtf);
                    assert_eq!(whole.to_bits(), via_with.to_bits());
                }
            }
        }
    }

    #[test]
    fn tfidf_weight_properties() {
        assert_eq!(TfIdfCosine::weight(10, 0, 1), 0.0);
        assert!(TfIdfCosine::weight(10, 1, 1) > TfIdfCosine::weight(10, 1, 5));
        assert!(TfIdfCosine::weight(10, 3, 1) > TfIdfCosine::weight(10, 1, 1));
        // df == N ⇒ idf = 0
        assert_eq!(TfIdfCosine::weight(10, 5, 10), 0.0);
    }

    #[test]
    fn tfidf_norms_positive_for_nonempty_docs() {
        let idx = sample();
        let norms = TfIdfCosine::doc_norms(&idx);
        assert_eq!(norms.len(), 3);
        assert!(norms.iter().all(|&n| n > 0.0));
    }

    #[test]
    fn tfidf_normalize_divides_by_norm() {
        let idx = sample();
        let s = TfIdfCosine::new(&idx);
        let raw = 2.0;
        let normed = s.normalize(&idx, DocId(0), raw);
        assert!(normed < raw);
        assert!(normed > 0.0);
    }

    #[test]
    fn tfidf_zero_norm_doc_scores_zero() {
        let mut b = IndexBuilder::new();
        b.add_document::<&str>(&[]);
        let idx = b.build();
        let s = TfIdfCosine::new(&idx);
        assert_eq!(s.normalize(&idx, DocId(0), 1.0), 0.0);
    }
}
