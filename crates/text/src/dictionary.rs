//! Term dictionary: string terms ↔ dense term ids with document
//! frequencies.

use newslink_util::FxHashMap;

/// Dense id of a term in a [`TermDictionary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

impl TermId {
    /// The term's index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Append-only term dictionary with per-term document frequency.
#[derive(Debug, Default, Clone)]
pub struct TermDictionary {
    terms: Vec<Box<str>>,
    lookup: FxHashMap<Box<str>, TermId>,
    doc_freq: Vec<u32>,
}

impl TermDictionary {
    /// Rebuild a dictionary from its serialized parts (codec use). Terms
    /// must be distinct; `doc_freq` must be aligned with `terms`.
    pub(crate) fn from_parts(terms: Vec<String>, doc_freq: Vec<u32>) -> Self {
        debug_assert_eq!(terms.len(), doc_freq.len());
        let mut lookup = FxHashMap::default();
        let terms: Vec<Box<str>> = terms.into_iter().map(Box::<str>::from).collect();
        for (i, t) in terms.iter().enumerate() {
            lookup.insert(t.clone(), TermId(i as u32));
        }
        Self {
            terms,
            lookup,
            doc_freq,
        }
    }

    /// Set a term's document frequency (codec use).
    #[cfg(test)]
    pub(crate) fn doc_freq_slice(&self) -> &[u32] {
        &self.doc_freq
    }
}

impl TermDictionary {
    /// Create an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a term.
    pub fn get_or_insert(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.lookup.get(term) {
            return id;
        }
        let id = TermId(
            u32::try_from(self.terms.len()).expect("dictionary overflow: more than 2^32 terms"),
        );
        let boxed: Box<str> = term.into();
        self.terms.push(boxed.clone());
        self.lookup.insert(boxed, id);
        self.doc_freq.push(0);
        id
    }

    /// Look up a term without interning.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.lookup.get(term).copied()
    }

    /// The term string for `id`.
    #[inline]
    pub fn term(&self, id: TermId) -> &str {
        &self.terms[id.index()]
    }

    /// Document frequency of `id`.
    #[inline]
    pub fn doc_freq(&self, id: TermId) -> u32 {
        self.doc_freq[id.index()]
    }

    /// Increment the document frequency of `id` (builder use).
    pub(crate) fn bump_doc_freq(&mut self, id: TermId) {
        self.doc_freq[id.index()] += 1;
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no terms are interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_and_resolve() {
        let mut d = TermDictionary::new();
        let a = d.get_or_insert("taliban");
        let b = d.get_or_insert("pakistan");
        assert_ne!(a, b);
        assert_eq!(d.term(a), "taliban");
        assert_eq!(d.get("pakistan"), Some(b));
        assert_eq!(d.get("missing"), None);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn doc_freq_counts() {
        let mut d = TermDictionary::new();
        let a = d.get_or_insert("x");
        assert_eq!(d.doc_freq(a), 0);
        d.bump_doc_freq(a);
        d.bump_doc_freq(a);
        assert_eq!(d.doc_freq(a), 2);
    }

    #[test]
    fn reinsert_is_idempotent() {
        let mut d = TermDictionary::new();
        let a = d.get_or_insert("x");
        let b = d.get_or_insert("x");
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }
}
