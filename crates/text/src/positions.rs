//! Positional indexing and phrase matching.
//!
//! Lucene indexes term positions so quoted phrases ("swat valley") match
//! as units instead of as independent bags; news queries are full of such
//! multi-word names. [`PositionalIndex`] wraps the ordinary
//! [`InvertedIndex`] (reusing all its scoring machinery) and stores, for
//! each posting, the term's positions within the document.

use newslink_util::{FxHashMap, TopK};

use crate::dictionary::TermId;
use crate::inverted::{DocId, IndexBuilder, InvertedIndex};
use crate::score::{Bm25, Scorer};
use crate::search::Hit;

/// An inverted index with per-posting term positions.
#[derive(Debug, Clone)]
pub struct PositionalIndex {
    inner: InvertedIndex,
    /// `positions[term][i]` — sorted positions of the term in the document
    /// of posting `i` (aligned with `inner.postings(term)`).
    positions: Vec<Vec<Vec<u32>>>,
}

/// Builder for [`PositionalIndex`].
#[derive(Debug, Default)]
pub struct PositionalBuilder {
    inner: IndexBuilder,
    positions: Vec<Vec<Vec<u32>>>,
}

impl PositionalBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a document; returns its id.
    pub fn add_document<S: AsRef<str>>(&mut self, terms: &[S]) -> DocId {
        // Record positions per term first (term ids may be new).
        let doc = self.inner.add_document(terms);
        let mut per_term: FxHashMap<TermId, Vec<u32>> = FxHashMap::default();
        let dict = self.inner.dictionary();
        for (pos, t) in terms.iter().enumerate() {
            let id = dict.get(t.as_ref()).expect("term was just indexed");
            per_term.entry(id).or_default().push(pos as u32);
        }
        for (term, positions) in per_term {
            if term.index() >= self.positions.len() {
                self.positions.resize_with(term.index() + 1, Vec::new);
            }
            self.positions[term.index()].push(positions);
        }
        doc
    }

    /// Freeze into an immutable positional index.
    pub fn build(mut self) -> PositionalIndex {
        let inner = self.inner.build();
        self.positions
            .resize_with(inner.dictionary().len(), Vec::new);
        // Alignment sanity: one position list per posting.
        debug_assert!((0..inner.dictionary().len()).all(|t| {
            inner.postings(TermId(t as u32)).len() == self.positions[t].len()
        }));
        PositionalIndex {
            inner,
            positions: self.positions,
        }
    }
}

impl PositionalIndex {
    /// The wrapped bag-of-words index (for ordinary scoring).
    pub fn inner(&self) -> &InvertedIndex {
        &self.inner
    }

    /// Positions of `term` within `doc`, empty when absent.
    pub fn positions(&self, term: &str, doc: DocId) -> &[u32] {
        let Some(id) = self.inner.dictionary().get(term) else {
            return &[];
        };
        match self.inner.postings(id).find(doc) {
            Some((i, _)) => &self.positions[id.index()][i],
            None => &[],
        }
    }

    /// Documents containing `phrase` as consecutive terms, with the number
    /// of phrase occurrences, sorted by doc id.
    pub fn phrase_docs<S: AsRef<str>>(&self, phrase: &[S]) -> Vec<(DocId, u32)> {
        if phrase.is_empty() {
            return Vec::new();
        }
        let dict = self.inner.dictionary();
        // Resolve ids; any unknown word ⇒ no matches.
        let Some(ids) = phrase
            .iter()
            .map(|t| dict.get(t.as_ref()))
            .collect::<Option<Vec<TermId>>>()
        else {
            return Vec::new();
        };
        // Drive from the rarest term's postings.
        let rare = *ids
            .iter()
            .min_by_key(|id| self.inner.postings(**id).len())
            .expect("non-empty phrase");
        let mut out = Vec::new();
        'doc: for p in self.inner.postings(rare) {
            let doc = p.doc;
            // Gather position lists for all words in this doc.
            let mut lists: Vec<&[u32]> = Vec::with_capacity(ids.len());
            for &id in &ids {
                match self.inner.postings(id).find(doc) {
                    Some((i, _)) => lists.push(&self.positions[id.index()][i]),
                    None => continue 'doc,
                }
            }
            // Count start positions s where word k sits at s + k.
            let mut count = 0u32;
            for &start in lists[0] {
                let ok = lists
                    .iter()
                    .enumerate()
                    .skip(1)
                    .all(|(k, l)| l.binary_search(&(start + k as u32)).is_ok());
                if ok {
                    count += 1;
                }
            }
            if count > 0 {
                out.push((doc, count));
            }
        }
        out
    }

    /// BM25 top-k where the phrase acts as one unit: the candidate set is
    /// phrase-matching documents and the "term frequency" is the phrase
    /// occurrence count (Lucene's `PhraseQuery` semantics, with the
    /// phrase's df being the number of matching documents).
    pub fn phrase_search<S: AsRef<str>>(&self, phrase: &[S], k: usize) -> Vec<Hit> {
        let matches = self.phrase_docs(phrase);
        if matches.is_empty() {
            return Vec::new();
        }
        let scorer = Bm25::default();
        let df = matches.len() as u32;
        let mut topk = TopK::new(k);
        for &(doc, tf) in &matches {
            let score = scorer.contribution(&self.inner, doc, tf, df, 1);
            topk.push(score, doc);
        }
        topk.into_sorted()
            .into_iter()
            .map(|(score, doc)| Hit { doc, score })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terms(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn sample() -> PositionalIndex {
        let mut b = PositionalBuilder::new();
        b.add_document(&terms("fighting in swat valley continued")); // 0
        b.add_document(&terms("the valley swat region")); // 1 (reversed)
        b.add_document(&terms("swat valley swat valley twice")); // 2
        b.add_document(&terms("unrelated words only")); // 3
        b.build()
    }

    #[test]
    fn positions_recorded() {
        let idx = sample();
        assert_eq!(idx.positions("swat", DocId(0)), &[2]);
        assert_eq!(idx.positions("swat", DocId(2)), &[0, 2]);
        assert!(idx.positions("swat", DocId(3)).is_empty());
        assert!(idx.positions("zzz", DocId(0)).is_empty());
    }

    #[test]
    fn phrase_matches_consecutive_only() {
        let idx = sample();
        let docs = idx.phrase_docs(&["swat", "valley"]);
        let ids: Vec<(u32, u32)> = docs.iter().map(|&(d, c)| (d.0, c)).collect();
        assert_eq!(ids, vec![(0, 1), (2, 2)], "doc 1 has the words reversed");
    }

    #[test]
    fn single_word_phrase_equals_term_match() {
        let idx = sample();
        let docs = idx.phrase_docs(&["valley"]);
        let ids: Vec<u32> = docs.iter().map(|&(d, _)| d.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn unknown_word_matches_nothing() {
        let idx = sample();
        assert!(idx.phrase_docs(&["swat", "zzz"]).is_empty());
        assert!(idx.phrase_docs::<&str>(&[]).is_empty());
    }

    #[test]
    fn phrase_search_ranks_by_occurrences() {
        let idx = sample();
        let hits = idx.phrase_search(&["swat", "valley"], 5);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].doc, DocId(2), "two occurrences outrank one");
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn inner_index_scores_normally() {
        let idx = sample();
        use crate::search::Searcher;
        let s = Searcher::new(idx.inner(), Bm25::default());
        let hits = s.search(&["valley"], 5);
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn phrase_matches_agree_with_naive_scan() {
        use newslink_util::DetRng;
        let mut rng = DetRng::new(77);
        let mut b = PositionalBuilder::new();
        let mut raw_docs: Vec<Vec<String>> = Vec::new();
        for _ in 0..80 {
            let len = rng.range(3, 20);
            let doc: Vec<String> = (0..len).map(|_| format!("w{}", rng.below(6))).collect();
            b.add_document(&doc);
            raw_docs.push(doc);
        }
        let idx = b.build();
        for _ in 0..30 {
            let plen = rng.range(2, 4);
            let phrase: Vec<String> = (0..plen).map(|_| format!("w{}", rng.below(6))).collect();
            let got = idx.phrase_docs(&phrase);
            // Naive scan.
            let mut want = Vec::new();
            for (d, doc) in raw_docs.iter().enumerate() {
                let mut count = 0u32;
                for w in doc.windows(plen) {
                    if w == phrase.as_slice() {
                        count += 1;
                    }
                }
                if count > 0 {
                    want.push((DocId(d as u32), count));
                }
            }
            assert_eq!(got, want, "phrase {phrase:?}");
        }
    }
}
