//! Text retrieval substrate (the paper's Apache Lucene substitute).
//!
//! A from-scratch inverted index with BM25 and TF-IDF cosine scoring and a
//! deterministic top-k executor. It plays three roles in the reproduction:
//! the standalone "Lucene" baseline of Table IV, the BOW half of NewsLink's
//! blended score (Equation 3), and — fed node-id terms instead of words —
//! the BON half as well (§VI "scoring compatibility").

#![deny(unsafe_code)]

pub mod codec;
pub mod dictionary;
pub mod inverted;
pub mod live;
pub mod maxscore;
pub mod positions;
pub mod score;
pub mod search;

pub use dictionary::{TermDictionary, TermId};
pub use inverted::{
    BlockMeta, CollectionStats, DocId, IndexBuilder, InvertedIndex, Posting, PostingCursor,
    PostingIter, PostingList, BLOCK_LEN,
};
pub use score::{Bm25, Scorer, TfIdfCosine};
pub use codec::{
    load_index, read_index, read_index_columnar, read_index_columnar_lazy, save_index,
    write_index, write_index_columnar,
};
pub use live::{GlobalId, SegmentedIndex};
pub use maxscore::{
    blended_scan, maxscore_search, maxscore_search_with, side_scan, Floor, ParallelStats,
    PruneStats, SharedFloor, SideSpec,
};
pub use positions::{PositionalBuilder, PositionalIndex};
pub use search::{query_tf, score_segment, Hit, Searcher};
