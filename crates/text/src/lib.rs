//! Text retrieval substrate (the paper's Apache Lucene substitute).
//!
//! A from-scratch inverted index with BM25 and TF-IDF cosine scoring and a
//! deterministic top-k executor. It plays three roles in the reproduction:
//! the standalone "Lucene" baseline of Table IV, the BOW half of NewsLink's
//! blended score (Equation 3), and — fed node-id terms instead of words —
//! the BON half as well (§VI "scoring compatibility").

pub mod codec;
pub mod dictionary;
pub mod inverted;
pub mod live;
pub mod maxscore;
pub mod positions;
pub mod score;
pub mod search;

pub use dictionary::{TermDictionary, TermId};
pub use inverted::{CollectionStats, DocId, IndexBuilder, InvertedIndex, Posting};
pub use score::{Bm25, Scorer, TfIdfCosine};
pub use codec::{load_index, read_index, save_index, write_index};
pub use live::{GlobalId, SegmentedIndex};
pub use maxscore::{maxscore_search, maxscore_search_with};
pub use positions::{PositionalBuilder, PositionalIndex};
pub use search::{query_tf, score_segment, Hit, Searcher};
