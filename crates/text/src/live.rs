//! Incremental (segmented) indexing — the Lucene architecture the paper's
//! NS component builds on.
//!
//! News corpora grow continuously; a production NS component cannot
//! rebuild its inverted index per document. Like Lucene, [`SegmentedIndex`]
//! buffers added documents, flushes them into immutable segments on
//! [`commit`], tracks deletions in a live-document set, and merges the
//! smallest segments when their number exceeds the merge policy's bound.
//! Queries run across all segments with *collection-global* statistics
//! (document frequency, average length), so scores are identical to a
//! single-segment index over the same live documents — a property the
//! tests pin down.
//!
//! [`commit`]: SegmentedIndex::commit

use newslink_util::{FxHashMap, FxHashSet, TopK};

use crate::inverted::{CollectionStats, DocId, IndexBuilder, InvertedIndex};
use crate::score::Bm25;
use crate::search::{query_tf, score_segment};

/// A stable external document id, preserved across merges.
pub type GlobalId = u64;

/// One immutable segment: a frozen index plus the global id of each local
/// document.
#[derive(Debug, Clone)]
struct Segment {
    index: InvertedIndex,
    globals: Vec<GlobalId>,
}

impl Segment {
    fn live_docs(&self, deleted: &FxHashSet<GlobalId>) -> usize {
        self.globals.iter().filter(|g| !deleted.contains(g)).count()
    }
}

/// An incrementally updatable index with Lucene-style segments.
#[derive(Debug)]
pub struct SegmentedIndex {
    segments: Vec<Segment>,
    buffer: Vec<(GlobalId, Vec<String>)>,
    deleted: FxHashSet<GlobalId>,
    next_id: GlobalId,
    /// Merge policy: merge the two smallest segments whenever more than
    /// this many exist after a flush.
    max_segments: usize,
}

impl SegmentedIndex {
    /// Create an empty index; `max_segments` bounds the segment count
    /// (minimum 1).
    pub fn new(max_segments: usize) -> Self {
        Self {
            segments: Vec::new(),
            buffer: Vec::new(),
            deleted: FxHashSet::default(),
            next_id: 0,
            max_segments: max_segments.max(1),
        }
    }

    /// Buffer a document for the next commit; returns its stable id.
    pub fn add_document<S: AsRef<str>>(&mut self, terms: &[S]) -> GlobalId {
        let id = self.next_id;
        self.next_id += 1;
        self.buffer
            .push((id, terms.iter().map(|t| t.as_ref().to_string()).collect()));
        id
    }

    /// Mark a document deleted (buffered or committed). Returns whether
    /// the id was known and live.
    pub fn delete_document(&mut self, id: GlobalId) -> bool {
        if id >= self.next_id || self.deleted.contains(&id) {
            return false;
        }
        self.deleted.insert(id);
        true
    }

    /// Live (non-deleted) document count, including uncommitted ones.
    pub fn doc_count(&self) -> usize {
        let buffered = self
            .buffer
            .iter()
            .filter(|(id, _)| !self.deleted.contains(id))
            .count();
        let committed: usize = self
            .segments
            .iter()
            .map(|s| s.live_docs(&self.deleted))
            .sum();
        buffered + committed
    }

    /// Number of on-disk-style segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Flush buffered documents into a new segment and apply the merge
    /// policy.
    pub fn commit(&mut self) {
        if !self.buffer.is_empty() {
            let mut builder = IndexBuilder::new();
            let mut globals = Vec::with_capacity(self.buffer.len());
            for (id, terms) in self.buffer.drain(..) {
                // Deleted-while-buffered documents are simply dropped.
                if self.deleted.contains(&id) {
                    continue;
                }
                builder.add_document(&terms);
                globals.push(id);
            }
            if !globals.is_empty() {
                self.segments.push(Segment {
                    index: builder.build(),
                    globals,
                });
            }
        }
        while self.segments.len() > self.max_segments {
            self.merge_smallest_pair();
        }
    }

    /// Merge the two segments with the fewest live documents, dropping
    /// deleted documents in the process (Lucene's expunge-on-merge).
    fn merge_smallest_pair(&mut self) {
        debug_assert!(self.segments.len() >= 2);
        let mut order: Vec<usize> = (0..self.segments.len()).collect();
        order.sort_by_key(|&i| self.segments[i].live_docs(&self.deleted));
        let (a, b) = (order[0].min(order[1]), order[0].max(order[1]));
        let seg_b = self.segments.remove(b);
        let seg_a = self.segments.remove(a);
        let merged = merge_two(&seg_a, &seg_b, &self.deleted);
        // Deletions inside the merged pair are now physically gone.
        for s in [&seg_a, &seg_b] {
            for g in &s.globals {
                self.deleted.remove(g);
            }
        }
        self.segments.push(merged);
    }

    /// BM25 top-k across all committed segments with collection-global
    /// statistics. Buffered (uncommitted) documents are not searchable,
    /// as in Lucene before a refresh.
    pub fn search<T: AsRef<str>>(&self, query_terms: &[T], k: usize) -> Vec<(GlobalId, f64)> {
        self.search_with(Bm25::default(), query_terms, k)
    }

    /// Top-k under an explicit BM25 parameterization.
    pub fn search_with<T: AsRef<str>>(
        &self,
        scorer: Bm25,
        query_terms: &[T],
        k: usize,
    ) -> Vec<(GlobalId, f64)> {
        let acc = self.score_all_with(scorer, query_terms);
        let mut entries: Vec<(GlobalId, f64)> = acc.into_iter().collect();
        entries.sort_unstable_by_key(|(g, _)| *g);
        let mut topk = TopK::new(k);
        for (g, s) in entries {
            topk.push(s, g);
        }
        topk.into_sorted().into_iter().map(|(s, g)| (g, s)).collect()
    }

    /// Score every live document matching at least one query term — the
    /// blending primitive (the incremental engine combines a BOW and a BON
    /// map, exactly like the frozen path).
    pub fn score_all_with<T: AsRef<str>>(
        &self,
        scorer: Bm25,
        query_terms: &[T],
    ) -> FxHashMap<GlobalId, f64> {
        // Global-stats overlay over LIVE docs only, so scores equal a fresh
        // single-segment index over the same documents.
        let mut stats = CollectionStats::default();
        for seg in &self.segments {
            for (local, &g) in seg.globals.iter().enumerate() {
                if !self.deleted.contains(&g) {
                    stats.add_doc(seg.index.doc_len(DocId(local as u32)));
                }
            }
        }
        if stats.docs == 0 {
            return FxHashMap::default();
        }

        // Query-side tfs, built once and shared across segments.
        let qtf = query_tf(query_terms);
        // Global df per query term (live docs only).
        let mut global_df: FxHashMap<&str, u32> = FxHashMap::default();
        for &term in qtf.keys() {
            let mut df = 0u32;
            for seg in &self.segments {
                for p in seg.index.postings_for(term) {
                    if !self.deleted.contains(&seg.globals[p.doc.index()]) {
                        df += 1;
                    }
                }
            }
            if df > 0 {
                global_df.insert(term, df);
            }
        }

        let mut acc: FxHashMap<GlobalId, f64> = FxHashMap::default();
        for seg in &self.segments {
            let local = score_segment(scorer, &seg.index, stats, &qtf, &global_df, |d| {
                !self.deleted.contains(&seg.globals[d.index()])
            });
            for (d, s) in local {
                acc.insert(seg.globals[d.index()], s);
            }
        }
        acc
    }
}

/// Merge two segments into one, dropping deleted documents.
fn merge_two(a: &Segment, b: &Segment, deleted: &FxHashSet<GlobalId>) -> Segment {
    // Rebuild via term streams reconstructed from postings: walk each
    // source document's terms with frequencies. Term order within a
    // document does not matter for bag-of-words scoring.
    let mut builder = IndexBuilder::new();
    let mut globals = Vec::new();
    for seg in [a, b] {
        let dict = seg.index.dictionary();
        // doc-local term lists
        let mut per_doc: Vec<Vec<(String, u32)>> =
            (0..seg.index.doc_count()).map(|_| Vec::new()).collect();
        for t in 0..dict.len() {
            let term = crate::dictionary::TermId(t as u32);
            let text = dict.term(term).to_string();
            for p in seg.index.postings(term) {
                per_doc[p.doc.index()].push((text.clone(), p.tf));
            }
        }
        for (local, terms) in per_doc.into_iter().enumerate() {
            let g = seg.globals[local];
            if deleted.contains(&g) {
                continue;
            }
            let mut flat: Vec<&str> = Vec::new();
            for (t, tf) in &terms {
                for _ in 0..*tf {
                    flat.push(t);
                }
            }
            builder.add_document(&flat);
            globals.push(g);
        }
    }
    Segment {
        index: builder.build(),
        globals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::Searcher;

    fn terms(s: &str) -> Vec<String> {
        s.split_whitespace().map(|w| w.to_string()).collect()
    }

    #[test]
    fn add_commit_search_roundtrip() {
        let mut idx = SegmentedIndex::new(4);
        let a = idx.add_document(&terms("taliban attack pakistan"));
        let b = idx.add_document(&terms("cricket match score"));
        assert_eq!(idx.doc_count(), 2);
        assert!(idx.search(&["taliban"], 5).is_empty(), "uncommitted invisible");
        idx.commit();
        let hits = idx.search(&["taliban"], 5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, a);
        let _ = b;
    }

    #[test]
    fn global_ids_stable_across_commits_and_merges() {
        let mut idx = SegmentedIndex::new(1); // aggressive merging
        let mut ids = Vec::new();
        for i in 0..20 {
            ids.push(idx.add_document(&terms(&format!("common word{i}"))));
            if i % 3 == 0 {
                idx.commit();
            }
        }
        idx.commit();
        assert_eq!(idx.segment_count(), 1);
        for (i, &id) in ids.iter().enumerate() {
            let hits = idx.search(&[format!("word{i}")], 2);
            assert_eq!(hits.len(), 1);
            assert_eq!(hits[0].0, id, "doc {i} lost its id");
        }
    }

    #[test]
    fn deletions_remove_from_results() {
        let mut idx = SegmentedIndex::new(4);
        let a = idx.add_document(&terms("shared text alpha"));
        let b = idx.add_document(&terms("shared text beta"));
        idx.commit();
        assert!(idx.delete_document(a));
        assert!(!idx.delete_document(a), "double delete");
        assert!(!idx.delete_document(999), "unknown id");
        let hits = idx.search(&["shared"], 5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, b);
        assert_eq!(idx.doc_count(), 1);
    }

    #[test]
    fn delete_while_buffered_never_lands() {
        let mut idx = SegmentedIndex::new(4);
        let a = idx.add_document(&terms("ephemeral doc"));
        assert!(idx.delete_document(a));
        idx.commit();
        assert_eq!(idx.doc_count(), 0);
        assert!(idx.search(&["ephemeral"], 5).is_empty());
    }

    #[test]
    fn merge_policy_bounds_segment_count() {
        let mut idx = SegmentedIndex::new(3);
        for i in 0..10 {
            idx.add_document(&terms(&format!("doc number{i}")));
            idx.commit();
        }
        assert!(idx.segment_count() <= 3);
        assert_eq!(idx.doc_count(), 10);
    }

    #[test]
    fn scores_match_single_segment_index() {
        // The invariant that makes segments transparent: global-stat
        // scoring across segments == one fresh index over the live docs.
        let docs = [
            "taliban attack pakistan border",
            "pakistan election results announced",
            "cricket final pakistan won",
            "taliban conflict continues",
            "weather sunny tomorrow",
        ];
        let mut seg = SegmentedIndex::new(2);
        for d in docs {
            seg.add_document(&terms(d));
            seg.commit(); // one segment each, then merged down to 2
        }
        let mut flat = IndexBuilder::new();
        for d in docs {
            flat.add_document(&terms(d));
        }
        let flat = flat.build();
        let searcher = Searcher::new(&flat, Bm25::default());
        for q in [vec!["taliban"], vec!["pakistan", "taliban"], vec!["cricket", "final"]] {
            let seg_hits = seg.search(&q, 10);
            let flat_hits = searcher.search(&q, 10);
            assert_eq!(seg_hits.len(), flat_hits.len(), "query {q:?}");
            for (s, f) in seg_hits.iter().zip(&flat_hits) {
                assert_eq!(s.0, u64::from(f.doc.0), "query {q:?}");
                assert!((s.1 - f.score).abs() < 1e-9, "query {q:?}: {} vs {}", s.1, f.score);
            }
        }
    }

    #[test]
    fn scores_match_after_deletions_and_merge() {
        let docs = [
            "alpha beta gamma",
            "alpha alpha delta",
            "beta delta epsilon",
            "alpha zeta",
        ];
        let mut seg = SegmentedIndex::new(1);
        let mut ids = Vec::new();
        for d in docs {
            ids.push(seg.add_document(&terms(d)));
            seg.commit();
        }
        seg.delete_document(ids[1]);
        seg.commit(); // merge expunges the deletion

        // Fresh index over live docs (0, 2, 3).
        let mut flat = IndexBuilder::new();
        for (i, d) in docs.iter().enumerate() {
            if i != 1 {
                flat.add_document(&terms(d));
            }
        }
        let flat = flat.build();
        let searcher = Searcher::new(&flat, Bm25::default());
        let live_globals = [ids[0], ids[2], ids[3]];
        for q in [vec!["alpha"], vec!["beta", "delta"]] {
            let seg_hits = seg.search(&q, 10);
            let flat_hits = searcher.search(&q, 10);
            assert_eq!(seg_hits.len(), flat_hits.len(), "query {q:?}");
            for (s, f) in seg_hits.iter().zip(&flat_hits) {
                assert_eq!(s.0, live_globals[f.doc.index()], "query {q:?}");
                assert!((s.1 - f.score).abs() < 1e-9, "query {q:?}");
            }
        }
    }

    #[test]
    fn empty_index_searches_empty() {
        let idx = SegmentedIndex::new(2);
        assert!(idx.search(&["anything"], 5).is_empty());
        assert_eq!(idx.doc_count(), 0);
        assert_eq!(idx.segment_count(), 0);
    }
}
