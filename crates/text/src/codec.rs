//! Binary persistence of inverted indexes.
//!
//! A versioned, varint-compressed on-disk format in the spirit of Lucene's
//! index files: the dictionary (terms + document frequencies), per-term
//! posting lists with delta-coded document ids, and the document-length
//! table. Round-trips byte-exactly through [`write_index`] /
//! [`read_index`].
//!
//! Layout (all integers LEB128 unless noted):
//!
//! ```text
//! magic    "NLIX"           4 raw bytes
//! version  u8               raw byte (currently 1)
//! n_terms  varint
//! terms    n_terms × (len-prefixed UTF-8, doc_freq varint)
//! postings n_terms × (count varint, count × (doc_delta varint, tf varint))
//! n_docs   varint
//! doc_len  n_docs × varint
//! ```

use std::io::{self, Read, Write};
use std::path::Path;

use newslink_util::varint;

use crate::dictionary::{TermDictionary, TermId};
use crate::inverted::{DocId, InvertedIndex, Posting};

const MAGIC: &[u8; 4] = b"NLIX";
const VERSION: u8 = 1;
/// Defensive cap on term length when decoding untrusted input.
const MAX_TERM_BYTES: usize = 1 << 16;

/// Serialize `index` to `out`.
pub fn write_index<W: Write>(index: &InvertedIndex, out: &mut W) -> io::Result<()> {
    out.write_all(MAGIC)?;
    out.write_all(&[VERSION])?;
    let dict = index.dictionary();
    varint::write_u64(out, dict.len() as u64)?;
    for t in 0..dict.len() {
        let term = TermId(t as u32);
        varint::write_str(out, dict.term(term))?;
        varint::write_u32(out, dict.doc_freq(term))?;
    }
    for t in 0..dict.len() {
        let postings = index.postings(TermId(t as u32));
        varint::write_u64(out, postings.len() as u64)?;
        let mut prev = 0u32;
        for p in postings {
            varint::write_u32(out, p.doc.0 - prev)?;
            varint::write_u32(out, p.tf)?;
            prev = p.doc.0;
        }
    }
    varint::write_u64(out, index.doc_count() as u64)?;
    for d in 0..index.doc_count() {
        varint::write_u32(out, index.doc_len(DocId(d as u32)))?;
    }
    Ok(())
}

/// Deserialize an index from `input`.
pub fn read_index<R: Read>(input: &mut R) -> io::Result<InvertedIndex> {
    let mut magic = [0u8; 4];
    input.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let mut version = [0u8; 1];
    input.read_exact(&mut version)?;
    if version[0] != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported index version {}", version[0]),
        ));
    }
    let n_terms = varint::read_u64(input)? as usize;
    let mut terms = Vec::with_capacity(n_terms.min(1 << 20));
    let mut doc_freq = Vec::with_capacity(n_terms.min(1 << 20));
    for _ in 0..n_terms {
        terms.push(varint::read_str(input, MAX_TERM_BYTES)?);
        doc_freq.push(varint::read_u32(input)?);
    }
    let mut postings: Vec<Vec<Posting>> = Vec::with_capacity(n_terms.min(1 << 20));
    for _ in 0..n_terms {
        let count = varint::read_u64(input)? as usize;
        let mut list = Vec::with_capacity(count.min(1 << 20));
        let mut prev = 0u32;
        for i in 0..count {
            let delta = varint::read_u32(input)?;
            let tf = varint::read_u32(input)?;
            let doc = if i == 0 { delta } else {
                prev.checked_add(delta).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "doc id overflow")
                })?
            };
            list.push(Posting {
                doc: DocId(doc),
                tf,
            });
            prev = doc;
        }
        postings.push(list);
    }
    let n_docs = varint::read_u64(input)? as usize;
    let mut doc_len = Vec::with_capacity(n_docs.min(1 << 24));
    let mut total_len = 0u64;
    for _ in 0..n_docs {
        let l = varint::read_u32(input)?;
        total_len += u64::from(l);
        doc_len.push(l);
    }
    // Structural validation: postings must reference existing docs.
    for list in &postings {
        if let Some(last) = list.last() {
            if last.doc.index() >= n_docs {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "posting references unknown document",
                ));
            }
        }
    }
    Ok(InvertedIndex {
        dict: TermDictionary::from_parts(terms, doc_freq),
        postings,
        doc_len,
        total_len,
    })
}

/// Save an index to a file.
pub fn save_index(index: &InvertedIndex, path: &Path) -> io::Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    write_index(index, &mut f)?;
    f.flush()
}

/// Load an index from a file.
pub fn load_index(path: &Path) -> io::Result<InvertedIndex> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    read_index(&mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inverted::IndexBuilder;
    use crate::score::Bm25;
    use crate::search::Searcher;
    use newslink_util::DetRng;

    fn sample() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        b.add_document(&["taliban", "attack", "pakistan", "attack"]);
        b.add_document(&["pakistan", "election", "results"]);
        b.add_document::<&str>(&[]);
        b.add_document(&["swat", "valley", "clashes"]);
        b.build()
    }

    #[test]
    fn round_trip_preserves_structure() {
        let idx = sample();
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        let back = read_index(&mut &buf[..]).unwrap();
        assert_eq!(back.doc_count(), idx.doc_count());
        assert_eq!(back.avg_doc_len(), idx.avg_doc_len());
        let d = idx.dictionary();
        let bd = back.dictionary();
        assert_eq!(bd.len(), d.len());
        for t in 0..d.len() {
            let term = TermId(t as u32);
            assert_eq!(bd.term(term), d.term(term));
            assert_eq!(bd.doc_freq(term), d.doc_freq(term));
            assert_eq!(back.postings(term), idx.postings(term));
        }
        assert_eq!(bd.doc_freq_slice(), d.doc_freq_slice());
    }

    #[test]
    fn round_trip_preserves_scores() {
        let mut rng = DetRng::new(7);
        let mut b = IndexBuilder::new();
        for _ in 0..200 {
            let len = rng.range(2, 20);
            let terms: Vec<String> =
                (0..len).map(|_| format!("w{}", rng.zipf(60, 1.3))).collect();
            b.add_document(&terms);
        }
        let idx = b.build();
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        let back = read_index(&mut &buf[..]).unwrap();
        let s1 = Searcher::new(&idx, Bm25::default());
        let s2 = Searcher::new(&back, Bm25::default());
        for q in [vec!["w0", "w3"], vec!["w1"], vec!["w2", "w2", "w7"]] {
            let a = s1.search(&q, 10);
            let b = s2.search(&q, 10);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.doc, y.doc);
                assert!((x.score - y.score).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn empty_index_round_trips() {
        let idx = IndexBuilder::new().build();
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        let back = read_index(&mut &buf[..]).unwrap();
        assert_eq!(back.doc_count(), 0);
        assert_eq!(back.dictionary().len(), 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_index(&sample(), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(read_index(&mut &buf[..]).is_err());
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        write_index(&sample(), &mut buf).unwrap();
        buf[4] = 99;
        assert!(read_index(&mut &buf[..]).is_err());
    }

    #[test]
    fn truncated_stream_rejected() {
        let mut buf = Vec::new();
        write_index(&sample(), &mut buf).unwrap();
        for cut in [3, 5, buf.len() / 2, buf.len() - 1] {
            assert!(
                read_index(&mut &buf[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn file_round_trip() {
        let idx = sample();
        let dir = std::env::temp_dir().join("newslink_codec_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.nlix");
        save_index(&idx, &path).unwrap();
        let back = load_index(&path).unwrap();
        assert_eq!(back.doc_count(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compression_is_effective_on_dense_postings() {
        // 1000 docs sharing one term: deltas of 1 → ~2 bytes/posting.
        let mut b = IndexBuilder::new();
        for _ in 0..1000 {
            b.add_document(&["common"]);
        }
        let idx = b.build();
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        assert!(
            buf.len() < 1000 * 4,
            "expected delta compression, got {} bytes",
            buf.len()
        );
    }
}
