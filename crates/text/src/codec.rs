//! Binary persistence of inverted indexes.
//!
//! A versioned, varint-compressed on-disk format in the spirit of Lucene's
//! index files: the dictionary (terms + document frequencies), the
//! document-length table, and per-term posting lists in their in-memory
//! block-compressed form. Round-trips byte-exactly through [`write_index`]
//! / [`read_index`].
//!
//! Version 2 layout (all integers LEB128 unless noted):
//!
//! ```text
//! magic    "NLIX"           4 raw bytes
//! version  u8               raw byte (currently 2)
//! n_terms  varint
//! terms    n_terms × (len-prefixed UTF-8, doc_freq varint)
//! n_docs   varint
//! doc_len  n_docs × varint
//! postings n_terms × list
//! list     count varint, then ceil(count / BLOCK_LEN) blocks
//! block    last_doc varint, max_tf varint, n_bytes varint,
//!          n_bytes raw delta-coded (doc_delta, tf) varint pairs
//! ```
//!
//! Blocks are persisted exactly as [`crate::inverted::PostingList`] holds
//! them in memory, so loading a segment is a validated copy, not a
//! re-encode. Every block is re-decoded on read and checked against its
//! own metadata (strictly ascending doc ids below `n_docs`, recomputed
//! `last_doc`/`max_tf` matching, no trailing bytes) so torn or bit-flipped
//! blocks surface as [`io::ErrorKind::InvalidData`] — which the snapshot
//! layer maps onto its typed corrupt-frame error.
//!
//! Version 1 (uncompressed delta streams, postings before the doc-length
//! table) is still readable; writers always emit version 2.

use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::OnceLock;

use newslink_util::{varint, Bytes};

use crate::dictionary::{TermDictionary, TermId};
use crate::inverted::{BlockMeta, DocId, InvertedIndex, Posting, PostingList, BLOCK_LEN};

const MAGIC: &[u8; 4] = b"NLIX";
const VERSION: u8 = 2;
/// Defensive cap on term length when decoding untrusted input.
const MAX_TERM_BYTES: usize = 1 << 16;
/// Defensive cap on one block's byte length: `BLOCK_LEN` pairs of
/// maximal 5-byte varints, rounded up.
const MAX_BLOCK_BYTES: usize = BLOCK_LEN * 10 + 16;

fn corrupt(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Serialize `index` to `out`.
pub fn write_index<W: Write>(index: &InvertedIndex, out: &mut W) -> io::Result<()> {
    out.write_all(MAGIC)?;
    out.write_all(&[VERSION])?;
    let dict = index.dictionary();
    varint::write_u64(out, dict.len() as u64)?;
    for t in 0..dict.len() {
        let term = TermId(t as u32);
        varint::write_str(out, dict.term(term))?;
        varint::write_u32(out, dict.doc_freq(term))?;
    }
    varint::write_u64(out, index.doc_count() as u64)?;
    for d in 0..index.doc_count() {
        varint::write_u32(out, index.doc_len(DocId(d as u32)))?;
    }
    for t in 0..dict.len() {
        let postings = index.postings(TermId(t as u32));
        varint::write_u64(out, postings.len() as u64)?;
        for (i, meta) in postings.blocks().iter().enumerate() {
            let bytes = postings.block_bytes(i);
            varint::write_u32(out, meta.last_doc)?;
            varint::write_u32(out, meta.max_tf)?;
            varint::write_u64(out, bytes.len() as u64)?;
            out.write_all(bytes)?;
        }
    }
    Ok(())
}

/// Deserialize an index from `input`.
pub fn read_index<R: Read>(input: &mut R) -> io::Result<InvertedIndex> {
    let mut magic = [0u8; 4];
    input.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let mut version = [0u8; 1];
    input.read_exact(&mut version)?;
    let n_terms = varint::read_u64(input)? as usize;
    let mut terms = Vec::with_capacity(n_terms.min(1 << 20));
    let mut doc_freq = Vec::with_capacity(n_terms.min(1 << 20));
    for _ in 0..n_terms {
        terms.push(varint::read_str(input, MAX_TERM_BYTES)?);
        doc_freq.push(varint::read_u32(input)?);
    }
    let dict = TermDictionary::from_parts(terms, doc_freq);
    match version[0] {
        1 => read_v1_body(input, dict, n_terms),
        2 => read_v2_body(input, dict, n_terms),
        v => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported index version {v}"),
        )),
    }
}

/// Version 2 body: doc-length table, then block-compressed lists.
fn read_v2_body<R: Read>(
    input: &mut R,
    dict: TermDictionary,
    n_terms: usize,
) -> io::Result<InvertedIndex> {
    let (doc_len, total_len) = read_doc_lens(input)?;
    let n_docs = doc_len.len();
    let mut postings: Vec<PostingList> = Vec::with_capacity(n_terms.min(1 << 20));
    for _ in 0..n_terms {
        let count = varint::read_u64(input)? as usize;
        let n_blocks = count.div_ceil(BLOCK_LEN);
        let mut data = Vec::new();
        let mut blocks = Vec::with_capacity(n_blocks.min(1 << 20));
        let mut prev = 0u32;
        let mut first = true;
        for b in 0..n_blocks {
            let last_doc = varint::read_u32(input)?;
            let max_tf = varint::read_u32(input)?;
            let n_bytes = varint::read_u64(input)? as usize;
            if n_bytes > MAX_BLOCK_BYTES {
                return Err(corrupt("posting block oversized"));
            }
            let mut bytes = vec![0u8; n_bytes];
            input.read_exact(&mut bytes)?;
            // Validate the block against its own metadata before trusting
            // it as an in-memory PostingList block.
            let block_len = if b + 1 == n_blocks {
                count - b * BLOCK_LEN
            } else {
                BLOCK_LEN
            };
            let mut r: &[u8] = &bytes;
            let mut seen_max_tf = 0u32;
            // The block's framing was intact, so running out of bytes
            // mid-decode is corruption, not a short stream.
            let torn = |_| corrupt("torn posting block");
            for _ in 0..block_len {
                let delta = varint::read_u32(&mut r).map_err(torn)?;
                let tf = varint::read_u32(&mut r).map_err(torn)?;
                let doc = if first {
                    first = false;
                    delta
                } else {
                    if delta == 0 {
                        return Err(corrupt("posting block repeats a doc id"));
                    }
                    prev.checked_add(delta)
                        .ok_or_else(|| corrupt("doc id overflow"))?
                };
                if doc as usize >= n_docs {
                    return Err(corrupt("posting references unknown document"));
                }
                seen_max_tf = seen_max_tf.max(tf);
                prev = doc;
            }
            if !r.is_empty() {
                return Err(corrupt("trailing bytes in posting block"));
            }
            if prev != last_doc {
                return Err(corrupt("posting block last_doc mismatch"));
            }
            if seen_max_tf != max_tf {
                return Err(corrupt("posting block max_tf mismatch"));
            }
            let offset = u32::try_from(data.len())
                .map_err(|_| corrupt("posting list exceeds 4 GiB"))?;
            blocks.push(BlockMeta {
                last_doc,
                max_tf,
                offset,
            });
            data.extend_from_slice(&bytes);
        }
        postings.push(PostingList::from_raw_parts(Bytes::from_vec(data), blocks, count));
    }
    Ok(InvertedIndex::from_owned_parts(dict, postings, doc_len, total_len))
}

/// Version 1 body: uncompressed delta streams, then the doc-length table.
fn read_v1_body<R: Read>(
    input: &mut R,
    dict: TermDictionary,
    n_terms: usize,
) -> io::Result<InvertedIndex> {
    let mut lists: Vec<Vec<Posting>> = Vec::with_capacity(n_terms.min(1 << 20));
    for _ in 0..n_terms {
        let count = varint::read_u64(input)? as usize;
        let mut list = Vec::with_capacity(count.min(1 << 20));
        let mut prev = 0u32;
        for i in 0..count {
            let delta = varint::read_u32(input)?;
            let tf = varint::read_u32(input)?;
            let doc = if i == 0 {
                delta
            } else {
                prev.checked_add(delta)
                    .ok_or_else(|| corrupt("doc id overflow"))?
            };
            list.push(Posting {
                doc: DocId(doc),
                tf,
            });
            prev = doc;
        }
        lists.push(list);
    }
    let (doc_len, total_len) = read_doc_lens(input)?;
    // Structural validation: postings must reference existing docs.
    for list in &lists {
        if let Some(last) = list.last() {
            if last.doc.index() >= doc_len.len() {
                return Err(corrupt("posting references unknown document"));
            }
        }
    }
    Ok(InvertedIndex::from_owned_parts(
        dict,
        lists.iter().map(|l| PostingList::from_postings(l)).collect(),
        doc_len,
        total_len,
    ))
}

fn read_doc_lens<R: Read>(input: &mut R) -> io::Result<(Vec<u32>, u64)> {
    let n_docs = varint::read_u64(input)? as usize;
    let mut doc_len = Vec::with_capacity(n_docs.min(1 << 24));
    let mut total_len = 0u64;
    for _ in 0..n_docs {
        let l = varint::read_u32(input)?;
        total_len += u64::from(l);
        doc_len.push(l);
    }
    Ok((doc_len, total_len))
}

// ---------------------------------------------------------------------------
// Columnar (mmap-native) layout — the inverted-index section of segment
// format v4 (`newslink_core::persist`).
//
// Unlike the varint stream above, every table here is fixed-width
// little-endian and addressed by offset, so a reader over a memory
// mapping parses three small tables and then *slices* the posting data
// blob in place — no per-posting decode walk at load time. Layout:
//
// ```text
// header    n_terms u32, n_docs u32, total_len u64,
//           term_blob_len u32, n_blocks u32, data_len u32     (28 bytes)
// doc_len   n_docs × u32
// sorted    n_terms × u32 — term ids in ascending term-byte order
// terms     n_terms × {df u32, count u32, term_end u32,
//                      block_end u32, data_end u32}           (20 bytes each)
// term blob concatenated UTF-8 (term i = blob[term_end[i-1]..term_end[i]])
// blocks    n_blocks × {last_doc u32, max_tf u32, offset u32} (12 bytes each)
// data      concatenated per-list delta streams                (sliced zero-copy)
// ```
//
// `*_end` columns are cumulative end offsets; entry `i`'s start is entry
// `i-1`'s end. The `sorted` permutation lets a reader resolve a term
// by binary search over the blob *in place* — no dictionary hashmap
// needs to exist for a lookup to work, which is what makes the lazy
// mapped representation ([`read_index_columnar_lazy`]) O(1) to open.
//
// Integrity is the caller's job: the section travels inside a
// CRC-framed block of the v4 snapshot. `read_index_columnar` (eager)
// re-validates everything later slicing relies on (monotone offsets,
// in-bounds ends); the lazy reader checks only the header-derived table
// extents and trusts the CRC for per-entry values, clamping offsets on
// access so even a CRC collision cannot read out of bounds.
// ---------------------------------------------------------------------------

/// Fixed-width byte cost of one term-table entry.
const TERM_ENTRY_BYTES: usize = 20;
/// Fixed-width byte cost of one block-table entry.
const BLOCK_ENTRY_BYTES: usize = 12;
/// Columnar header length.
const COLUMNAR_HEADER_BYTES: usize = 28;

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serialize `index` in the columnar layout.
pub fn write_index_columnar(index: &InvertedIndex, out: &mut Vec<u8>) -> io::Result<()> {
    let dict = index.dictionary();
    let n_terms = dict.len();
    let too_big = || corrupt("columnar section exceeds 4 GiB");
    let as_u32 = |v: usize| u32::try_from(v).map_err(|_| too_big());

    let mut term_blob_len = 0usize;
    let mut n_blocks = 0usize;
    let mut data_len = 0usize;
    for t in 0..n_terms {
        let term = TermId(t as u32);
        term_blob_len += dict.term(term).len();
        let list = index.postings(term);
        n_blocks += list.blocks().len();
        data_len += list.raw_data().len();
    }

    push_u32(out, as_u32(n_terms)?);
    push_u32(out, as_u32(index.doc_count())?);
    out.extend_from_slice(&index.total_len().to_le_bytes());
    push_u32(out, as_u32(term_blob_len)?);
    push_u32(out, as_u32(n_blocks)?);
    push_u32(out, as_u32(data_len)?);

    for d in 0..index.doc_count() {
        push_u32(out, index.doc_len(DocId(d as u32)));
    }

    // Sorted permutation: term ids in ascending term-byte order, so a
    // mapped reader can binary-search the blob without a dictionary.
    let mut sorted: Vec<u32> = (0..n_terms as u32).collect();
    sorted.sort_by(|&a, &b| dict.term(TermId(a)).as_bytes().cmp(dict.term(TermId(b)).as_bytes()));
    for id in &sorted {
        push_u32(out, *id);
    }

    let (mut term_end, mut block_end, mut data_end) = (0usize, 0usize, 0usize);
    for t in 0..n_terms {
        let term = TermId(t as u32);
        let list = index.postings(term);
        term_end += dict.term(term).len();
        block_end += list.blocks().len();
        data_end += list.raw_data().len();
        push_u32(out, dict.doc_freq(term));
        push_u32(out, as_u32(list.len())?);
        push_u32(out, as_u32(term_end)?);
        push_u32(out, as_u32(block_end)?);
        push_u32(out, as_u32(data_end)?);
    }
    for t in 0..n_terms {
        out.extend_from_slice(dict.term(TermId(t as u32)).as_bytes());
    }
    for t in 0..n_terms {
        for meta in index.postings(TermId(t as u32)).blocks() {
            push_u32(out, meta.last_doc);
            push_u32(out, meta.max_tf);
            push_u32(out, meta.offset);
        }
    }
    for t in 0..n_terms {
        out.extend_from_slice(index.postings(TermId(t as u32)).raw_data());
    }
    Ok(())
}

/// Little-endian u32 at `offset`, bounds-checked.
fn le_u32(bytes: &[u8], offset: usize) -> io::Result<u32> {
    bytes
        .get(offset..offset + 4)
        .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        .ok_or_else(|| corrupt("columnar section truncated"))
}

/// Deserialize a columnar section. Posting data is *sliced* from
/// `bytes`, so an index read from a mapped snapshot keeps its postings
/// in the mapping; only the dictionary, the doc-length table and the
/// block metadata move onto the heap. The whole of `bytes` must be the
/// section (no trailing garbage).
pub fn read_index_columnar(bytes: &Bytes) -> io::Result<InvertedIndex> {
    let raw: &[u8] = bytes;
    let n_terms = le_u32(raw, 0)? as usize;
    let n_docs = le_u32(raw, 4)? as usize;
    let total_len = raw
        .get(8..16)
        .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
        .ok_or_else(|| corrupt("columnar section truncated"))?;
    let term_blob_len = le_u32(raw, 16)? as usize;
    let n_blocks = le_u32(raw, 20)? as usize;
    let data_len = le_u32(raw, 24)? as usize;

    let doc_len_at = COLUMNAR_HEADER_BYTES;
    let sorted_at =
        doc_len_at + n_docs.checked_mul(4).ok_or_else(|| corrupt("doc table overflow"))?;
    let terms_at =
        sorted_at + n_terms.checked_mul(4).ok_or_else(|| corrupt("sorted table overflow"))?;
    let blob_at = terms_at
        + n_terms
            .checked_mul(TERM_ENTRY_BYTES)
            .ok_or_else(|| corrupt("term table overflow"))?;
    let blocks_at = blob_at + term_blob_len;
    let data_at = blocks_at
        + n_blocks
            .checked_mul(BLOCK_ENTRY_BYTES)
            .ok_or_else(|| corrupt("block table overflow"))?;
    let end = data_at + data_len;
    if end != raw.len() {
        return Err(corrupt("columnar section length mismatch"));
    }

    let mut doc_len = Vec::with_capacity(n_docs.min(1 << 24));
    let mut sum = 0u64;
    for d in 0..n_docs {
        let l = le_u32(raw, doc_len_at + d * 4)?;
        sum += u64::from(l);
        doc_len.push(l);
    }
    if sum != total_len {
        return Err(corrupt("doc-length table disagrees with total_len"));
    }

    let mut terms = Vec::with_capacity(n_terms.min(1 << 20));
    let mut doc_freq = Vec::with_capacity(n_terms.min(1 << 20));
    let mut postings = Vec::with_capacity(n_terms.min(1 << 20));
    let (mut term_start, mut block_start, mut data_start) = (0usize, 0usize, 0usize);
    for t in 0..n_terms {
        let at = terms_at + t * TERM_ENTRY_BYTES;
        let df = le_u32(raw, at)?;
        let count = le_u32(raw, at + 4)? as usize;
        let term_end = le_u32(raw, at + 8)? as usize;
        let block_end = le_u32(raw, at + 12)? as usize;
        let data_end = le_u32(raw, at + 16)? as usize;
        if term_end < term_start || term_end > term_blob_len {
            return Err(corrupt("term blob offsets not monotone"));
        }
        if block_end < block_start || block_end > n_blocks {
            return Err(corrupt("block table offsets not monotone"));
        }
        if data_end < data_start || data_end > data_len {
            return Err(corrupt("posting data offsets not monotone"));
        }
        if block_end - block_start != count.div_ceil(BLOCK_LEN) {
            return Err(corrupt("posting count disagrees with block count"));
        }
        let term = std::str::from_utf8(&raw[blob_at + term_start..blob_at + term_end])
            .map_err(|_| corrupt("term blob is not UTF-8"))?;
        terms.push(term.to_string());
        doc_freq.push(df);

        let list_len = data_end - data_start;
        let mut blocks = Vec::with_capacity(block_end - block_start);
        let mut prev_offset = 0usize;
        let mut prev_last = 0u32;
        for b in block_start..block_end {
            let at = blocks_at + b * BLOCK_ENTRY_BYTES;
            let last_doc = le_u32(raw, at)?;
            let max_tf = le_u32(raw, at + 4)?;
            let offset = le_u32(raw, at + 8)?;
            if last_doc as usize >= n_docs {
                return Err(corrupt("posting block references unknown document"));
            }
            if b > block_start && (last_doc <= prev_last || (offset as usize) <= prev_offset) {
                return Err(corrupt("posting blocks not ascending"));
            }
            if b == block_start && offset != 0 {
                return Err(corrupt("first posting block must start at offset 0"));
            }
            if offset as usize > list_len {
                return Err(corrupt("posting block offset out of bounds"));
            }
            prev_offset = offset as usize;
            prev_last = last_doc;
            blocks.push(BlockMeta {
                last_doc,
                max_tf,
                offset,
            });
        }
        let data = bytes.slice(data_at + data_start..data_at + data_end);
        postings.push(PostingList::from_raw_parts(data, blocks, count));
        term_start = term_end;
        block_start = block_end;
        data_start = data_end;
    }
    if term_start != term_blob_len || block_start != n_blocks || data_start != data_len {
        return Err(corrupt("columnar tables not fully consumed"));
    }

    // The sorted permutation must enumerate every term exactly once in
    // strictly ascending byte order (distinct terms make strict order
    // imply a permutation).
    let mut prev: Option<&str> = None;
    for i in 0..n_terms {
        let id = le_u32(raw, sorted_at + i * 4)? as usize;
        let term = terms
            .get(id)
            .map(String::as_str)
            .ok_or_else(|| corrupt("sorted table references unknown term"))?;
        if prev.is_some_and(|p| p >= term) {
            return Err(corrupt("sorted table not strictly ascending"));
        }
        prev = Some(term);
    }

    Ok(InvertedIndex::from_owned_parts(
        TermDictionary::from_parts(terms, doc_freq),
        postings,
        doc_len,
        total_len,
    ))
}

/// Deserialize a columnar section **lazily**: validate the header and
/// table extents (O(1) in the corpus size), then hand back an
/// [`InvertedIndex`] that resolves terms by binary search over the
/// on-disk sorted table and materializes posting-list block metadata on
/// first access. Document lengths, doc freqs and term bytes are read in
/// place; posting delta bytes stay views of `bytes` forever.
///
/// This is the mapped-snapshot fast path: `bytes` should be a
/// memory-mapped, CRC-verified v4 section. Unlike
/// [`read_index_columnar`] no per-entry validation runs here — the
/// section CRC vouches for the writer's invariants, and every lazy
/// access clamps offsets so even a checksum collision reads garbage
/// in-bounds rather than out of bounds.
pub fn read_index_columnar_lazy(bytes: &Bytes) -> io::Result<InvertedIndex> {
    let raw: &[u8] = bytes;
    let n_terms = le_u32(raw, 0)? as usize;
    let n_docs = le_u32(raw, 4)? as usize;
    let total_len = raw
        .get(8..16)
        .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
        .ok_or_else(|| corrupt("columnar section truncated"))?;
    let term_blob_len = le_u32(raw, 16)? as usize;
    let n_blocks = le_u32(raw, 20)? as usize;
    let data_len = le_u32(raw, 24)? as usize;

    let overflow = || corrupt("columnar table overflow");
    let doc_len_at = COLUMNAR_HEADER_BYTES;
    let sorted_at = n_docs
        .checked_mul(4)
        .and_then(|l| doc_len_at.checked_add(l))
        .ok_or_else(overflow)?;
    let terms_at = n_terms
        .checked_mul(4)
        .and_then(|l| sorted_at.checked_add(l))
        .ok_or_else(overflow)?;
    let blob_at = n_terms
        .checked_mul(TERM_ENTRY_BYTES)
        .and_then(|l| terms_at.checked_add(l))
        .ok_or_else(overflow)?;
    let blocks_at = blob_at.checked_add(term_blob_len).ok_or_else(overflow)?;
    let data_at = n_blocks
        .checked_mul(BLOCK_ENTRY_BYTES)
        .and_then(|l| blocks_at.checked_add(l))
        .ok_or_else(overflow)?;
    let end = data_at.checked_add(data_len).ok_or_else(overflow)?;
    if end != raw.len() {
        return Err(corrupt("columnar section length mismatch"));
    }

    let mut lists = Vec::new();
    lists.resize_with(n_terms, OnceLock::new);
    Ok(InvertedIndex::from_mapped(MappedColumnar {
        raw: bytes.clone(),
        n_terms,
        n_docs,
        total_len,
        doc_len_at,
        sorted_at,
        terms_at,
        blob_at,
        term_blob_len,
        blocks_at,
        n_blocks,
        data_at,
        data_len,
        lists,
        dict: OnceLock::new(),
    }))
}

/// The lazy, zero-copy view behind a mapped [`InvertedIndex`] — see
/// [`read_index_columnar_lazy`]. All offsets are absolute positions in
/// `raw`, pre-validated against its length; per-entry cumulative ends
/// are clamped on access.
#[derive(Debug)]
pub(crate) struct MappedColumnar {
    raw: Bytes,
    n_terms: usize,
    n_docs: usize,
    total_len: u64,
    doc_len_at: usize,
    sorted_at: usize,
    terms_at: usize,
    blob_at: usize,
    term_blob_len: usize,
    blocks_at: usize,
    n_blocks: usize,
    data_at: usize,
    data_len: usize,
    /// Per-term memoized posting lists (block metadata on the heap,
    /// delta bytes still views of `raw`). Thread-safe and deterministic:
    /// racing initializers compute identical values.
    lists: Vec<OnceLock<PostingList>>,
    /// Fully materialized dictionary, built only if someone asks.
    dict: OnceLock<TermDictionary>,
}

impl Clone for MappedColumnar {
    fn clone(&self) -> Self {
        let clone_lock = |l: &OnceLock<PostingList>| {
            let out = OnceLock::new();
            if let Some(v) = l.get() {
                let _ = out.set(v.clone());
            }
            out
        };
        Self {
            raw: self.raw.clone(),
            lists: self.lists.iter().map(clone_lock).collect(),
            dict: {
                let out = OnceLock::new();
                if let Some(d) = self.dict.get() {
                    let _ = out.set(d.clone());
                }
                out
            },
            ..*self
        }
    }
}

impl MappedColumnar {
    /// In-bounds by construction for all table reads (offsets were
    /// validated against `raw.len()` at open).
    #[inline]
    fn word(&self, at: usize) -> u32 {
        let b = &self.raw[at..at + 4];
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }

    pub(crate) fn doc_count(&self) -> usize {
        self.n_docs
    }

    pub(crate) fn total_len(&self) -> u64 {
        self.total_len
    }

    pub(crate) fn term_count(&self) -> usize {
        self.n_terms
    }

    #[inline]
    pub(crate) fn doc_len(&self, doc: usize) -> u32 {
        assert!(doc < self.n_docs, "doc {doc} out of range");
        self.word(self.doc_len_at + doc * 4)
    }

    #[inline]
    pub(crate) fn doc_freq(&self, term: usize) -> u32 {
        assert!(term < self.n_terms, "term {term} out of range");
        self.word(self.terms_at + term * TERM_ENTRY_BYTES)
    }

    /// Cumulative `(term_end, block_end, data_end)` of entry `term`,
    /// clamped to the enclosing table extents.
    fn entry_ends(&self, term: usize) -> (usize, usize, usize) {
        let at = self.terms_at + term * TERM_ENTRY_BYTES;
        (
            (self.word(at + 8) as usize).min(self.term_blob_len),
            (self.word(at + 12) as usize).min(self.n_blocks),
            (self.word(at + 16) as usize).min(self.data_len),
        )
    }

    /// Entry `term`'s start offsets: entry `term - 1`'s ends.
    fn entry_starts(&self, term: usize) -> (usize, usize, usize) {
        if term == 0 {
            (0, 0, 0)
        } else {
            self.entry_ends(term - 1)
        }
    }

    /// The UTF-8 bytes of term `term` in the blob.
    fn term_bytes(&self, term: usize) -> &[u8] {
        let (end, _, _) = self.entry_ends(term);
        let (start, _, _) = self.entry_starts(term);
        &self.raw[self.blob_at + start.min(end)..self.blob_at + end]
    }

    /// Binary search the sorted permutation for an exact term match.
    pub(crate) fn term_id(&self, term: &str) -> Option<TermId> {
        let needle = term.as_bytes();
        let (mut lo, mut hi) = (0usize, self.n_terms);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let id = (self.word(self.sorted_at + mid * 4) as usize).min(self.n_terms - 1);
            match self.term_bytes(id).cmp(needle) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(TermId(id as u32)),
            }
        }
        None
    }

    /// The posting list of term `term`, materializing block metadata on
    /// first access. Delta bytes are sliced from `raw` zero-copy.
    pub(crate) fn postings(&self, term: usize) -> &PostingList {
        self.lists[term].get_or_init(|| {
            let count = self.word(self.terms_at + term * TERM_ENTRY_BYTES + 4) as usize;
            let (_, block_end, data_end) = self.entry_ends(term);
            let (_, block_start, data_start) = self.entry_starts(term);
            let (block_start, data_start) = (block_start.min(block_end), data_start.min(data_end));
            let mut blocks = Vec::with_capacity(block_end - block_start);
            for b in block_start..block_end {
                let at = self.blocks_at + b * BLOCK_ENTRY_BYTES;
                blocks.push(BlockMeta {
                    last_doc: self.word(at),
                    max_tf: self.word(at + 4),
                    offset: self.word(at + 8),
                });
            }
            let data = self
                .raw
                .slice(self.data_at + data_start..self.data_at + data_end);
            PostingList::from_raw_parts(data, blocks, count)
        })
    }

    /// Materialize the full dictionary (every term string plus the
    /// lookup hashmap). Merge/compaction convenience, not a query path.
    pub(crate) fn dictionary(&self) -> &TermDictionary {
        self.dict.get_or_init(|| {
            let terms: Vec<String> = (0..self.n_terms)
                .map(|t| String::from_utf8_lossy(self.term_bytes(t)).into_owned())
                .collect();
            let doc_freq: Vec<u32> = (0..self.n_terms).map(|t| self.doc_freq(t)).collect();
            TermDictionary::from_parts(terms, doc_freq)
        })
    }

    /// Heap bytes of the posting lists materialized so far.
    pub(crate) fn postings_heap_bytes(&self) -> usize {
        self.lists
            .iter()
            .filter_map(OnceLock::get)
            .map(PostingList::heap_bytes)
            .sum()
    }
}

/// Save an index to a file.
pub fn save_index(index: &InvertedIndex, path: &Path) -> io::Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    write_index(index, &mut f)?;
    f.flush()
}

/// Load an index from a file.
pub fn load_index(path: &Path) -> io::Result<InvertedIndex> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    read_index(&mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inverted::IndexBuilder;
    use crate::score::Bm25;
    use crate::search::Searcher;
    use newslink_util::DetRng;

    fn sample() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        b.add_document(&["taliban", "attack", "pakistan", "attack"]);
        b.add_document(&["pakistan", "election", "results"]);
        b.add_document::<&str>(&[]);
        b.add_document(&["swat", "valley", "clashes"]);
        b.build()
    }

    #[test]
    fn round_trip_preserves_structure() {
        let idx = sample();
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        let back = read_index(&mut &buf[..]).unwrap();
        assert_eq!(back.doc_count(), idx.doc_count());
        assert_eq!(back.avg_doc_len(), idx.avg_doc_len());
        let d = idx.dictionary();
        let bd = back.dictionary();
        assert_eq!(bd.len(), d.len());
        for t in 0..d.len() {
            let term = TermId(t as u32);
            assert_eq!(bd.term(term), d.term(term));
            assert_eq!(bd.doc_freq(term), d.doc_freq(term));
            assert_eq!(back.postings(term), idx.postings(term));
        }
        assert_eq!(bd.doc_freq_slice(), d.doc_freq_slice());
    }

    #[test]
    fn round_trip_preserves_multi_block_lists() {
        // Enough docs sharing a term that its list spans several blocks.
        let mut b = IndexBuilder::new();
        for i in 0..1000u32 {
            if i % 3 == 0 {
                b.add_document(&["common", "filler"]);
            } else {
                b.add_document(&["common"]);
            }
        }
        let idx = b.build();
        assert!(idx.postings_for("common").blocks().len() > 1);
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        let back = read_index(&mut &buf[..]).unwrap();
        assert_eq!(back.postings_for("common"), idx.postings_for("common"));
        assert_eq!(back.postings_for("filler"), idx.postings_for("filler"));
    }

    #[test]
    fn round_trip_preserves_scores() {
        let mut rng = DetRng::new(7);
        let mut b = IndexBuilder::new();
        for _ in 0..200 {
            let len = rng.range(2, 20);
            let terms: Vec<String> =
                (0..len).map(|_| format!("w{}", rng.zipf(60, 1.3))).collect();
            b.add_document(&terms);
        }
        let idx = b.build();
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        let back = read_index(&mut &buf[..]).unwrap();
        let s1 = Searcher::new(&idx, Bm25::default());
        let s2 = Searcher::new(&back, Bm25::default());
        for q in [vec!["w0", "w3"], vec!["w1"], vec!["w2", "w2", "w7"]] {
            let a = s1.search(&q, 10);
            let b = s2.search(&q, 10);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.doc, y.doc);
                assert!((x.score - y.score).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn empty_index_round_trips() {
        let idx = IndexBuilder::new().build();
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        let back = read_index(&mut &buf[..]).unwrap();
        assert_eq!(back.doc_count(), 0);
        assert_eq!(back.dictionary().len(), 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_index(&sample(), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(read_index(&mut &buf[..]).is_err());
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        write_index(&sample(), &mut buf).unwrap();
        buf[4] = 99;
        assert!(read_index(&mut &buf[..]).is_err());
    }

    #[test]
    fn truncated_stream_rejected() {
        let mut buf = Vec::new();
        write_index(&sample(), &mut buf).unwrap();
        for cut in [3, 5, buf.len() / 2, buf.len() - 1] {
            assert!(
                read_index(&mut &buf[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    /// A hand-encoded v2 header: magic, version, one term `t` with the
    /// given doc_freq, `doc_lens`, ready for a postings section.
    fn v2_prefix(doc_lens: &[u32], doc_freq: u32) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(2);
        varint::write_u64(&mut buf, 1).unwrap();
        varint::write_str(&mut buf, "t").unwrap();
        varint::write_u32(&mut buf, doc_freq).unwrap();
        varint::write_u64(&mut buf, doc_lens.len() as u64).unwrap();
        for &l in doc_lens {
            varint::write_u32(&mut buf, l).unwrap();
        }
        buf
    }

    /// Append one posting block with explicit metadata and raw bytes.
    fn push_block(buf: &mut Vec<u8>, last_doc: u32, max_tf: u32, bytes: &[u8]) {
        varint::write_u32(buf, last_doc).unwrap();
        varint::write_u32(buf, max_tf).unwrap();
        varint::write_u64(buf, bytes.len() as u64).unwrap();
        buf.extend_from_slice(bytes);
    }

    fn expect_corrupt(buf: &[u8], what: &str) {
        let err = read_index(&mut &buf[..]).expect_err(what);
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{what}: {err}");
    }

    #[test]
    fn torn_block_rejected() {
        // Block claims two postings but its bytes hold only one pair.
        let mut buf = v2_prefix(&[1, 1], 2);
        varint::write_u64(&mut buf, 2).unwrap(); // count = 2
        push_block(&mut buf, 1, 1, &[0x00, 0x01]); // only (delta=0, tf=1)
        expect_corrupt(&buf, "torn block must be rejected");
    }

    #[test]
    fn bad_varint_in_block_rejected() {
        // 0xFF runs forever as a varint continuation: decode must bail.
        let mut buf = v2_prefix(&[1, 1], 2);
        varint::write_u64(&mut buf, 2).unwrap();
        push_block(&mut buf, 1, 1, &[0xFF; 12]);
        expect_corrupt(&buf, "bad varint must be rejected");
    }

    #[test]
    fn duplicate_doc_in_block_rejected() {
        // Second delta of 0 would repeat doc 0.
        let mut buf = v2_prefix(&[1, 1], 2);
        varint::write_u64(&mut buf, 2).unwrap();
        push_block(&mut buf, 0, 1, &[0x00, 0x01, 0x00, 0x01]);
        expect_corrupt(&buf, "repeated doc id must be rejected");
    }

    #[test]
    fn block_metadata_mismatch_rejected() {
        // Content decodes to docs {0, 1} tf 1, but metadata lies.
        let content: &[u8] = &[0x00, 0x01, 0x01, 0x01];
        for (last_doc, max_tf) in [(2u32, 1u32), (1, 9)] {
            let mut buf = v2_prefix(&[1, 1], 2);
            varint::write_u64(&mut buf, 2).unwrap();
            push_block(&mut buf, last_doc, max_tf, content);
            expect_corrupt(&buf, "metadata mismatch must be rejected");
        }
    }

    #[test]
    fn unknown_document_in_block_rejected() {
        // Posting for doc 5 with only 2 documents in the table.
        let mut buf = v2_prefix(&[1, 1], 1);
        varint::write_u64(&mut buf, 1).unwrap();
        push_block(&mut buf, 5, 1, &[0x05, 0x01]);
        expect_corrupt(&buf, "out-of-range doc must be rejected");
    }

    #[test]
    fn trailing_bytes_in_block_rejected() {
        let mut buf = v2_prefix(&[1, 1], 1);
        varint::write_u64(&mut buf, 1).unwrap();
        push_block(&mut buf, 0, 1, &[0x00, 0x01, 0x07]);
        expect_corrupt(&buf, "trailing block bytes must be rejected");
    }

    #[test]
    fn v1_stream_still_readable() {
        // Hand-encode the index `sample()` produces in the version-1
        // layout (postings as one uncompressed delta stream, doc-length
        // table last) and check it decodes equal to the v2 round-trip.
        let idx = sample();
        let dict = idx.dictionary();
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(1);
        varint::write_u64(&mut buf, dict.len() as u64).unwrap();
        for t in 0..dict.len() {
            let term = TermId(t as u32);
            varint::write_str(&mut buf, dict.term(term)).unwrap();
            varint::write_u32(&mut buf, dict.doc_freq(term)).unwrap();
        }
        for t in 0..dict.len() {
            let postings = idx.postings(TermId(t as u32)).to_vec();
            varint::write_u64(&mut buf, postings.len() as u64).unwrap();
            let mut prev = 0u32;
            for p in postings {
                varint::write_u32(&mut buf, p.doc.0 - prev).unwrap();
                varint::write_u32(&mut buf, p.tf).unwrap();
                prev = p.doc.0;
            }
        }
        varint::write_u64(&mut buf, idx.doc_count() as u64).unwrap();
        for d in 0..idx.doc_count() {
            varint::write_u32(&mut buf, idx.doc_len(DocId(d as u32))).unwrap();
        }

        let back = read_index(&mut &buf[..]).unwrap();
        assert_eq!(back.doc_count(), idx.doc_count());
        assert_eq!(back.avg_doc_len(), idx.avg_doc_len());
        for t in 0..dict.len() {
            let term = TermId(t as u32);
            assert_eq!(back.postings(term), idx.postings(term));
        }
    }

    fn assert_index_eq(a: &InvertedIndex, b: &InvertedIndex) {
        assert_eq!(a.doc_count(), b.doc_count());
        assert_eq!(a.total_len(), b.total_len());
        assert_eq!(a.dictionary().len(), b.dictionary().len());
        for t in 0..a.dictionary().len() {
            let term = TermId(t as u32);
            assert_eq!(a.dictionary().term(term), b.dictionary().term(term));
            assert_eq!(a.dictionary().doc_freq(term), b.dictionary().doc_freq(term));
            assert_eq!(a.postings(term), b.postings(term));
        }
        for d in 0..a.doc_count() {
            assert_eq!(a.doc_len(DocId(d as u32)), b.doc_len(DocId(d as u32)));
        }
    }

    #[test]
    fn columnar_round_trip_preserves_structure() {
        let idx = sample();
        let mut buf = Vec::new();
        write_index_columnar(&idx, &mut buf).unwrap();
        let back = read_index_columnar(&Bytes::from_vec(buf)).unwrap();
        assert_index_eq(&idx, &back);
    }

    #[test]
    fn columnar_round_trip_multi_block_and_empty() {
        let mut b = IndexBuilder::new();
        for i in 0..1000u32 {
            if i % 3 == 0 {
                b.add_document(&["common", "filler"]);
            } else {
                b.add_document(&["common"]);
            }
        }
        let idx = b.build();
        assert!(idx.postings_for("common").blocks().len() > 1);
        let mut buf = Vec::new();
        write_index_columnar(&idx, &mut buf).unwrap();
        let back = read_index_columnar(&Bytes::from_vec(buf)).unwrap();
        assert_index_eq(&idx, &back);

        let empty = IndexBuilder::new().build();
        let mut buf = Vec::new();
        write_index_columnar(&empty, &mut buf).unwrap();
        let back = read_index_columnar(&Bytes::from_vec(buf)).unwrap();
        assert_eq!(back.doc_count(), 0);
        assert_eq!(back.dictionary().len(), 0);
    }

    #[test]
    fn columnar_round_trip_preserves_scores_bit_exactly() {
        let mut rng = DetRng::new(11);
        let mut b = IndexBuilder::new();
        for _ in 0..300 {
            let len = rng.range(2, 24);
            let terms: Vec<String> =
                (0..len).map(|_| format!("w{}", rng.zipf(80, 1.2))).collect();
            b.add_document(&terms);
        }
        let idx = b.build();
        let mut buf = Vec::new();
        write_index_columnar(&idx, &mut buf).unwrap();
        let back = read_index_columnar(&Bytes::from_vec(buf)).unwrap();
        let s1 = Searcher::new(&idx, Bm25::default());
        let s2 = Searcher::new(&back, Bm25::default());
        for q in [vec!["w0", "w3"], vec!["w1"], vec!["w2", "w2", "w7"]] {
            let a = s1.search(&q, 10);
            let b = s2.search(&q, 10);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.doc, y.doc);
                assert_eq!(x.score.to_bits(), y.score.to_bits());
            }
        }
    }

    #[test]
    fn columnar_rejects_structural_corruption_without_panicking() {
        let idx = sample();
        let mut buf = Vec::new();
        write_index_columnar(&idx, &mut buf).unwrap();
        // Truncations at every table boundary and inside them.
        for cut in [0, 4, 27, 28, buf.len() / 2, buf.len() - 1] {
            let b = Bytes::from_vec(buf[..cut].to_vec());
            assert!(read_index_columnar(&b).is_err(), "cut at {cut}");
        }
        // Trailing garbage is a length mismatch, not silently ignored.
        let mut padded = buf.clone();
        padded.push(0);
        assert!(read_index_columnar(&Bytes::from_vec(padded)).is_err());
        // Growing a count/offset field must fail validation, not panic.
        for at in (0..buf.len().min(256)).step_by(7) {
            let mut bad = buf.clone();
            bad[at] ^= 0x40;
            let _ = read_index_columnar(&Bytes::from_vec(bad)); // must not panic
        }
    }

    #[test]
    fn columnar_read_from_mapped_bytes_is_zero_copy() {
        let idx = sample();
        let mut buf = Vec::new();
        write_index_columnar(&idx, &mut buf).unwrap();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("newslink_codec_columnar_{}", std::process::id()));
        std::fs::write(&path, &buf).unwrap();
        let map = std::sync::Arc::new(
            newslink_util::Mmap::map(&std::fs::File::open(&path).unwrap()).unwrap(),
        );
        let back = read_index_columnar(&Bytes::from_mmap(map)).unwrap();
        assert_index_eq(&idx, &back);
        // Non-empty posting data must reference the mapping, not the heap.
        let common = back.postings_for("pakistan");
        assert!(!common.is_empty());
        assert_eq!(common.heap_bytes(), std::mem::size_of_val(common.blocks()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_round_trip() {
        let idx = sample();
        let dir = std::env::temp_dir().join("newslink_codec_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.nlix");
        save_index(&idx, &path).unwrap();
        let back = load_index(&path).unwrap();
        assert_eq!(back.doc_count(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compression_is_effective_on_dense_postings() {
        // 1000 docs sharing one term: deltas of 1 → ~2 bytes/posting.
        let mut b = IndexBuilder::new();
        for _ in 0..1000 {
            b.add_document(&["common"]);
        }
        let idx = b.build();
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        assert!(
            buf.len() < 1000 * 4,
            "expected delta compression, got {} bytes",
            buf.len()
        );
    }
}
