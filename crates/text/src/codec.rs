//! Binary persistence of inverted indexes.
//!
//! A versioned, varint-compressed on-disk format in the spirit of Lucene's
//! index files: the dictionary (terms + document frequencies), the
//! document-length table, and per-term posting lists in their in-memory
//! block-compressed form. Round-trips byte-exactly through [`write_index`]
//! / [`read_index`].
//!
//! Version 2 layout (all integers LEB128 unless noted):
//!
//! ```text
//! magic    "NLIX"           4 raw bytes
//! version  u8               raw byte (currently 2)
//! n_terms  varint
//! terms    n_terms × (len-prefixed UTF-8, doc_freq varint)
//! n_docs   varint
//! doc_len  n_docs × varint
//! postings n_terms × list
//! list     count varint, then ceil(count / BLOCK_LEN) blocks
//! block    last_doc varint, max_tf varint, n_bytes varint,
//!          n_bytes raw delta-coded (doc_delta, tf) varint pairs
//! ```
//!
//! Blocks are persisted exactly as [`crate::inverted::PostingList`] holds
//! them in memory, so loading a segment is a validated copy, not a
//! re-encode. Every block is re-decoded on read and checked against its
//! own metadata (strictly ascending doc ids below `n_docs`, recomputed
//! `last_doc`/`max_tf` matching, no trailing bytes) so torn or bit-flipped
//! blocks surface as [`io::ErrorKind::InvalidData`] — which the snapshot
//! layer maps onto its typed corrupt-frame error.
//!
//! Version 1 (uncompressed delta streams, postings before the doc-length
//! table) is still readable; writers always emit version 2.

use std::io::{self, Read, Write};
use std::path::Path;

use newslink_util::varint;

use crate::dictionary::{TermDictionary, TermId};
use crate::inverted::{BlockMeta, DocId, InvertedIndex, Posting, PostingList, BLOCK_LEN};

const MAGIC: &[u8; 4] = b"NLIX";
const VERSION: u8 = 2;
/// Defensive cap on term length when decoding untrusted input.
const MAX_TERM_BYTES: usize = 1 << 16;
/// Defensive cap on one block's byte length: `BLOCK_LEN` pairs of
/// maximal 5-byte varints, rounded up.
const MAX_BLOCK_BYTES: usize = BLOCK_LEN * 10 + 16;

fn corrupt(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Serialize `index` to `out`.
pub fn write_index<W: Write>(index: &InvertedIndex, out: &mut W) -> io::Result<()> {
    out.write_all(MAGIC)?;
    out.write_all(&[VERSION])?;
    let dict = index.dictionary();
    varint::write_u64(out, dict.len() as u64)?;
    for t in 0..dict.len() {
        let term = TermId(t as u32);
        varint::write_str(out, dict.term(term))?;
        varint::write_u32(out, dict.doc_freq(term))?;
    }
    varint::write_u64(out, index.doc_count() as u64)?;
    for d in 0..index.doc_count() {
        varint::write_u32(out, index.doc_len(DocId(d as u32)))?;
    }
    for t in 0..dict.len() {
        let postings = index.postings(TermId(t as u32));
        varint::write_u64(out, postings.len() as u64)?;
        for (i, meta) in postings.blocks().iter().enumerate() {
            let bytes = postings.block_bytes(i);
            varint::write_u32(out, meta.last_doc)?;
            varint::write_u32(out, meta.max_tf)?;
            varint::write_u64(out, bytes.len() as u64)?;
            out.write_all(bytes)?;
        }
    }
    Ok(())
}

/// Deserialize an index from `input`.
pub fn read_index<R: Read>(input: &mut R) -> io::Result<InvertedIndex> {
    let mut magic = [0u8; 4];
    input.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let mut version = [0u8; 1];
    input.read_exact(&mut version)?;
    let n_terms = varint::read_u64(input)? as usize;
    let mut terms = Vec::with_capacity(n_terms.min(1 << 20));
    let mut doc_freq = Vec::with_capacity(n_terms.min(1 << 20));
    for _ in 0..n_terms {
        terms.push(varint::read_str(input, MAX_TERM_BYTES)?);
        doc_freq.push(varint::read_u32(input)?);
    }
    let dict = TermDictionary::from_parts(terms, doc_freq);
    match version[0] {
        1 => read_v1_body(input, dict, n_terms),
        2 => read_v2_body(input, dict, n_terms),
        v => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported index version {v}"),
        )),
    }
}

/// Version 2 body: doc-length table, then block-compressed lists.
fn read_v2_body<R: Read>(
    input: &mut R,
    dict: TermDictionary,
    n_terms: usize,
) -> io::Result<InvertedIndex> {
    let (doc_len, total_len) = read_doc_lens(input)?;
    let n_docs = doc_len.len();
    let mut postings: Vec<PostingList> = Vec::with_capacity(n_terms.min(1 << 20));
    for _ in 0..n_terms {
        let count = varint::read_u64(input)? as usize;
        let n_blocks = count.div_ceil(BLOCK_LEN);
        let mut data = Vec::new();
        let mut blocks = Vec::with_capacity(n_blocks.min(1 << 20));
        let mut prev = 0u32;
        let mut first = true;
        for b in 0..n_blocks {
            let last_doc = varint::read_u32(input)?;
            let max_tf = varint::read_u32(input)?;
            let n_bytes = varint::read_u64(input)? as usize;
            if n_bytes > MAX_BLOCK_BYTES {
                return Err(corrupt("posting block oversized"));
            }
            let mut bytes = vec![0u8; n_bytes];
            input.read_exact(&mut bytes)?;
            // Validate the block against its own metadata before trusting
            // it as an in-memory PostingList block.
            let block_len = if b + 1 == n_blocks {
                count - b * BLOCK_LEN
            } else {
                BLOCK_LEN
            };
            let mut r: &[u8] = &bytes;
            let mut seen_max_tf = 0u32;
            // The block's framing was intact, so running out of bytes
            // mid-decode is corruption, not a short stream.
            let torn = |_| corrupt("torn posting block");
            for _ in 0..block_len {
                let delta = varint::read_u32(&mut r).map_err(torn)?;
                let tf = varint::read_u32(&mut r).map_err(torn)?;
                let doc = if first {
                    first = false;
                    delta
                } else {
                    if delta == 0 {
                        return Err(corrupt("posting block repeats a doc id"));
                    }
                    prev.checked_add(delta)
                        .ok_or_else(|| corrupt("doc id overflow"))?
                };
                if doc as usize >= n_docs {
                    return Err(corrupt("posting references unknown document"));
                }
                seen_max_tf = seen_max_tf.max(tf);
                prev = doc;
            }
            if !r.is_empty() {
                return Err(corrupt("trailing bytes in posting block"));
            }
            if prev != last_doc {
                return Err(corrupt("posting block last_doc mismatch"));
            }
            if seen_max_tf != max_tf {
                return Err(corrupt("posting block max_tf mismatch"));
            }
            let offset = u32::try_from(data.len())
                .map_err(|_| corrupt("posting list exceeds 4 GiB"))?;
            blocks.push(BlockMeta {
                last_doc,
                max_tf,
                offset,
            });
            data.extend_from_slice(&bytes);
        }
        postings.push(PostingList::from_raw_parts(data, blocks, count));
    }
    Ok(InvertedIndex {
        dict,
        postings,
        doc_len,
        total_len,
    })
}

/// Version 1 body: uncompressed delta streams, then the doc-length table.
fn read_v1_body<R: Read>(
    input: &mut R,
    dict: TermDictionary,
    n_terms: usize,
) -> io::Result<InvertedIndex> {
    let mut lists: Vec<Vec<Posting>> = Vec::with_capacity(n_terms.min(1 << 20));
    for _ in 0..n_terms {
        let count = varint::read_u64(input)? as usize;
        let mut list = Vec::with_capacity(count.min(1 << 20));
        let mut prev = 0u32;
        for i in 0..count {
            let delta = varint::read_u32(input)?;
            let tf = varint::read_u32(input)?;
            let doc = if i == 0 {
                delta
            } else {
                prev.checked_add(delta)
                    .ok_or_else(|| corrupt("doc id overflow"))?
            };
            list.push(Posting {
                doc: DocId(doc),
                tf,
            });
            prev = doc;
        }
        lists.push(list);
    }
    let (doc_len, total_len) = read_doc_lens(input)?;
    // Structural validation: postings must reference existing docs.
    for list in &lists {
        if let Some(last) = list.last() {
            if last.doc.index() >= doc_len.len() {
                return Err(corrupt("posting references unknown document"));
            }
        }
    }
    Ok(InvertedIndex {
        dict,
        postings: lists.iter().map(|l| PostingList::from_postings(l)).collect(),
        doc_len,
        total_len,
    })
}

fn read_doc_lens<R: Read>(input: &mut R) -> io::Result<(Vec<u32>, u64)> {
    let n_docs = varint::read_u64(input)? as usize;
    let mut doc_len = Vec::with_capacity(n_docs.min(1 << 24));
    let mut total_len = 0u64;
    for _ in 0..n_docs {
        let l = varint::read_u32(input)?;
        total_len += u64::from(l);
        doc_len.push(l);
    }
    Ok((doc_len, total_len))
}

/// Save an index to a file.
pub fn save_index(index: &InvertedIndex, path: &Path) -> io::Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    write_index(index, &mut f)?;
    f.flush()
}

/// Load an index from a file.
pub fn load_index(path: &Path) -> io::Result<InvertedIndex> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    read_index(&mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inverted::IndexBuilder;
    use crate::score::Bm25;
    use crate::search::Searcher;
    use newslink_util::DetRng;

    fn sample() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        b.add_document(&["taliban", "attack", "pakistan", "attack"]);
        b.add_document(&["pakistan", "election", "results"]);
        b.add_document::<&str>(&[]);
        b.add_document(&["swat", "valley", "clashes"]);
        b.build()
    }

    #[test]
    fn round_trip_preserves_structure() {
        let idx = sample();
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        let back = read_index(&mut &buf[..]).unwrap();
        assert_eq!(back.doc_count(), idx.doc_count());
        assert_eq!(back.avg_doc_len(), idx.avg_doc_len());
        let d = idx.dictionary();
        let bd = back.dictionary();
        assert_eq!(bd.len(), d.len());
        for t in 0..d.len() {
            let term = TermId(t as u32);
            assert_eq!(bd.term(term), d.term(term));
            assert_eq!(bd.doc_freq(term), d.doc_freq(term));
            assert_eq!(back.postings(term), idx.postings(term));
        }
        assert_eq!(bd.doc_freq_slice(), d.doc_freq_slice());
    }

    #[test]
    fn round_trip_preserves_multi_block_lists() {
        // Enough docs sharing a term that its list spans several blocks.
        let mut b = IndexBuilder::new();
        for i in 0..1000u32 {
            if i % 3 == 0 {
                b.add_document(&["common", "filler"]);
            } else {
                b.add_document(&["common"]);
            }
        }
        let idx = b.build();
        assert!(idx.postings_for("common").blocks().len() > 1);
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        let back = read_index(&mut &buf[..]).unwrap();
        assert_eq!(back.postings_for("common"), idx.postings_for("common"));
        assert_eq!(back.postings_for("filler"), idx.postings_for("filler"));
    }

    #[test]
    fn round_trip_preserves_scores() {
        let mut rng = DetRng::new(7);
        let mut b = IndexBuilder::new();
        for _ in 0..200 {
            let len = rng.range(2, 20);
            let terms: Vec<String> =
                (0..len).map(|_| format!("w{}", rng.zipf(60, 1.3))).collect();
            b.add_document(&terms);
        }
        let idx = b.build();
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        let back = read_index(&mut &buf[..]).unwrap();
        let s1 = Searcher::new(&idx, Bm25::default());
        let s2 = Searcher::new(&back, Bm25::default());
        for q in [vec!["w0", "w3"], vec!["w1"], vec!["w2", "w2", "w7"]] {
            let a = s1.search(&q, 10);
            let b = s2.search(&q, 10);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.doc, y.doc);
                assert!((x.score - y.score).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn empty_index_round_trips() {
        let idx = IndexBuilder::new().build();
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        let back = read_index(&mut &buf[..]).unwrap();
        assert_eq!(back.doc_count(), 0);
        assert_eq!(back.dictionary().len(), 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_index(&sample(), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(read_index(&mut &buf[..]).is_err());
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        write_index(&sample(), &mut buf).unwrap();
        buf[4] = 99;
        assert!(read_index(&mut &buf[..]).is_err());
    }

    #[test]
    fn truncated_stream_rejected() {
        let mut buf = Vec::new();
        write_index(&sample(), &mut buf).unwrap();
        for cut in [3, 5, buf.len() / 2, buf.len() - 1] {
            assert!(
                read_index(&mut &buf[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    /// A hand-encoded v2 header: magic, version, one term `t` with the
    /// given doc_freq, `doc_lens`, ready for a postings section.
    fn v2_prefix(doc_lens: &[u32], doc_freq: u32) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(2);
        varint::write_u64(&mut buf, 1).unwrap();
        varint::write_str(&mut buf, "t").unwrap();
        varint::write_u32(&mut buf, doc_freq).unwrap();
        varint::write_u64(&mut buf, doc_lens.len() as u64).unwrap();
        for &l in doc_lens {
            varint::write_u32(&mut buf, l).unwrap();
        }
        buf
    }

    /// Append one posting block with explicit metadata and raw bytes.
    fn push_block(buf: &mut Vec<u8>, last_doc: u32, max_tf: u32, bytes: &[u8]) {
        varint::write_u32(buf, last_doc).unwrap();
        varint::write_u32(buf, max_tf).unwrap();
        varint::write_u64(buf, bytes.len() as u64).unwrap();
        buf.extend_from_slice(bytes);
    }

    fn expect_corrupt(buf: &[u8], what: &str) {
        let err = read_index(&mut &buf[..]).expect_err(what);
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{what}: {err}");
    }

    #[test]
    fn torn_block_rejected() {
        // Block claims two postings but its bytes hold only one pair.
        let mut buf = v2_prefix(&[1, 1], 2);
        varint::write_u64(&mut buf, 2).unwrap(); // count = 2
        push_block(&mut buf, 1, 1, &[0x00, 0x01]); // only (delta=0, tf=1)
        expect_corrupt(&buf, "torn block must be rejected");
    }

    #[test]
    fn bad_varint_in_block_rejected() {
        // 0xFF runs forever as a varint continuation: decode must bail.
        let mut buf = v2_prefix(&[1, 1], 2);
        varint::write_u64(&mut buf, 2).unwrap();
        push_block(&mut buf, 1, 1, &[0xFF; 12]);
        expect_corrupt(&buf, "bad varint must be rejected");
    }

    #[test]
    fn duplicate_doc_in_block_rejected() {
        // Second delta of 0 would repeat doc 0.
        let mut buf = v2_prefix(&[1, 1], 2);
        varint::write_u64(&mut buf, 2).unwrap();
        push_block(&mut buf, 0, 1, &[0x00, 0x01, 0x00, 0x01]);
        expect_corrupt(&buf, "repeated doc id must be rejected");
    }

    #[test]
    fn block_metadata_mismatch_rejected() {
        // Content decodes to docs {0, 1} tf 1, but metadata lies.
        let content: &[u8] = &[0x00, 0x01, 0x01, 0x01];
        for (last_doc, max_tf) in [(2u32, 1u32), (1, 9)] {
            let mut buf = v2_prefix(&[1, 1], 2);
            varint::write_u64(&mut buf, 2).unwrap();
            push_block(&mut buf, last_doc, max_tf, content);
            expect_corrupt(&buf, "metadata mismatch must be rejected");
        }
    }

    #[test]
    fn unknown_document_in_block_rejected() {
        // Posting for doc 5 with only 2 documents in the table.
        let mut buf = v2_prefix(&[1, 1], 1);
        varint::write_u64(&mut buf, 1).unwrap();
        push_block(&mut buf, 5, 1, &[0x05, 0x01]);
        expect_corrupt(&buf, "out-of-range doc must be rejected");
    }

    #[test]
    fn trailing_bytes_in_block_rejected() {
        let mut buf = v2_prefix(&[1, 1], 1);
        varint::write_u64(&mut buf, 1).unwrap();
        push_block(&mut buf, 0, 1, &[0x00, 0x01, 0x07]);
        expect_corrupt(&buf, "trailing block bytes must be rejected");
    }

    #[test]
    fn v1_stream_still_readable() {
        // Hand-encode the index `sample()` produces in the version-1
        // layout (postings as one uncompressed delta stream, doc-length
        // table last) and check it decodes equal to the v2 round-trip.
        let idx = sample();
        let dict = idx.dictionary();
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(1);
        varint::write_u64(&mut buf, dict.len() as u64).unwrap();
        for t in 0..dict.len() {
            let term = TermId(t as u32);
            varint::write_str(&mut buf, dict.term(term)).unwrap();
            varint::write_u32(&mut buf, dict.doc_freq(term)).unwrap();
        }
        for t in 0..dict.len() {
            let postings = idx.postings(TermId(t as u32)).to_vec();
            varint::write_u64(&mut buf, postings.len() as u64).unwrap();
            let mut prev = 0u32;
            for p in postings {
                varint::write_u32(&mut buf, p.doc.0 - prev).unwrap();
                varint::write_u32(&mut buf, p.tf).unwrap();
                prev = p.doc.0;
            }
        }
        varint::write_u64(&mut buf, idx.doc_count() as u64).unwrap();
        for d in 0..idx.doc_count() {
            varint::write_u32(&mut buf, idx.doc_len(DocId(d as u32))).unwrap();
        }

        let back = read_index(&mut &buf[..]).unwrap();
        assert_eq!(back.doc_count(), idx.doc_count());
        assert_eq!(back.avg_doc_len(), idx.avg_doc_len());
        for t in 0..dict.len() {
            let term = TermId(t as u32);
            assert_eq!(back.postings(term), idx.postings(term));
        }
    }

    #[test]
    fn file_round_trip() {
        let idx = sample();
        let dir = std::env::temp_dir().join("newslink_codec_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.nlix");
        save_index(&idx, &path).unwrap();
        let back = load_index(&path).unwrap();
        assert_eq!(back.doc_count(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compression_is_effective_on_dense_postings() {
        // 1000 docs sharing one term: deltas of 1 → ~2 bytes/posting.
        let mut b = IndexBuilder::new();
        for _ in 0..1000 {
            b.add_document(&["common"]);
        }
        let idx = b.build();
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        assert!(
            buf.len() < 1000 * 4,
            "expected delta compression, got {} bytes",
            buf.len()
        );
    }
}
