//! The inverted index.
//!
//! Frozen posting lists per term, document lengths, and collection
//! statistics — the substrate both the "Lucene" baseline and NewsLink's
//! BOW/BON scoring run on. Build with [`IndexBuilder`], then query through
//! [`crate::search::Searcher`].

use newslink_util::FxHashMap;

use crate::dictionary::{TermDictionary, TermId};

/// Dense document id within one index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DocId(pub u32);

impl DocId {
    /// The document's index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One `(document, term-frequency)` entry in a posting list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// The containing document.
    pub doc: DocId,
    /// Occurrences of the term in that document.
    pub tf: u32,
}

/// Collection-level statistics BM25 needs: how many documents exist and
/// their total token length.
///
/// For a monolithic index these are just [`InvertedIndex::doc_count`] and
/// the internal length sum. For a *segmented* index they are the overlay
/// that makes per-segment scoring exact: sum the integer counts across
/// segments (exact — no float accumulation) and score every segment with
/// the collection-wide average. A single segment with its own stats is
/// the degenerate case and scores bit-identically to the monolithic path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectionStats {
    /// Documents in the collection.
    pub docs: usize,
    /// Total token length across those documents.
    pub total_len: u64,
}

impl CollectionStats {
    /// The stats of one monolithic index.
    pub fn from_index(index: &InvertedIndex) -> Self {
        Self {
            docs: index.doc_count(),
            total_len: index.total_len,
        }
    }

    /// Fold another shard's counts in (integer addition, exact).
    pub fn add(&mut self, other: CollectionStats) {
        self.docs += other.docs;
        self.total_len += other.total_len;
    }

    /// Count one document of length `len`.
    pub fn add_doc(&mut self, len: u32) {
        self.docs += 1;
        self.total_len += u64::from(len);
    }

    /// Mean document length; 0 for an empty collection. Matches
    /// [`InvertedIndex::avg_doc_len`] operation-for-operation so overlay
    /// scoring stays bit-identical.
    pub fn avg_doc_len(&self) -> f64 {
        if self.docs == 0 {
            0.0
        } else {
            self.total_len as f64 / self.docs as f64
        }
    }
}

/// A frozen inverted index.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    pub(crate) dict: TermDictionary,
    pub(crate) postings: Vec<Vec<Posting>>,
    pub(crate) doc_len: Vec<u32>,
    pub(crate) total_len: u64,
}

impl InvertedIndex {
    /// Number of indexed documents.
    #[inline]
    pub fn doc_count(&self) -> usize {
        self.doc_len.len()
    }

    /// Token length of `doc` (as counted at indexing time).
    #[inline]
    pub fn doc_len(&self, doc: DocId) -> u32 {
        self.doc_len[doc.index()]
    }

    /// Mean document length; 0 for an empty index.
    pub fn avg_doc_len(&self) -> f64 {
        if self.doc_len.is_empty() {
            0.0
        } else {
            self.total_len as f64 / self.doc_len.len() as f64
        }
    }

    /// The term dictionary.
    pub fn dictionary(&self) -> &TermDictionary {
        &self.dict
    }

    /// Posting list for a term id (sorted by doc id).
    #[inline]
    pub fn postings(&self, term: TermId) -> &[Posting] {
        &self.postings[term.index()]
    }

    /// Posting list for a term string, empty when unindexed.
    pub fn postings_for(&self, term: &str) -> &[Posting] {
        match self.dict.get(term) {
            Some(id) => self.postings(id),
            None => &[],
        }
    }

    /// Term frequency of `term` in `doc` (binary search over the posting
    /// list).
    pub fn term_freq(&self, term: &str, doc: DocId) -> u32 {
        let p = self.postings_for(term);
        match p.binary_search_by_key(&doc, |e| e.doc) {
            Ok(i) => p[i].tf,
            Err(_) => 0,
        }
    }
}

/// Accumulates documents, then freezes into an [`InvertedIndex`].
#[derive(Debug, Default)]
pub struct IndexBuilder {
    dict: TermDictionary,
    postings: Vec<Vec<Posting>>,
    doc_len: Vec<u32>,
    total_len: u64,
}

impl IndexBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one document given its term stream; returns its [`DocId`].
    ///
    /// Documents are assigned consecutive ids starting at 0, so callers can
    /// keep a parallel store of originals.
    pub fn add_document<S: AsRef<str>>(&mut self, terms: &[S]) -> DocId {
        let doc = DocId(
            u32::try_from(self.doc_len.len()).expect("index overflow: more than 2^32 documents"),
        );
        let mut tf: FxHashMap<TermId, u32> = FxHashMap::default();
        for t in terms {
            let id = self.dict.get_or_insert(t.as_ref());
            *tf.entry(id).or_default() += 1;
        }
        let mut entries: Vec<(TermId, u32)> = tf.into_iter().collect();
        entries.sort_unstable_by_key(|(t, _)| *t);
        for (term, tf) in entries {
            if term.index() >= self.postings.len() {
                self.postings.resize_with(term.index() + 1, Vec::new);
            }
            self.postings[term.index()].push(Posting { doc, tf });
            self.dict.bump_doc_freq(term);
        }
        self.doc_len.push(terms.len() as u32);
        self.total_len += terms.len() as u64;
        doc
    }

    /// Add one document given pre-aggregated `(term, count)` pairs; returns
    /// its [`DocId`].
    ///
    /// Equivalent to [`IndexBuilder::add_document`] on the stream that
    /// repeats each term `count` times in order: the document length is the
    /// sum of counts and the resulting index is identical given the same
    /// term order. Pairs with a zero count are ignored. This is the entry
    /// point segment merges use to replay documents straight from posting
    /// lists without materialising token streams.
    pub fn add_document_counts<S: AsRef<str>>(&mut self, counts: &[(S, u32)]) -> DocId {
        let doc = DocId(
            u32::try_from(self.doc_len.len()).expect("index overflow: more than 2^32 documents"),
        );
        let mut len: u64 = 0;
        let mut tf: FxHashMap<TermId, u32> = FxHashMap::default();
        for (t, count) in counts {
            if *count == 0 {
                continue;
            }
            let id = self.dict.get_or_insert(t.as_ref());
            *tf.entry(id).or_default() += count;
            len += u64::from(*count);
        }
        let mut entries: Vec<(TermId, u32)> = tf.into_iter().collect();
        entries.sort_unstable_by_key(|(t, _)| *t);
        for (term, tf) in entries {
            if term.index() >= self.postings.len() {
                self.postings.resize_with(term.index() + 1, Vec::new);
            }
            self.postings[term.index()].push(Posting { doc, tf });
            self.dict.bump_doc_freq(term);
        }
        let len = u32::try_from(len).expect("document longer than 2^32 tokens");
        self.doc_len.push(len);
        self.total_len += u64::from(len);
        doc
    }

    /// Number of documents added so far.
    pub fn doc_count(&self) -> usize {
        self.doc_len.len()
    }

    /// The dictionary built so far.
    pub fn dictionary(&self) -> &TermDictionary {
        &self.dict
    }

    /// Freeze into an immutable index.
    pub fn build(mut self) -> InvertedIndex {
        // Terms interned but never posted (impossible through the public
        // API, defensive for future extension).
        self.postings.resize_with(self.dict.len(), Vec::new);
        InvertedIndex {
            dict: self.dict,
            postings: self.postings,
            doc_len: self.doc_len,
            total_len: self.total_len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        b.add_document(&["taliban", "attack", "pakistan", "attack"]);
        b.add_document(&["pakistan", "election"]);
        b.add_document(&["sports", "match"]);
        b.build()
    }

    #[test]
    fn doc_ids_are_sequential() {
        let mut b = IndexBuilder::new();
        assert_eq!(b.add_document(&["a"]), DocId(0));
        assert_eq!(b.add_document(&["b"]), DocId(1));
        assert_eq!(b.doc_count(), 2);
    }

    #[test]
    fn postings_sorted_with_tf() {
        let idx = sample();
        let p = idx.postings_for("pakistan");
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].doc, DocId(0));
        assert_eq!(p[1].doc, DocId(1));
        assert!(p.windows(2).all(|w| w[0].doc < w[1].doc));
        assert_eq!(idx.term_freq("attack", DocId(0)), 2);
        assert_eq!(idx.term_freq("attack", DocId(1)), 0);
    }

    #[test]
    fn doc_freq_counts_documents_not_occurrences() {
        let idx = sample();
        let d = idx.dictionary();
        assert_eq!(d.doc_freq(d.get("attack").unwrap()), 1);
        assert_eq!(d.doc_freq(d.get("pakistan").unwrap()), 2);
    }

    #[test]
    fn lengths_and_average() {
        let idx = sample();
        assert_eq!(idx.doc_len(DocId(0)), 4);
        assert_eq!(idx.doc_len(DocId(1)), 2);
        assert!((idx.avg_doc_len() - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_terms_have_empty_postings() {
        let idx = sample();
        assert!(idx.postings_for("zebra").is_empty());
        assert_eq!(idx.term_freq("zebra", DocId(0)), 0);
    }

    #[test]
    fn empty_index() {
        let idx = IndexBuilder::new().build();
        assert_eq!(idx.doc_count(), 0);
        assert_eq!(idx.avg_doc_len(), 0.0);
    }

    #[test]
    fn counts_entry_matches_stream_entry() {
        let mut a = IndexBuilder::new();
        a.add_document(&["x", "y", "x", "z"]);
        a.add_document(&["y", "y"]);
        let a = a.build();

        let mut b = IndexBuilder::new();
        b.add_document_counts(&[("x", 2u32), ("y", 1), ("z", 1), ("dead", 0)]);
        b.add_document_counts(&[("y", 2u32)]);
        let b = b.build();

        assert_eq!(a.doc_count(), b.doc_count());
        for term in ["x", "y", "z"] {
            assert_eq!(a.postings_for(term), b.postings_for(term), "term {term}");
            let (da, db) = (a.dictionary(), b.dictionary());
            assert_eq!(
                da.doc_freq(da.get(term).unwrap()),
                db.doc_freq(db.get(term).unwrap())
            );
        }
        assert!(b.dictionary().get("dead").is_none(), "zero-count terms are not interned");
        assert!(b.postings_for("dead").is_empty());
        assert_eq!(a.doc_len(DocId(0)), b.doc_len(DocId(0)));
        assert_eq!(a.avg_doc_len(), b.avg_doc_len());
    }

    #[test]
    fn collection_stats_overlay_matches_index() {
        let idx = sample();
        let stats = CollectionStats::from_index(&idx);
        assert_eq!(stats.docs, 3);
        assert_eq!(stats.total_len, 8);
        assert_eq!(stats.avg_doc_len(), idx.avg_doc_len());
        assert_eq!(CollectionStats::default().avg_doc_len(), 0.0);

        // Summing shard stats reproduces the monolithic overlay exactly.
        let mut sum = CollectionStats::default();
        sum.add(CollectionStats { docs: 1, total_len: 4 });
        sum.add_doc(2);
        sum.add_doc(2);
        assert_eq!(sum, stats);
    }

    #[test]
    fn empty_document_indexable() {
        let mut b = IndexBuilder::new();
        let d = b.add_document::<&str>(&[]);
        let idx = b.build();
        assert_eq!(idx.doc_len(d), 0);
        assert_eq!(idx.doc_count(), 1);
    }
}
