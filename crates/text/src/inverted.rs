//! The inverted index.
//!
//! Frozen posting lists per term, document lengths, and collection
//! statistics — the substrate both the "Lucene" baseline and NewsLink's
//! BOW/BON scoring run on. Build with [`IndexBuilder`], then query through
//! [`crate::search::Searcher`].
//!
//! ## Block-compressed postings
//!
//! Sealed posting lists are stored as fixed-size blocks of
//! [`BLOCK_LEN`] entries, each a run of delta-coded LEB128 varints
//! `(doc_delta, tf)`. Deltas continue across block boundaries (block
//! `i`'s first delta is relative to block `i-1`'s last document), so a
//! sequential [`PostingList::iter`] is one straight scan of the byte
//! stream. Per-block metadata ([`BlockMeta`]) records the block's last
//! document id and maximum term frequency: `last_doc` lets
//! [`PostingCursor::seek`] skip whole blocks without decoding them, and
//! `max_tf` gives block-max evaluators a per-block BM25 score bound.
//! The [`IndexBuilder`] accumulates plain `Vec<Posting>` buffers and
//! compresses only on [`IndexBuilder::build`] — the live (unsealed)
//! representation stays uncompressed.

use newslink_util::{Bytes, FxHashMap};

use crate::dictionary::{TermDictionary, TermId};

/// Dense document id within one index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DocId(pub u32);

impl DocId {
    /// The document's index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One `(document, term-frequency)` entry in a posting list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// The containing document.
    pub doc: DocId,
    /// Occurrences of the term in that document.
    pub tf: u32,
}

/// Entries per compressed posting block. Every block except the last
/// holds exactly this many postings, so a posting's rank is
/// `block_index * BLOCK_LEN + offset_in_block`.
pub const BLOCK_LEN: usize = 128;

/// Metadata of one compressed posting block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMeta {
    /// Highest document id in the block (skip pointer).
    pub last_doc: u32,
    /// Highest term frequency in the block (score-bound input).
    pub max_tf: u32,
    /// Byte offset of the block's first delta in the list's data.
    pub(crate) offset: u32,
}

/// Append `v` as a LEB128 varint (same wire format as
/// `newslink_util::varint::write_u32`).
#[inline]
fn push_varint(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Decode one LEB128 varint from trusted in-memory data. Panics on
/// truncation — the encoder in this module is the only producer.
#[inline]
fn read_varint(data: &[u8], pos: &mut usize) -> u32 {
    let mut shift = 0u32;
    let mut out = 0u32;
    loop {
        let b = data[*pos];
        *pos += 1;
        out |= u32::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return out;
        }
        shift += 7;
    }
}

/// A block-compressed, immutable posting list sorted by document id.
///
/// The delta bytes live in a [`Bytes`] region, so a list decoded from a
/// memory-mapped segment references the mapping directly — the cursor's
/// block-skipping seek and the block-max evaluators run straight off the
/// mapped file with no heap copy of the postings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PostingList {
    /// Concatenated `(doc_delta, tf)` varint pairs for all blocks.
    data: Bytes,
    /// One entry per block, ascending by `last_doc`.
    blocks: Vec<BlockMeta>,
    /// Total postings across all blocks.
    count: usize,
}

/// The empty list `postings_for` hands out for unindexed terms.
static EMPTY_LIST: PostingList = PostingList {
    data: Bytes::empty(),
    blocks: Vec::new(),
    count: 0,
};

impl PostingList {
    /// Compress a doc-sorted posting slice into blocks.
    pub fn from_postings(postings: &[Posting]) -> Self {
        let mut data = Vec::new();
        let mut blocks = Vec::with_capacity(postings.len().div_ceil(BLOCK_LEN));
        let mut prev = 0u32;
        for chunk in postings.chunks(BLOCK_LEN) {
            let offset = u32::try_from(data.len()).expect("posting list exceeds 4 GiB");
            let mut max_tf = 0u32;
            for p in chunk {
                debug_assert!(p.doc.0 >= prev, "postings must be sorted by doc id");
                push_varint(&mut data, p.doc.0 - prev);
                push_varint(&mut data, p.tf);
                max_tf = max_tf.max(p.tf);
                prev = p.doc.0;
            }
            blocks.push(BlockMeta {
                last_doc: prev,
                max_tf,
                offset,
            });
        }
        Self {
            data: Bytes::from_vec(data),
            blocks,
            count: postings.len(),
        }
    }

    /// Assemble from already-validated compressed parts (codec read
    /// path). `data` may be a zero-copy view into a mapped segment.
    pub(crate) fn from_raw_parts(data: Bytes, blocks: Vec<BlockMeta>, count: usize) -> Self {
        Self {
            data,
            blocks,
            count,
        }
    }

    /// The whole delta byte stream (codec write path).
    pub(crate) fn raw_data(&self) -> &[u8] {
        &self.data
    }

    /// Number of postings.
    #[inline]
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when no document contains the term.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Per-block metadata, ascending by `last_doc`.
    pub fn blocks(&self) -> &[BlockMeta] {
        &self.blocks
    }

    /// The raw delta bytes of block `i` (codec write path).
    pub(crate) fn block_bytes(&self, i: usize) -> &[u8] {
        let start = self.blocks[i].offset as usize;
        let end = self
            .blocks
            .get(i + 1)
            .map_or(self.data.len(), |b| b.offset as usize);
        &self.data[start..end]
    }

    /// Highest term frequency anywhere in the list (list-level score
    /// bound input).
    pub fn max_tf(&self) -> u32 {
        self.blocks.iter().map(|b| b.max_tf).max().unwrap_or(0)
    }

    /// Heap bytes held by the compressed representation. Mapped delta
    /// bytes cost no heap and are not counted.
    pub fn heap_bytes(&self) -> usize {
        self.data.heap_bytes() + self.blocks.len() * std::mem::size_of::<BlockMeta>()
    }

    /// Entries in block `i` (every block is full except possibly the last).
    #[inline]
    fn block_len(&self, block: usize) -> usize {
        if block + 1 == self.blocks.len() {
            self.count - block * BLOCK_LEN
        } else {
            BLOCK_LEN
        }
    }

    /// Sequential decode of the whole list.
    pub fn iter(&self) -> PostingIter<'_> {
        PostingIter {
            data: &self.data,
            pos: 0,
            prev: 0,
            remaining: self.count,
        }
    }

    /// Decode into a plain vector (tests, merges).
    pub fn to_vec(&self) -> Vec<Posting> {
        self.iter().collect()
    }

    /// Random access: the posting for `doc` and its rank in the list,
    /// if present. Skips to the right block by metadata, then decodes
    /// only that block.
    pub fn find(&self, doc: DocId) -> Option<(usize, Posting)> {
        let bi = self.blocks.partition_point(|b| b.last_doc < doc.0);
        if bi >= self.blocks.len() {
            return None;
        }
        let mut pos = self.blocks[bi].offset as usize;
        let mut prev = if bi == 0 {
            0
        } else {
            self.blocks[bi - 1].last_doc
        };
        for j in 0..self.block_len(bi) {
            prev += read_varint(&self.data, &mut pos);
            let tf = read_varint(&self.data, &mut pos);
            if prev >= doc.0 {
                return (prev == doc.0).then_some((bi * BLOCK_LEN + j, Posting { doc, tf }));
            }
        }
        None
    }

    /// A seekable cursor positioned at the first posting.
    pub fn cursor(&self) -> PostingCursor<'_> {
        PostingCursor::new(self)
    }
}

/// Sequential iterator over a [`PostingList`].
#[derive(Debug, Clone)]
pub struct PostingIter<'a> {
    data: &'a [u8],
    pos: usize,
    prev: u32,
    remaining: usize,
}

impl Iterator for PostingIter<'_> {
    type Item = Posting;

    #[inline]
    fn next(&mut self) -> Option<Posting> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.prev += read_varint(self.data, &mut self.pos);
        let tf = read_varint(self.data, &mut self.pos);
        Some(Posting {
            doc: DocId(self.prev),
            tf,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for PostingIter<'_> {}

impl<'a> IntoIterator for &'a PostingList {
    type Item = Posting;
    type IntoIter = PostingIter<'a>;

    fn into_iter(self) -> PostingIter<'a> {
        self.iter()
    }
}

/// Batch-decode one block's `(doc_delta, tf)` varint pairs into the SoA
/// scratch arrays in a single pass over the block's exact byte range.
///
/// This is the hot decode loop under every scoring scan. Working on the
/// block's own sub-slice (instead of indexing the whole list's data with
/// a running offset) narrows the bounds the compiler must reason about,
/// and the single-byte fast path — the overwhelmingly common shape for
/// both delta and tf once ids are block-local — is one load, one compare
/// and one add, with the multi-byte continuation kept out of line.
#[inline]
fn decode_block_into(
    bytes: &[u8],
    mut prev: u32,
    len: usize,
    docs: &mut [u32; BLOCK_LEN],
    tfs: &mut [u32; BLOCK_LEN],
) {
    let mut pos = 0usize;
    for j in 0..len {
        prev += read_varint_fast(bytes, &mut pos);
        docs[j] = prev;
        tfs[j] = read_varint_fast(bytes, &mut pos);
    }
}

/// [`read_varint`] with the one-byte case inlined and the continuation
/// cold: values below 128 decode without entering the shift loop.
#[inline(always)]
fn read_varint_fast(bytes: &[u8], pos: &mut usize) -> u32 {
    let b = bytes[*pos];
    *pos += 1;
    if b & 0x80 == 0 {
        return u32::from(b);
    }
    read_varint_cont(bytes, pos, b)
}

/// Multi-byte continuation of [`read_varint_fast`]; identical wire
/// semantics to [`read_varint`], split out so the fast path stays small.
#[cold]
fn read_varint_cont(bytes: &[u8], pos: &mut usize, first: u8) -> u32 {
    let mut out = u32::from(first & 0x7f);
    let mut shift = 7u32;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        out |= u32::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return out;
        }
        shift += 7;
    }
}

/// A DAAT cursor over a [`PostingList`] with block-skipping `seek`.
///
/// The cursor keeps exactly one block decoded. [`PostingCursor::seek`]
/// first consults block metadata: blocks whose `last_doc` is below the
/// target are skipped whole, without decoding (counted in
/// [`PostingCursor::blocks_skipped`]), and only the landing block is
/// materialized.
#[derive(Debug, Clone)]
pub struct PostingCursor<'a> {
    list: &'a PostingList,
    /// Current block; `list.blocks.len()` once exhausted.
    block: usize,
    /// Position within the decoded block.
    pos: usize,
    /// Entries in the decoded block.
    len: usize,
    docs: [u32; BLOCK_LEN],
    tfs: [u32; BLOCK_LEN],
    blocks_skipped: u64,
}

impl<'a> PostingCursor<'a> {
    fn new(list: &'a PostingList) -> Self {
        let mut c = Self {
            list,
            block: 0,
            pos: 0,
            len: 0,
            docs: [0; BLOCK_LEN],
            tfs: [0; BLOCK_LEN],
            blocks_skipped: 0,
        };
        if !list.blocks.is_empty() {
            c.decode_block(0);
        }
        c
    }

    fn decode_block(&mut self, block: usize) {
        let prev = if block == 0 {
            0
        } else {
            self.list.blocks[block - 1].last_doc
        };
        let len = self.list.block_len(block);
        decode_block_into(
            self.list.block_bytes(block),
            prev,
            len,
            &mut self.docs,
            &mut self.tfs,
        );
        self.block = block;
        self.len = len;
        self.pos = 0;
    }

    /// True once every posting has been passed.
    #[inline]
    pub fn is_exhausted(&self) -> bool {
        self.block >= self.list.blocks.len()
    }

    /// The posting under the cursor.
    #[inline]
    pub fn current(&self) -> Option<Posting> {
        if self.is_exhausted() {
            None
        } else {
            Some(Posting {
                doc: DocId(self.docs[self.pos]),
                tf: self.tfs[self.pos],
            })
        }
    }

    /// The document under the cursor.
    #[inline]
    pub fn current_doc(&self) -> Option<DocId> {
        if self.is_exhausted() {
            None
        } else {
            Some(DocId(self.docs[self.pos]))
        }
    }

    /// Highest term frequency in the current block (0 when exhausted) —
    /// the block-max score-bound input.
    #[inline]
    pub fn block_max_tf(&self) -> u32 {
        if self.is_exhausted() {
            0
        } else {
            self.list.blocks[self.block].max_tf
        }
    }

    /// Blocks skipped whole (never decoded) by `seek` so far.
    pub fn blocks_skipped(&self) -> u64 {
        self.blocks_skipped
    }

    /// Step to the next posting.
    pub fn advance(&mut self) {
        if self.is_exhausted() {
            return;
        }
        self.pos += 1;
        if self.pos >= self.len {
            let next = self.block + 1;
            if next < self.list.blocks.len() {
                self.decode_block(next);
            } else {
                self.block = next;
            }
        }
    }

    /// Move to the first posting with `doc >= target`. Blocks wholly
    /// below the target are skipped by metadata without decoding.
    pub fn seek(&mut self, target: DocId) {
        if self.is_exhausted() || self.docs[self.pos] >= target.0 {
            return;
        }
        if self.list.blocks[self.block].last_doc < target.0 {
            let from = self.block + 1;
            let skip = self.list.blocks[from..].partition_point(|b| b.last_doc < target.0);
            self.blocks_skipped += skip as u64;
            let landing = from + skip;
            if landing >= self.list.blocks.len() {
                self.block = landing;
                return;
            }
            self.decode_block(landing);
        }
        // The block's last_doc is >= target, so the position is in range.
        self.pos += self.docs[self.pos..self.len].partition_point(|&d| d < target.0);
    }
}

/// Collection-level statistics BM25 needs: how many documents exist and
/// their total token length.
///
/// For a monolithic index these are just [`InvertedIndex::doc_count`] and
/// the internal length sum. For a *segmented* index they are the overlay
/// that makes per-segment scoring exact: sum the integer counts across
/// segments (exact — no float accumulation) and score every segment with
/// the collection-wide average. A single segment with its own stats is
/// the degenerate case and scores bit-identically to the monolithic path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectionStats {
    /// Documents in the collection.
    pub docs: usize,
    /// Total token length across those documents.
    pub total_len: u64,
}

impl CollectionStats {
    /// The stats of one monolithic index.
    pub fn from_index(index: &InvertedIndex) -> Self {
        Self {
            docs: index.doc_count(),
            total_len: index.total_len(),
        }
    }

    /// Fold another shard's counts in (integer addition, exact).
    pub fn add(&mut self, other: CollectionStats) {
        self.docs += other.docs;
        self.total_len += other.total_len;
    }

    /// Count one document of length `len`.
    pub fn add_doc(&mut self, len: u32) {
        self.docs += 1;
        self.total_len += u64::from(len);
    }

    /// Mean document length; 0 for an empty collection. Matches
    /// [`InvertedIndex::avg_doc_len`] operation-for-operation so overlay
    /// scoring stays bit-identical.
    pub fn avg_doc_len(&self) -> f64 {
        if self.docs == 0 {
            0.0
        } else {
            self.total_len as f64 / self.docs as f64
        }
    }
}

/// A frozen inverted index.
///
/// Two physical representations hide behind one API:
///
/// - **Owned** — dictionary hashmap, posting lists and doc-length table
///   materialized on the heap. What [`IndexBuilder::build`] and the
///   eager codec readers produce.
/// - **Mapped** — a zero-copy view over a columnar section (usually a
///   memory-mapped v4 snapshot): term lookups binary-search the on-disk
///   sorted term table, document lengths are read in place, and posting
///   lists materialize lazily (block metadata only — delta bytes stay
///   in the mapping) the first time a term is touched. Opening one is
///   O(1) in the corpus size; see
///   [`read_index_columnar_lazy`](crate::codec::read_index_columnar_lazy).
///
/// Both representations answer every query bit-identically: the mapped
/// form decodes the same bytes the eager reader would, just later.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    pub(crate) repr: Repr,
}

#[derive(Debug, Clone)]
pub(crate) enum Repr {
    Owned {
        dict: TermDictionary,
        postings: Vec<PostingList>,
        doc_len: Vec<u32>,
        total_len: u64,
    },
    Mapped(crate::codec::MappedColumnar),
}

impl InvertedIndex {
    /// Assemble an owned (fully materialized) index from its parts.
    pub(crate) fn from_owned_parts(
        dict: TermDictionary,
        postings: Vec<PostingList>,
        doc_len: Vec<u32>,
        total_len: u64,
    ) -> Self {
        Self {
            repr: Repr::Owned {
                dict,
                postings,
                doc_len,
                total_len,
            },
        }
    }

    /// Wrap a lazily-decoded columnar view (mapped representation).
    pub(crate) fn from_mapped(mapped: crate::codec::MappedColumnar) -> Self {
        Self {
            repr: Repr::Mapped(mapped),
        }
    }

    /// Number of indexed documents.
    #[inline]
    pub fn doc_count(&self) -> usize {
        match &self.repr {
            Repr::Owned { doc_len, .. } => doc_len.len(),
            Repr::Mapped(m) => m.doc_count(),
        }
    }

    /// Token length of `doc` (as counted at indexing time).
    #[inline]
    pub fn doc_len(&self, doc: DocId) -> u32 {
        match &self.repr {
            Repr::Owned { doc_len, .. } => doc_len[doc.index()],
            Repr::Mapped(m) => m.doc_len(doc.index()),
        }
    }

    /// Total token length across all documents.
    #[inline]
    pub(crate) fn total_len(&self) -> u64 {
        match &self.repr {
            Repr::Owned { total_len, .. } => *total_len,
            Repr::Mapped(m) => m.total_len(),
        }
    }

    /// Mean document length; 0 for an empty index.
    pub fn avg_doc_len(&self) -> f64 {
        if self.doc_count() == 0 {
            0.0
        } else {
            self.total_len() as f64 / self.doc_count() as f64
        }
    }

    /// The term dictionary.
    ///
    /// On a mapped index this **materializes** the full dictionary
    /// (every term string plus the lookup hashmap) on first call — fine
    /// for merges and offline walks, wrong for the query path. Query
    /// code should use [`term_id`](Self::term_id) and
    /// [`doc_freq`](Self::doc_freq), which stay O(log n) reads of the
    /// mapping.
    pub fn dictionary(&self) -> &TermDictionary {
        match &self.repr {
            Repr::Owned { dict, .. } => dict,
            Repr::Mapped(m) => m.dictionary(),
        }
    }

    /// Resolve a term string to its id without materializing the
    /// dictionary (hash lookup when owned, binary search over the
    /// on-disk sorted term table when mapped).
    pub fn term_id(&self, term: &str) -> Option<TermId> {
        match &self.repr {
            Repr::Owned { dict, .. } => dict.get(term),
            Repr::Mapped(m) => m.term_id(term),
        }
    }

    /// Document frequency of a term id.
    #[inline]
    pub fn doc_freq(&self, term: TermId) -> u32 {
        match &self.repr {
            Repr::Owned { dict, .. } => dict.doc_freq(term),
            Repr::Mapped(m) => m.doc_freq(term.index()),
        }
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        match &self.repr {
            Repr::Owned { dict, .. } => dict.len(),
            Repr::Mapped(m) => m.term_count(),
        }
    }

    /// Posting list for a term id (sorted by doc id). On a mapped index
    /// the list's block metadata materializes on first access; the delta
    /// bytes stay views of the mapping either way.
    #[inline]
    pub fn postings(&self, term: TermId) -> &PostingList {
        match &self.repr {
            Repr::Owned { postings, .. } => &postings[term.index()],
            Repr::Mapped(m) => m.postings(term.index()),
        }
    }

    /// Posting list for a term string, empty when unindexed.
    pub fn postings_for(&self, term: &str) -> &PostingList {
        match self.term_id(term) {
            Some(id) => self.postings(id),
            None => &EMPTY_LIST,
        }
    }

    /// Term frequency of `term` in `doc` (block-skip + in-block scan).
    pub fn term_freq(&self, term: &str, doc: DocId) -> u32 {
        self.postings_for(term)
            .find(doc)
            .map_or(0, |(_, p)| p.tf)
    }

    /// Heap bytes held by all compressed posting lists (blocks +
    /// deltas). A mapped index counts only the lists materialized so
    /// far — untouched terms cost nothing.
    pub fn postings_heap_bytes(&self) -> usize {
        match &self.repr {
            Repr::Owned { postings, .. } => postings.iter().map(PostingList::heap_bytes).sum(),
            Repr::Mapped(m) => m.postings_heap_bytes(),
        }
    }
}

/// Accumulates documents, then freezes into an [`InvertedIndex`].
#[derive(Debug, Default)]
pub struct IndexBuilder {
    dict: TermDictionary,
    postings: Vec<Vec<Posting>>,
    doc_len: Vec<u32>,
    total_len: u64,
}

impl IndexBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one document given its term stream; returns its [`DocId`].
    ///
    /// Documents are assigned consecutive ids starting at 0, so callers can
    /// keep a parallel store of originals.
    pub fn add_document<S: AsRef<str>>(&mut self, terms: &[S]) -> DocId {
        let doc = DocId(
            u32::try_from(self.doc_len.len()).expect("index overflow: more than 2^32 documents"),
        );
        let mut tf: FxHashMap<TermId, u32> = FxHashMap::default();
        for t in terms {
            let id = self.dict.get_or_insert(t.as_ref());
            *tf.entry(id).or_default() += 1;
        }
        let mut entries: Vec<(TermId, u32)> = tf.into_iter().collect();
        entries.sort_unstable_by_key(|(t, _)| *t);
        for (term, tf) in entries {
            if term.index() >= self.postings.len() {
                self.postings.resize_with(term.index() + 1, Vec::new);
            }
            self.postings[term.index()].push(Posting { doc, tf });
            self.dict.bump_doc_freq(term);
        }
        self.doc_len.push(terms.len() as u32);
        self.total_len += terms.len() as u64;
        doc
    }

    /// Add one document given pre-aggregated `(term, count)` pairs; returns
    /// its [`DocId`].
    ///
    /// Equivalent to [`IndexBuilder::add_document`] on the stream that
    /// repeats each term `count` times in order: the document length is the
    /// sum of counts and the resulting index is identical given the same
    /// term order. Pairs with a zero count are ignored. This is the entry
    /// point segment merges use to replay documents straight from posting
    /// lists without materialising token streams.
    pub fn add_document_counts<S: AsRef<str>>(&mut self, counts: &[(S, u32)]) -> DocId {
        let doc = DocId(
            u32::try_from(self.doc_len.len()).expect("index overflow: more than 2^32 documents"),
        );
        let mut len: u64 = 0;
        let mut tf: FxHashMap<TermId, u32> = FxHashMap::default();
        for (t, count) in counts {
            if *count == 0 {
                continue;
            }
            let id = self.dict.get_or_insert(t.as_ref());
            *tf.entry(id).or_default() += count;
            len += u64::from(*count);
        }
        let mut entries: Vec<(TermId, u32)> = tf.into_iter().collect();
        entries.sort_unstable_by_key(|(t, _)| *t);
        for (term, tf) in entries {
            if term.index() >= self.postings.len() {
                self.postings.resize_with(term.index() + 1, Vec::new);
            }
            self.postings[term.index()].push(Posting { doc, tf });
            self.dict.bump_doc_freq(term);
        }
        let len = u32::try_from(len).expect("document longer than 2^32 tokens");
        self.doc_len.push(len);
        self.total_len += u64::from(len);
        doc
    }

    /// Number of documents added so far.
    pub fn doc_count(&self) -> usize {
        self.doc_len.len()
    }

    /// The dictionary built so far.
    pub fn dictionary(&self) -> &TermDictionary {
        &self.dict
    }

    /// Freeze into an immutable index: seal every per-term buffer into
    /// its block-compressed form.
    pub fn build(mut self) -> InvertedIndex {
        // Terms interned but never posted (impossible through the public
        // API, defensive for future extension).
        self.postings.resize_with(self.dict.len(), Vec::new);
        InvertedIndex::from_owned_parts(
            self.dict,
            self.postings
                .iter()
                .map(|p| PostingList::from_postings(p))
                .collect(),
            self.doc_len,
            self.total_len,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        b.add_document(&["taliban", "attack", "pakistan", "attack"]);
        b.add_document(&["pakistan", "election"]);
        b.add_document(&["sports", "match"]);
        b.build()
    }

    #[test]
    fn doc_ids_are_sequential() {
        let mut b = IndexBuilder::new();
        assert_eq!(b.add_document(&["a"]), DocId(0));
        assert_eq!(b.add_document(&["b"]), DocId(1));
        assert_eq!(b.doc_count(), 2);
    }

    #[test]
    fn postings_sorted_with_tf() {
        let idx = sample();
        let p = idx.postings_for("pakistan").to_vec();
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].doc, DocId(0));
        assert_eq!(p[1].doc, DocId(1));
        assert!(p.windows(2).all(|w| w[0].doc < w[1].doc));
        assert_eq!(idx.term_freq("attack", DocId(0)), 2);
        assert_eq!(idx.term_freq("attack", DocId(1)), 0);
    }

    #[test]
    fn doc_freq_counts_documents_not_occurrences() {
        let idx = sample();
        let d = idx.dictionary();
        assert_eq!(d.doc_freq(d.get("attack").unwrap()), 1);
        assert_eq!(d.doc_freq(d.get("pakistan").unwrap()), 2);
    }

    #[test]
    fn lengths_and_average() {
        let idx = sample();
        assert_eq!(idx.doc_len(DocId(0)), 4);
        assert_eq!(idx.doc_len(DocId(1)), 2);
        assert!((idx.avg_doc_len() - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_terms_have_empty_postings() {
        let idx = sample();
        assert!(idx.postings_for("zebra").is_empty());
        assert_eq!(idx.term_freq("zebra", DocId(0)), 0);
        assert!(idx.postings_for("zebra").find(DocId(0)).is_none());
        assert!(idx.postings_for("zebra").cursor().current().is_none());
    }

    #[test]
    fn empty_index() {
        let idx = IndexBuilder::new().build();
        assert_eq!(idx.doc_count(), 0);
        assert_eq!(idx.avg_doc_len(), 0.0);
    }

    #[test]
    fn counts_entry_matches_stream_entry() {
        let mut a = IndexBuilder::new();
        a.add_document(&["x", "y", "x", "z"]);
        a.add_document(&["y", "y"]);
        let a = a.build();

        let mut b = IndexBuilder::new();
        b.add_document_counts(&[("x", 2u32), ("y", 1), ("z", 1), ("dead", 0)]);
        b.add_document_counts(&[("y", 2u32)]);
        let b = b.build();

        assert_eq!(a.doc_count(), b.doc_count());
        for term in ["x", "y", "z"] {
            assert_eq!(a.postings_for(term), b.postings_for(term), "term {term}");
            let (da, db) = (a.dictionary(), b.dictionary());
            assert_eq!(
                da.doc_freq(da.get(term).unwrap()),
                db.doc_freq(db.get(term).unwrap())
            );
        }
        assert!(b.dictionary().get("dead").is_none(), "zero-count terms are not interned");
        assert!(b.postings_for("dead").is_empty());
        assert_eq!(a.doc_len(DocId(0)), b.doc_len(DocId(0)));
        assert_eq!(a.avg_doc_len(), b.avg_doc_len());
    }

    #[test]
    fn collection_stats_overlay_matches_index() {
        let idx = sample();
        let stats = CollectionStats::from_index(&idx);
        assert_eq!(stats.docs, 3);
        assert_eq!(stats.total_len, 8);
        assert_eq!(stats.avg_doc_len(), idx.avg_doc_len());
        assert_eq!(CollectionStats::default().avg_doc_len(), 0.0);

        // Summing shard stats reproduces the monolithic overlay exactly.
        let mut sum = CollectionStats::default();
        sum.add(CollectionStats { docs: 1, total_len: 4 });
        sum.add_doc(2);
        sum.add_doc(2);
        assert_eq!(sum, stats);
    }

    #[test]
    fn empty_document_indexable() {
        let mut b = IndexBuilder::new();
        let d = b.add_document::<&str>(&[]);
        let idx = b.build();
        assert_eq!(idx.doc_len(d), 0);
        assert_eq!(idx.doc_count(), 1);
    }

    /// A long, gappy posting list spanning several blocks.
    fn long_list() -> (Vec<Posting>, PostingList) {
        let postings: Vec<Posting> = (0..1000u32)
            .map(|i| Posting {
                doc: DocId(i * 7 + (i % 3)),
                tf: 1 + (i % 9),
            })
            .collect();
        let list = PostingList::from_postings(&postings);
        (postings, list)
    }

    #[test]
    fn block_round_trip_multi_block() {
        let (postings, list) = long_list();
        assert_eq!(list.len(), postings.len());
        assert_eq!(list.blocks().len(), postings.len().div_ceil(BLOCK_LEN));
        assert_eq!(list.to_vec(), postings);
        // Block metadata matches the content.
        for (bi, chunk) in postings.chunks(BLOCK_LEN).enumerate() {
            let meta = list.blocks()[bi];
            assert_eq!(meta.last_doc, chunk.last().unwrap().doc.0);
            assert_eq!(meta.max_tf, chunk.iter().map(|p| p.tf).max().unwrap());
        }
        assert_eq!(list.max_tf(), 9);
    }

    #[test]
    fn find_matches_linear_scan() {
        let (postings, list) = long_list();
        for (rank, p) in postings.iter().enumerate() {
            assert_eq!(list.find(p.doc), Some((rank, *p)));
        }
        // Misses: docs in the gaps and past the end.
        assert_eq!(list.find(DocId(postings.last().unwrap().doc.0 + 1)), None);
        for probe in [3u32, 10, 7_000] {
            if postings.iter().all(|p| p.doc.0 != probe) {
                assert_eq!(list.find(DocId(probe)), None, "doc {probe}");
            }
        }
    }

    #[test]
    fn cursor_advance_walks_every_posting() {
        let (postings, list) = long_list();
        let mut c = list.cursor();
        for p in &postings {
            assert_eq!(c.current(), Some(*p));
            c.advance();
        }
        assert!(c.is_exhausted());
        assert!(c.current().is_none());
        c.advance();
        assert!(c.is_exhausted(), "advance past the end is a no-op");
    }

    #[test]
    fn cursor_seek_skips_blocks_without_decoding() {
        let (postings, list) = long_list();
        let mut c = list.cursor();
        // Jump straight to the last posting: every interior block skips.
        let last = *postings.last().unwrap();
        c.seek(last.doc);
        assert_eq!(c.current(), Some(last));
        assert_eq!(c.blocks_skipped(), list.blocks().len() as u64 - 2);
        // Seeking backwards or to the current doc is a no-op.
        c.seek(DocId(0));
        assert_eq!(c.current(), Some(last));
        c.advance();
        assert!(c.is_exhausted());
        c.seek(DocId(u32::MAX));
        assert!(c.is_exhausted());
    }

    #[test]
    fn cursor_seek_matches_linear_semantics() {
        let (postings, list) = long_list();
        // For a spread of targets: seek lands on the first doc >= target.
        for target in (0..7100u32).step_by(13) {
            let mut c = list.cursor();
            c.seek(DocId(target));
            let want = postings.iter().find(|p| p.doc.0 >= target).copied();
            assert_eq!(c.current(), want, "target {target}");
        }
    }

    #[test]
    fn cursor_block_max_tf_tracks_current_block() {
        let (postings, list) = long_list();
        let mut c = list.cursor();
        while let Some(p) = c.current() {
            let bi = postings.iter().position(|q| q.doc == p.doc).unwrap() / BLOCK_LEN;
            assert_eq!(c.block_max_tf(), list.blocks()[bi].max_tf);
            c.advance();
        }
        assert_eq!(c.block_max_tf(), 0);
    }

    #[test]
    fn compression_shrinks_dense_lists() {
        let postings: Vec<Posting> = (0..10_000u32)
            .map(|i| Posting { doc: DocId(i), tf: 1 })
            .collect();
        let list = PostingList::from_postings(&postings);
        let uncompressed = postings.len() * std::mem::size_of::<Posting>();
        assert!(
            list.heap_bytes() < uncompressed / 2,
            "expected >2x shrink: {} vs {uncompressed}",
            list.heap_bytes()
        );
    }
}
