//! Property tests for the retrieval substrate: pruning and persistence
//! must be *exactly* equivalent to the naive paths on arbitrary corpora.

use proptest::prelude::*;

use newslink_text::{
    maxscore_search, read_index, write_index, Bm25, IndexBuilder, SegmentedIndex, Searcher,
};

/// Strategy: a corpus of small documents over a tiny vocabulary (so terms
/// collide across documents and scoring paths are exercised).
fn corpus_strategy() -> impl Strategy<Value = Vec<Vec<String>>> {
    prop::collection::vec(
        prop::collection::vec(0u8..20, 0..15)
            .prop_map(|ws| ws.into_iter().map(|w| format!("w{w}")).collect()),
        1..40,
    )
}

fn query_strategy() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(0u8..25, 1..6).prop_map(|ws| {
        ws.into_iter().map(|w| format!("w{w}")).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// MaxScore pruning returns exactly the exhaustive top-k.
    #[test]
    fn maxscore_equals_exhaustive(docs in corpus_strategy(), query in query_strategy(), k in 1usize..8) {
        let mut b = IndexBuilder::new();
        for d in &docs {
            b.add_document(d);
        }
        let index = b.build();
        let naive = Searcher::new(&index, Bm25::default()).search(&query, k);
        let pruned = maxscore_search(&index, Bm25::default(), &query, k);
        prop_assert_eq!(naive.len(), pruned.len());
        for (a, b) in naive.iter().zip(&pruned) {
            prop_assert_eq!(a.doc, b.doc);
            prop_assert!((a.score - b.score).abs() < 1e-9);
        }
    }

    /// The binary codec round-trips scores exactly.
    #[test]
    fn codec_preserves_scores(docs in corpus_strategy(), query in query_strategy()) {
        let mut b = IndexBuilder::new();
        for d in &docs {
            b.add_document(d);
        }
        let index = b.build();
        let mut buf = Vec::new();
        write_index(&index, &mut buf).unwrap();
        let back = read_index(&mut &buf[..]).unwrap();
        let a = Searcher::new(&index, Bm25::default()).search(&query, 10);
        let c = Searcher::new(&back, Bm25::default()).search(&query, 10);
        prop_assert_eq!(a.len(), c.len());
        for (x, y) in a.iter().zip(&c) {
            prop_assert_eq!(x.doc, y.doc);
            prop_assert!((x.score - y.score).abs() < 1e-15);
        }
    }

    /// A segmented index (arbitrary commit points) scores identically to a
    /// flat index over the same documents.
    #[test]
    fn segments_are_transparent(
        docs in corpus_strategy(),
        query in query_strategy(),
        commit_every in 1usize..6,
        max_segments in 1usize..4,
    ) {
        let mut seg = SegmentedIndex::new(max_segments);
        let mut flat = IndexBuilder::new();
        for (i, d) in docs.iter().enumerate() {
            seg.add_document(d);
            flat.add_document(d);
            if i % commit_every == 0 {
                seg.commit();
            }
        }
        seg.commit();
        let flat = flat.build();
        let seg_hits = seg.search(&query, 10);
        let flat_hits = Searcher::new(&flat, Bm25::default()).search(&query, 10);
        prop_assert_eq!(seg_hits.len(), flat_hits.len());
        for (s, f) in seg_hits.iter().zip(&flat_hits) {
            prop_assert_eq!(s.0, u64::from(f.doc.0));
            prop_assert!((s.1 - f.score).abs() < 1e-9, "{} vs {}", s.1, f.score);
        }
    }

    /// Deleting a document is equivalent to never having indexed it.
    #[test]
    fn deletion_equals_omission(
        docs in corpus_strategy(),
        query in query_strategy(),
        del_mask in prop::collection::vec(any::<bool>(), 1..40),
    ) {
        let mut seg = SegmentedIndex::new(2);
        let mut ids = Vec::new();
        for d in &docs {
            ids.push(seg.add_document(d));
            seg.commit();
        }
        let mut live = Vec::new();
        for (i, d) in docs.iter().enumerate() {
            if *del_mask.get(i).unwrap_or(&false) {
                seg.delete_document(ids[i]);
            } else {
                live.push((ids[i], d.clone()));
            }
        }
        seg.commit();
        let mut flat = IndexBuilder::new();
        for (_, d) in &live {
            flat.add_document(d);
        }
        let flat = flat.build();
        let seg_hits = seg.search(&query, 10);
        let flat_hits = Searcher::new(&flat, Bm25::default()).search(&query, 10);
        prop_assert_eq!(seg_hits.len(), flat_hits.len());
        for (s, f) in seg_hits.iter().zip(&flat_hits) {
            prop_assert_eq!(s.0, live[f.doc.index()].0);
            prop_assert!((s.1 - f.score).abs() < 1e-9);
        }
    }
}
