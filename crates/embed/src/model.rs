//! The subgraph-embedding model: Common Ancestor Graphs and the
//! compactness order (Definitions 3–5 of the paper).

use newslink_kg::{NodeId, Symbol};

/// One directed edge of an embedding, oriented along a shortest path from
/// an entity node *toward the root* (the paper's paths `l → r`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EmbedEdge {
    /// Path-order source (closer to the entity).
    pub from: NodeId,
    /// Path-order target (closer to the root).
    pub to: NodeId,
    /// The relationship predicate.
    pub predicate: Symbol,
    /// True when the traversal used the reversed twin of the original KG
    /// edge (i.e. the original relationship points `to → from`).
    pub inverse: bool,
}

/// A Common Ancestor Graph `G_r(L)` (Definition 3): the union of *all*
/// shortest paths from every entity label in `L` to the root `r`.
///
/// The optimal one under the compactness order is the paper's Lowest
/// Common Ancestor Graph `G*` (Definition 5) and serves as the subgraph
/// embedding of one news segment.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CommonAncestorGraph {
    /// The common-ancestor root.
    pub root: NodeId,
    /// The input entity labels (normalized), in input order.
    pub labels: Vec<String>,
    /// `D(l_i, root)` per label, aligned with `labels`.
    pub distances: Vec<u32>,
    /// All nodes on some retained shortest path (sources, internals, root);
    /// sorted and deduplicated.
    pub nodes: Vec<NodeId>,
    /// All edges of the retained shortest-path DAG, oriented entity→root.
    pub edges: Vec<EmbedEdge>,
    /// For each label, its source nodes `S(l_i)` that realize the shortest
    /// distance (the path start points).
    pub sources: Vec<Vec<NodeId>>,
}

impl CommonAncestorGraph {
    /// The depth `d(G_r) = max_i D(l_i, r)`.
    pub fn depth(&self) -> u32 {
        self.distances.iter().copied().max().unwrap_or(0)
    }

    /// The compactness key: distances sorted in descending order
    /// (Definition 4 compares these lexicographically).
    pub fn compactness_key(&self) -> Vec<u32> {
        let mut v = self.distances.clone();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }

    /// True when `node` lies in this embedding.
    pub fn contains_node(&self, node: NodeId) -> bool {
        self.nodes.binary_search(&node).is_ok()
    }

    /// Number of nodes in the embedding.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

/// Definition 4: compare two candidate embeddings by their descending
/// distance vectors, lexicographically; `Less` means *more compact*
/// (`G_r < G_{r'}`).
///
/// The vectors must stem from the same label set `L`, so they have equal
/// length; if lengths differ (defensive), the shorter is padded with 0,
/// which matches treating missing labels as distance 0.
pub fn compactness_cmp(a: &[u32], b: &[u32]) -> std::cmp::Ordering {
    let n = a.len().max(b.len());
    for i in 0..n {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        match x.cmp(&y) {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    std::cmp::Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cag(root: u32, distances: Vec<u32>) -> CommonAncestorGraph {
        CommonAncestorGraph {
            root: NodeId(root),
            labels: distances.iter().map(|d| format!("l{d}")).collect(),
            distances,
            nodes: vec![NodeId(root)],
            edges: vec![],
            sources: vec![],
        }
    }

    #[test]
    fn depth_is_max_distance() {
        assert_eq!(cag(0, vec![2, 1, 1, 1]).depth(), 2);
        assert_eq!(cag(0, vec![]).depth(), 0);
    }

    #[test]
    fn compactness_key_sorts_descending() {
        assert_eq!(cag(0, vec![1, 2, 1, 1]).compactness_key(), vec![2, 1, 1, 1]);
    }

    #[test]
    fn paper_compactness_example() {
        // G_{v0}: {2,1,1,1}; G_u: {2,2,1,1} — G_{v0} is more compact
        // because the second-largest distance is smaller.
        let g_v0 = cag(0, vec![2, 1, 1, 1]).compactness_key();
        let g_u = cag(1, vec![2, 2, 1, 1]).compactness_key();
        assert_eq!(compactness_cmp(&g_v0, &g_u), std::cmp::Ordering::Less);
    }

    #[test]
    fn equal_vectors_are_equal() {
        let a = vec![3, 2, 1];
        assert_eq!(compactness_cmp(&a, &a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn first_coordinate_dominates() {
        assert_eq!(
            compactness_cmp(&[1, 9, 9], &[2, 0, 0]),
            std::cmp::Ordering::Less
        );
    }

    #[test]
    fn smaller_depth_implies_more_compact() {
        // Lemma 1's underpinning: d(G) < d(G') ⇒ G < G'.
        let a = vec![2, 2, 2];
        let b = vec![3, 0, 0];
        assert_eq!(compactness_cmp(&a, &b), std::cmp::Ordering::Less);
    }

    #[test]
    fn contains_node_uses_sorted_nodes() {
        let mut g = cag(5, vec![1]);
        g.nodes = vec![NodeId(1), NodeId(3), NodeId(5)];
        assert!(g.contains_node(NodeId(3)));
        assert!(!g.contains_node(NodeId(2)));
        assert_eq!(g.node_count(), 3);
    }
}
