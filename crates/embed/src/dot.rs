//! Graphviz DOT export of subgraph embeddings.
//!
//! The paper communicates its contribution through figures: Figure 1
//! (query and result embeddings with their overlap), Figure 4 (a document
//! embedding with overlapped group nodes in orange, roots as squares) and
//! Figure 6 (the case study). This module renders exactly those pictures
//! from real embeddings — feed the output to `dot -Tsvg`.
//!
//! Conventions (matching the paper's legend):
//! - lowest-common-ancestor roots are drawn as boxes, other nodes as
//!   ellipses;
//! - nodes/edges in the *query* embedding only are blue, in the *result*
//!   only are green, and in the overlap are orange;
//! - edges are drawn in their original KG direction with predicate labels.

use std::fmt::Write as _;

use newslink_kg::{KnowledgeGraph, NodeId};
use newslink_util::{FxHashMap, FxHashSet};

use crate::union::DocEmbedding;

/// Escape a DOT double-quoted string.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Which side(s) of a comparison an element belongs to.
#[derive(Clone, Copy, PartialEq)]
enum Side {
    A,
    B,
    Both,
}

impl Side {
    fn color(self) -> &'static str {
        match self {
            Side::A => "#4477ff",
            Side::B => "#33aa55",
            Side::Both => "#ff8800",
        }
    }
}

fn write_node(
    out: &mut String,
    graph: &KnowledgeGraph,
    node: NodeId,
    side: Side,
    is_root: bool,
) {
    let shape = if is_root { "box" } else { "ellipse" };
    let _ = writeln!(
        out,
        "  n{} [label=\"{}\", shape={}, color=\"{}\", fontcolor=\"{}\"];",
        node.0,
        escape(graph.label(node)),
        shape,
        side.color(),
        side.color(),
    );
}

/// Render one document embedding (the paper's Figure 4 style): group
/// overlap in orange, roots as boxes.
pub fn embedding_to_dot(graph: &KnowledgeGraph, embedding: &DocEmbedding, name: &str) -> String {
    let mut out = format!("digraph \"{}\" {{\n  rankdir=BT;\n", escape(name));
    let counts = embedding.node_counts();
    let roots: FxHashSet<NodeId> = embedding.groups.iter().map(|g| g.root).collect();
    let mut nodes: Vec<NodeId> = counts.keys().copied().collect();
    nodes.sort_unstable();
    for node in nodes {
        let side = if counts[&node] > 1 { Side::Both } else { Side::A };
        write_node(&mut out, graph, node, side, roots.contains(&node));
    }
    let mut edge_counts: FxHashMap<(NodeId, NodeId, &str), usize> = FxHashMap::default();
    for g in &embedding.groups {
        for e in &g.edges {
            // Original KG direction.
            let (src, dst) = if e.inverse { (e.to, e.from) } else { (e.from, e.to) };
            *edge_counts
                .entry((src, dst, graph.resolve(e.predicate)))
                .or_default() += 1;
        }
    }
    let mut edges: Vec<((NodeId, NodeId, &str), usize)> = edge_counts.into_iter().collect();
    edges.sort_by_key(|((a, b, p), _)| (*a, *b, p.to_string()));
    for ((src, dst, pred), count) in edges {
        let side = if count > 1 { Side::Both } else { Side::A };
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"{}\", color=\"{}\"];",
            src.0,
            dst.0,
            escape(pred),
            side.color(),
        );
    }
    out.push_str("}\n");
    out
}

/// Render a query/result pair with overlap highlighting (the paper's
/// Figures 1 and 6).
pub fn overlap_to_dot(
    graph: &KnowledgeGraph,
    query: &DocEmbedding,
    result: &DocEmbedding,
    name: &str,
) -> String {
    let mut out = format!("digraph \"{}\" {{\n  rankdir=BT;\n", escape(name));
    let qa = query.node_counts();
    let rb = result.node_counts();
    let roots: FxHashSet<NodeId> = query
        .groups
        .iter()
        .chain(&result.groups)
        .map(|g| g.root)
        .collect();
    let mut nodes: Vec<NodeId> = qa.keys().chain(rb.keys()).copied().collect();
    nodes.sort_unstable();
    nodes.dedup();
    for node in nodes {
        let side = match (qa.contains_key(&node), rb.contains_key(&node)) {
            (true, true) => Side::Both,
            (true, false) => Side::A,
            _ => Side::B,
        };
        write_node(&mut out, graph, node, side, roots.contains(&node));
    }
    let qe: FxHashSet<(NodeId, NodeId, &str)> = query
        .all_edges()
        .into_iter()
        .map(|e| {
            let (src, dst) = if e.inverse { (e.to, e.from) } else { (e.from, e.to) };
            (src, dst, graph.resolve(e.predicate))
        })
        .collect();
    let re: FxHashSet<(NodeId, NodeId, &str)> = result
        .all_edges()
        .into_iter()
        .map(|e| {
            let (src, dst) = if e.inverse { (e.to, e.from) } else { (e.from, e.to) };
            (src, dst, graph.resolve(e.predicate))
        })
        .collect();
    let mut all: Vec<&(NodeId, NodeId, &str)> = qe.union(&re).collect();
    all.sort_by_key(|(a, b, p)| (*a, *b, p.to_string()));
    for &(src, dst, pred) in all {
        let side = match (qe.contains(&(src, dst, pred)), re.contains(&(src, dst, pred))) {
            (true, true) => Side::Both,
            (true, false) => Side::A,
            _ => Side::B,
        };
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"{}\", color=\"{}\"];",
            src.0,
            dst.0,
            escape(pred),
            side.color(),
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{find_lcag, SearchConfig};
    use newslink_kg::{EntityType, GraphBuilder, LabelIndex};

    fn fixture() -> (KnowledgeGraph, DocEmbedding, DocEmbedding) {
        let mut b = GraphBuilder::new();
        let khyber = b.add_node("Khyber", EntityType::Gpe);
        let kunar = b.add_node("Kunar", EntityType::Gpe);
        let taliban = b.add_node("Taliban", EntityType::Organization);
        let pakistan = b.add_node("Pakistan", EntityType::Gpe);
        let lahore = b.add_node("Lahore \"the city\"", EntityType::Gpe);
        b.add_edge(kunar, khyber, "borders", 1);
        b.add_edge(taliban, kunar, "operates in", 1);
        b.add_edge(taliban, khyber, "operates in", 1);
        b.add_edge(khyber, pakistan, "located in", 1);
        b.add_edge(lahore, pakistan, "located in", 1);
        let g = b.freeze();
        let idx = LabelIndex::build(&g);
        let cfg = SearchConfig::default();
        let q = DocEmbedding::new(vec![
            find_lcag(&g, &idx, &["taliban".into(), "pakistan".into()], &cfg).unwrap(),
        ]);
        let r = DocEmbedding::new(vec![
            find_lcag(&g, &idx, &["kunar".into(), "pakistan".into()], &cfg).unwrap(),
        ]);
        (g, q, r)
    }

    #[test]
    fn embedding_dot_is_well_formed() {
        let (g, q, _) = fixture();
        let dot = embedding_to_dot(&g, &q, "query");
        assert!(dot.starts_with("digraph \"query\" {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("Taliban"));
        assert!(dot.contains("->"));
        // Root drawn as a box.
        assert!(dot.contains("shape=box"));
    }

    #[test]
    fn overlap_dot_colors_three_ways() {
        let (g, q, r) = fixture();
        let dot = overlap_to_dot(&g, &q, &r, "figure1");
        // Query-only (blue), result-only (green) and shared (orange) all
        // appear: Taliban is query-only, Kunar result-only, Pakistan shared.
        assert!(dot.contains(Side::A.color()));
        assert!(dot.contains(Side::B.color()));
        assert!(dot.contains(Side::Both.color()));
    }

    #[test]
    fn labels_with_quotes_escaped() {
        let (g, _, _) = fixture();
        let lahore = g.nodes().find(|&n| g.label(n).contains("the city")).unwrap();
        let e = DocEmbedding::new(vec![crate::model::CommonAncestorGraph {
            root: lahore,
            labels: vec!["lahore".into()],
            distances: vec![0],
            nodes: vec![lahore],
            edges: vec![],
            sources: vec![vec![lahore]],
        }]);
        let dot = embedding_to_dot(&g, &e, "esc");
        assert!(dot.contains("\\\"the city\\\""));
    }

    #[test]
    fn empty_embedding_renders_empty_graph() {
        let (g, _, _) = fixture();
        let dot = embedding_to_dot(&g, &DocEmbedding::default(), "empty");
        assert!(dot.contains("digraph"));
        assert!(!dot.contains("->"));
    }

    #[test]
    fn edges_render_in_original_kg_direction() {
        let (g, q, _) = fixture();
        let dot = embedding_to_dot(&g, &q, "dir");
        // The KG has khyber -> pakistan "located in"; regardless of
        // traversal direction the DOT edge must read n0 -> n3.
        assert!(dot.contains("n0 -> n3"), "{dot}");
    }
}
