//! Binary persistence for subgraph embeddings.
//!
//! Embeddings reference knowledge-graph node ids and interned predicate
//! symbols, so a serialized embedding is only meaningful against the same
//! graph build; callers store a graph fingerprint alongside (see
//! `newslink-core`'s index persistence, which does).

use std::io::{self, Read, Write};

use newslink_kg::{NodeId, Symbol};
use newslink_util::varint;

use crate::model::{CommonAncestorGraph, EmbedEdge};
use crate::union::DocEmbedding;

/// Defensive bound on decoded label length.
const MAX_LABEL_BYTES: usize = 1 << 12;
/// Defensive bound on collection sizes when decoding untrusted data.
const MAX_ITEMS: usize = 1 << 24;

fn read_len<R: Read>(r: &mut R) -> io::Result<usize> {
    let n = varint::read_u64(r)? as usize;
    if n > MAX_ITEMS {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "collection length exceeds sanity bound",
        ));
    }
    Ok(n)
}

/// Serialize one group embedding.
pub fn write_group<W: Write>(g: &CommonAncestorGraph, out: &mut W) -> io::Result<()> {
    varint::write_u32(out, g.root.0)?;
    varint::write_u64(out, g.labels.len() as u64)?;
    for (label, &dist) in g.labels.iter().zip(&g.distances) {
        varint::write_str(out, label)?;
        varint::write_u32(out, dist)?;
    }
    varint::write_u64(out, g.nodes.len() as u64)?;
    let mut prev = 0u32;
    for (i, n) in g.nodes.iter().enumerate() {
        // nodes are sorted: delta-code them
        let delta = if i == 0 { n.0 } else { n.0 - prev };
        varint::write_u32(out, delta)?;
        prev = n.0;
    }
    varint::write_u64(out, g.edges.len() as u64)?;
    for e in &g.edges {
        varint::write_u32(out, e.from.0)?;
        varint::write_u32(out, e.to.0)?;
        varint::write_u32(out, e.predicate.0)?;
        out.write_all(&[u8::from(e.inverse)])?;
    }
    varint::write_u64(out, g.sources.len() as u64)?;
    for srcs in &g.sources {
        varint::write_u64(out, srcs.len() as u64)?;
        for s in srcs {
            varint::write_u32(out, s.0)?;
        }
    }
    Ok(())
}

/// Deserialize one group embedding.
pub fn read_group<R: Read>(input: &mut R) -> io::Result<CommonAncestorGraph> {
    let root = NodeId(varint::read_u32(input)?);
    let n_labels = read_len(input)?;
    let mut labels = Vec::with_capacity(n_labels);
    let mut distances = Vec::with_capacity(n_labels);
    for _ in 0..n_labels {
        labels.push(varint::read_str(input, MAX_LABEL_BYTES)?);
        distances.push(varint::read_u32(input)?);
    }
    let n_nodes = read_len(input)?;
    let mut nodes = Vec::with_capacity(n_nodes);
    let mut prev = 0u32;
    for i in 0..n_nodes {
        let delta = varint::read_u32(input)?;
        let id = if i == 0 { delta } else {
            prev.checked_add(delta).ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "node id overflow")
            })?
        };
        nodes.push(NodeId(id));
        prev = id;
    }
    let n_edges = read_len(input)?;
    let mut edges = Vec::with_capacity(n_edges);
    for _ in 0..n_edges {
        let from = NodeId(varint::read_u32(input)?);
        let to = NodeId(varint::read_u32(input)?);
        let predicate = Symbol(varint::read_u32(input)?);
        let mut inv = [0u8; 1];
        input.read_exact(&mut inv)?;
        edges.push(EmbedEdge {
            from,
            to,
            predicate,
            inverse: inv[0] != 0,
        });
    }
    let n_sources = read_len(input)?;
    let mut sources = Vec::with_capacity(n_sources);
    for _ in 0..n_sources {
        let n = read_len(input)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(NodeId(varint::read_u32(input)?));
        }
        sources.push(v);
    }
    Ok(CommonAncestorGraph {
        root,
        labels,
        distances,
        nodes,
        edges,
        sources,
    })
}

/// Serialize a document embedding (all groups).
pub fn write_embedding<W: Write>(e: &DocEmbedding, out: &mut W) -> io::Result<()> {
    varint::write_u64(out, e.groups.len() as u64)?;
    for g in &e.groups {
        write_group(g, out)?;
    }
    Ok(())
}

/// Deserialize a document embedding.
pub fn read_embedding<R: Read>(input: &mut R) -> io::Result<DocEmbedding> {
    let n = read_len(input)?;
    let mut groups = Vec::with_capacity(n);
    for _ in 0..n {
        groups.push(read_group(input)?);
    }
    Ok(DocEmbedding::new(groups))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{find_lcag, SearchConfig};
    use newslink_kg::{EntityType, GraphBuilder, LabelIndex};

    fn real_embedding() -> DocEmbedding {
        let mut b = GraphBuilder::new();
        let khyber = b.add_node("Khyber", EntityType::Gpe);
        let kunar = b.add_node("Kunar", EntityType::Gpe);
        let taliban = b.add_node("Taliban", EntityType::Organization);
        let pakistan = b.add_node("Pakistan", EntityType::Gpe);
        b.add_edge(taliban, kunar, "operates in", 1);
        b.add_edge(taliban, khyber, "operates in", 1);
        b.add_edge(kunar, khyber, "borders", 1);
        b.add_edge(khyber, pakistan, "located in", 1);
        let g = b.freeze();
        let idx = LabelIndex::build(&g);
        let g1 = find_lcag(
            &g,
            &idx,
            &["taliban".into(), "pakistan".into()],
            &SearchConfig::default(),
        )
        .unwrap();
        let g2 = find_lcag(
            &g,
            &idx,
            &["kunar".into(), "khyber".into()],
            &SearchConfig::default(),
        )
        .unwrap();
        DocEmbedding::new(vec![g1, g2])
    }

    #[test]
    fn group_round_trip_is_exact() {
        let e = real_embedding();
        for g in &e.groups {
            let mut buf = Vec::new();
            write_group(g, &mut buf).unwrap();
            let back = read_group(&mut &buf[..]).unwrap();
            assert_eq!(back.root, g.root);
            assert_eq!(back.labels, g.labels);
            assert_eq!(back.distances, g.distances);
            assert_eq!(back.nodes, g.nodes);
            assert_eq!(back.edges, g.edges);
            assert_eq!(back.sources, g.sources);
        }
    }

    #[test]
    fn embedding_round_trip_preserves_bon_counts() {
        let e = real_embedding();
        let mut buf = Vec::new();
        write_embedding(&e, &mut buf).unwrap();
        let back = read_embedding(&mut &buf[..]).unwrap();
        assert_eq!(back.groups.len(), e.groups.len());
        assert_eq!(back.node_counts(), e.node_counts());
        assert_eq!(back.all_edges(), e.all_edges());
        assert_eq!(back.entity_nodes(), e.entity_nodes());
    }

    #[test]
    fn empty_embedding_round_trips() {
        let e = DocEmbedding::default();
        let mut buf = Vec::new();
        write_embedding(&e, &mut buf).unwrap();
        let back = read_embedding(&mut &buf[..]).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn truncated_embedding_rejected() {
        let e = real_embedding();
        let mut buf = Vec::new();
        write_embedding(&e, &mut buf).unwrap();
        assert!(read_embedding(&mut &buf[..buf.len() / 2]).is_err());
    }

    #[test]
    fn absurd_lengths_rejected() {
        // A crafted stream claiming 2^40 groups must fail fast, not OOM.
        let mut buf = Vec::new();
        newslink_util::varint::write_u64(&mut buf, 1 << 40).unwrap();
        assert!(read_embedding(&mut &buf[..]).is_err());
    }
}
