//! Relationship-path explanations.
//!
//! The overlap of query and result subgraph embeddings induces concrete
//! relationship paths between the entities of the two news texts (the
//! paper's Tables II and VI). Paths are found by BFS over the *union* of
//! the two embeddings' edges, anchored at entity source nodes, and rendered
//! with the original KG edge directions (`—pred→` / `←pred—`).

use std::collections::VecDeque;

use newslink_kg::{KnowledgeGraph, NodeId, Symbol};
use newslink_util::{FxHashMap, FxHashSet};

use crate::union::DocEmbedding;

/// One step of a relationship path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PathStep {
    /// The node this step arrives at.
    pub to: NodeId,
    /// The predicate traversed.
    pub predicate: Symbol,
    /// True when the *original* KG edge points against the traversal
    /// direction (render as `←pred—`).
    pub against: bool,
}

/// A relationship path between two entity nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RelationshipPath {
    /// The starting entity node.
    pub start: NodeId,
    /// The steps from `start` to the final entity node.
    pub steps: Vec<PathStep>,
}

impl RelationshipPath {
    /// All nodes on the path, start first.
    pub fn nodes(&self) -> Vec<NodeId> {
        std::iter::once(self.start)
            .chain(self.steps.iter().map(|s| s.to))
            .collect()
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True for a trivial single-node path.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Render like `Clinton —candidate in→ election ←candidate in— Trump`.
    pub fn render(&self, graph: &KnowledgeGraph) -> String {
        let mut out = String::new();
        out.push_str(graph.label(self.start));
        for s in &self.steps {
            let pred = graph.resolve(s.predicate);
            if s.against {
                out.push_str(&format!(" ←{pred}— "));
            } else {
                out.push_str(&format!(" —{pred}→ "));
            }
            out.push_str(graph.label(s.to));
        }
        out
    }
}

/// Undirected adjacency over the union of two embeddings' edges.
///
/// Entry `(to, predicate, against)` — `against` is relative to traversal
/// from the keyed node.
fn union_adjacency(
    a: &DocEmbedding,
    b: &DocEmbedding,
) -> FxHashMap<NodeId, Vec<(NodeId, Symbol, bool)>> {
    let mut adj: FxHashMap<NodeId, Vec<(NodeId, Symbol, bool)>> = FxHashMap::default();
    let mut seen: FxHashSet<(NodeId, NodeId, Symbol, bool)> = FxHashSet::default();
    for e in a.all_edges().into_iter().chain(b.all_edges()) {
        if !seen.insert((e.from, e.to, e.predicate, e.inverse)) {
            continue;
        }
        // The embedding edge was traversed from→to; the ORIGINAL KG edge
        // points from→to when !e.inverse, and to→from when e.inverse.
        adj.entry(e.from)
            .or_default()
            .push((e.to, e.predicate, e.inverse));
        adj.entry(e.to)
            .or_default()
            .push((e.from, e.predicate, !e.inverse));
    }
    adj
}

/// Shortest path between two nodes in the union graph, if one exists
/// within `max_len` edges.
fn bfs_path(
    adj: &FxHashMap<NodeId, Vec<(NodeId, Symbol, bool)>>,
    start: NodeId,
    goal: NodeId,
    max_len: usize,
) -> Option<RelationshipPath> {
    if start == goal {
        return Some(RelationshipPath {
            start,
            steps: vec![],
        });
    }
    let mut parent: FxHashMap<NodeId, (NodeId, Symbol, bool)> = FxHashMap::default();
    let mut depth: FxHashMap<NodeId, usize> = FxHashMap::default();
    depth.insert(start, 0);
    let mut q = VecDeque::from([start]);
    while let Some(v) = q.pop_front() {
        let dv = depth[&v];
        if dv >= max_len {
            continue;
        }
        let Some(neigh) = adj.get(&v) else { continue };
        for &(to, pred, against) in neigh {
            if depth.contains_key(&to) {
                continue;
            }
            depth.insert(to, dv + 1);
            parent.insert(to, (v, pred, against));
            if to == goal {
                // Reconstruct.
                let mut steps = Vec::new();
                let mut cur = goal;
                while cur != start {
                    let (p, pred, against) = parent[&cur];
                    steps.push(PathStep {
                        to: cur,
                        predicate: pred,
                        against,
                    });
                    cur = p;
                }
                steps.reverse();
                return Some(RelationshipPath { start, steps });
            }
            q.push_back(to);
        }
    }
    None
}

/// Find relationship paths linking the entities of embedding `a` to the
/// entities of embedding `b` (inter-document), shortest first, at most
/// `max_paths` of length ≤ `max_len`.
///
/// Entity pairs resolving to the same node (matched entities) yield no
/// path — the interesting evidence links *unmatched* entities, as in the
/// paper's Example 1.
pub fn relationship_paths(
    a: &DocEmbedding,
    b: &DocEmbedding,
    max_len: usize,
    max_paths: usize,
) -> Vec<RelationshipPath> {
    let adj = union_adjacency(a, b);
    let mut out: Vec<RelationshipPath> = Vec::new();
    let mut seen_pairs: FxHashSet<(NodeId, NodeId)> = FxHashSet::default();
    for &ea in &a.entity_nodes() {
        for &eb in &b.entity_nodes() {
            if ea == eb {
                continue;
            }
            let key = if ea < eb { (ea, eb) } else { (eb, ea) };
            if !seen_pairs.insert(key) {
                continue;
            }
            if let Some(p) = bfs_path(&adj, ea, eb, max_len) {
                if !p.is_empty() {
                    out.push(p);
                }
            }
        }
    }
    out.sort_by_key(|p| (p.len(), p.start, p.steps.last().map(|s| s.to)));
    out.truncate(max_paths);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{find_lcag, SearchConfig};
    use newslink_kg::{EntityType, GraphBuilder, KnowledgeGraph, LabelIndex};

    /// Election world resembling the paper's case study (Figure 6):
    /// Clinton and Trump are both candidates in the election; Sanders too.
    fn election_world() -> (KnowledgeGraph, LabelIndex) {
        let mut b = GraphBuilder::new();
        let election = b.add_node("2016 US presidential election", EntityType::Event);
        let clinton = b.add_node("Hillary Clinton", EntityType::Person);
        let trump = b.add_node("Donald Trump", EntityType::Person);
        let sanders = b.add_node("Bernie Sanders", EntityType::Person);
        let fbi = b.add_node("FBI", EntityType::Organization);
        let usa = b.add_node("United States", EntityType::Gpe);
        b.add_edge(clinton, election, "candidate in", 1);
        b.add_edge(trump, election, "candidate in", 1);
        b.add_edge(sanders, election, "candidate in", 1);
        b.add_edge(fbi, clinton, "investigated", 1);
        b.add_edge(election, usa, "located in", 1);
        let g = b.freeze();
        let idx = LabelIndex::build(&g);
        (g, idx)
    }

    fn embed(g: &KnowledgeGraph, idx: &LabelIndex, labels: &[&str]) -> DocEmbedding {
        let l: Vec<String> = labels.iter().map(|s| s.to_string()).collect();
        DocEmbedding::new(vec![
            find_lcag(g, idx, &l, &SearchConfig::default()).unwrap()
        ])
    }

    #[test]
    fn case_study_paths_link_candidates_through_election() {
        let (g, idx) = election_world();
        // Q mentions Clinton and Sanders (their G* meets at the election);
        // R mentions Trump and the FBI (whose G* also runs through the
        // election via Clinton) — the Figure 6 shape.
        let q = embed(&g, &idx, &["hillary clinton", "bernie sanders"]);
        let r = embed(&g, &idx, &["donald trump", "fbi"]);
        let paths = relationship_paths(&q, &r, 4, 10);
        assert!(!paths.is_empty());
        let rendered: Vec<String> = paths.iter().map(|p| p.render(&g)).collect();
        // Some path must connect Clinton to Trump via the election node.
        assert!(
            rendered
                .iter()
                .any(|s| s.contains("Clinton") && s.contains("Trump") && s.contains("election")),
            "paths: {rendered:?}"
        );
    }

    #[test]
    fn render_shows_edge_directions() {
        let (g, idx) = election_world();
        let q = embed(&g, &idx, &["hillary clinton"]);
        let r = embed(&g, &idx, &["donald trump", "hillary clinton"]);
        let paths = relationship_paths(&q, &r, 4, 10);
        let rendered: Vec<String> = paths.iter().map(|p| p.render(&g)).collect();
        // Clinton —candidate in→ election ←candidate in— Trump
        assert!(
            rendered
                .iter()
                .any(|s| s.contains("—candidate in→") && s.contains("←candidate in—")),
            "paths: {rendered:?}"
        );
    }

    #[test]
    fn same_node_entities_yield_no_path() {
        let (g, idx) = election_world();
        let q = embed(&g, &idx, &["hillary clinton"]);
        let paths = relationship_paths(&q, &q, 4, 10);
        assert!(paths.is_empty());
    }

    #[test]
    fn max_len_limits_path_discovery() {
        let (g, idx) = election_world();
        let q = embed(&g, &idx, &["fbi", "hillary clinton"]);
        let r = embed(&g, &idx, &["donald trump", "bernie sanders"]);
        // FBI→Clinton→election→Trump needs 3 hops; with max_len 1 only
        // direct edges qualify.
        let paths = relationship_paths(&q, &r, 1, 10);
        assert!(paths.iter().all(|p| p.len() <= 1));
    }

    #[test]
    fn max_paths_truncates_sorted_by_length() {
        let (g, idx) = election_world();
        let q = embed(&g, &idx, &["fbi", "hillary clinton"]);
        let r = embed(&g, &idx, &["donald trump", "bernie sanders"]);
        let all = relationship_paths(&q, &r, 6, 100);
        let one = relationship_paths(&q, &r, 6, 1);
        assert_eq!(one.len(), 1.min(all.len()));
        if !all.is_empty() {
            assert_eq!(one[0], all[0]);
            assert!(all.windows(2).all(|w| w[0].len() <= w[1].len()));
        }
    }

    #[test]
    fn path_nodes_consistent_with_steps() {
        let (g, idx) = election_world();
        let q = embed(&g, &idx, &["hillary clinton"]);
        let r = embed(&g, &idx, &["donald trump", "hillary clinton"]);
        for p in relationship_paths(&q, &r, 4, 10) {
            assert_eq!(p.nodes().len(), p.len() + 1);
        }
    }
}
