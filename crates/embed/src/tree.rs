//! TreeEmb: the tree-based subgraph-extraction baseline (§VII-F).
//!
//! The paper replaces the NE component with "a tree-based \[model\] that
//! approximates the Group Steiner Tree model" [Kacholia et al., VLDB'05]
//! to validate the `G*` design. We implement the classic star
//! approximation: run one Dijkstra per label, pick the root minimizing the
//! *sum* of label→root distances, and keep exactly **one** shortest path
//! per label (single tight predecessor). The result is a tree — no
//! multi-path width — so comparing it against `G*` isolates precisely the
//! paper's coverage question (Tables VII and the Figure 7 timing contrast).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use newslink_kg::{KnowledgeGraph, LabelIndex, NodeId, Symbol};
use newslink_util::{FxHashMap, FxHashSet};

use crate::algo::{EmbedError, SearchConfig};
use crate::model::{CommonAncestorGraph, EmbedEdge};

/// A single-predecessor Dijkstra for one label.
struct TreeSearch {
    dist: FxHashMap<NodeId, u32>,
    settled: FxHashMap<NodeId, u32>,
    heap: BinaryHeap<Reverse<(u32, NodeId)>>,
    pred: FxHashMap<NodeId, (NodeId, Symbol, bool)>,
}

impl TreeSearch {
    fn new(sources: &[NodeId]) -> Self {
        let mut dist = FxHashMap::default();
        let mut heap = BinaryHeap::new();
        for &s in sources {
            dist.insert(s, 0);
            heap.push(Reverse((0, s)));
        }
        Self {
            dist,
            settled: FxHashMap::default(),
            heap,
            pred: FxHashMap::default(),
        }
    }

    fn peek(&mut self) -> Option<u32> {
        while let Some(&Reverse((d, v))) = self.heap.peek() {
            if self.settled.contains_key(&v) || self.dist.get(&v) != Some(&d) {
                self.heap.pop();
            } else {
                return Some(d);
            }
        }
        None
    }

    fn settle(&mut self, graph: &KnowledgeGraph) -> Option<(NodeId, u32)> {
        let Reverse((d, v)) = self.heap.pop()?;
        self.settled.insert(v, d);
        for e in graph.neighbors(v) {
            let nd = d + e.weight;
            let better = match self.dist.get(&e.to) {
                Some(&old) => nd < old,
                None => true,
            };
            if better && !self.settled.contains_key(&e.to) {
                self.dist.insert(e.to, nd);
                self.pred.insert(e.to, (v, e.predicate, e.inverse));
                self.heap.push(Reverse((nd, e.to)));
            }
        }
        Some((v, d))
    }
}

/// Find the TreeEmb embedding for `labels`: the best-sum star root with one
/// shortest path per label.
pub fn find_tree_embedding(
    graph: &KnowledgeGraph,
    index: &LabelIndex,
    labels: &[String],
    config: &SearchConfig,
) -> Result<CommonAncestorGraph, EmbedError> {
    if labels.is_empty() {
        return Err(EmbedError::EmptyLabelSet);
    }
    let mut searches = Vec::with_capacity(labels.len());
    for l in labels {
        let mut sources = index.candidates(graph, l);
        if sources.is_empty() {
            return Err(EmbedError::NoSources(l.clone()));
        }
        sources.truncate(config.max_sources_per_label);
        searches.push(TreeSearch::new(&sources));
    }

    let mut best: Option<(u64, NodeId, Vec<u32>)> = None;
    let mut settled_total = 0usize;
    loop {
        let mut head: Option<(u32, usize)> = None;
        for (i, s) in searches.iter_mut().enumerate() {
            if let Some(d) = s.peek() {
                if head.is_none_or(|(hd, _)| d < hd) {
                    head = Some((d, i));
                }
            }
        }
        let Some((next_dist, li)) = head else { break };
        // A future candidate's sum is at least the next frontier distance;
        // stop once that cannot beat the best sum found.
        if let Some((best_sum, _, _)) = best {
            if u64::from(next_dist) > best_sum {
                break;
            }
        }
        let Some((v, _)) = searches[li].settle(graph) else {
            continue;
        };
        settled_total += 1;
        // Candidate when all labels have settled v.
        let mut sum = 0u64;
        let mut distances = Vec::with_capacity(searches.len());
        let mut complete = true;
        for s in &searches {
            match s.settled.get(&v) {
                Some(&d) => {
                    sum += u64::from(d);
                    distances.push(d);
                }
                None => {
                    complete = false;
                    break;
                }
            }
        }
        if complete {
            let better = match &best {
                Some((bs, br, _)) => sum < *bs || (sum == *bs && v < *br),
                None => true,
            };
            if better {
                best = Some((sum, v, distances));
            }
        }
        if settled_total >= config.max_settled {
            break;
        }
    }

    let (_, root, distances) = best.ok_or(EmbedError::NoCommonAncestor)?;

    // Materialize one shortest path per label by following single preds.
    let mut nodes: FxHashSet<NodeId> = FxHashSet::default();
    let mut edges: FxHashSet<EmbedEdge> = FxHashSet::default();
    let mut sources: Vec<Vec<NodeId>> = Vec::with_capacity(searches.len());
    nodes.insert(root);
    for s in &searches {
        let mut v = root;
        loop {
            nodes.insert(v);
            if s.dist.get(&v) == Some(&0) {
                sources.push(vec![v]);
                break;
            }
            let Some(&(u, predicate, inverse)) = s.pred.get(&v) else {
                // Defensive: broken chain (cannot happen for settled roots).
                sources.push(vec![]);
                break;
            };
            edges.insert(EmbedEdge {
                from: u,
                to: v,
                predicate,
                inverse,
            });
            v = u;
        }
    }

    let mut nodes: Vec<NodeId> = nodes.into_iter().collect();
    nodes.sort_unstable();
    let mut edges: Vec<EmbedEdge> = edges.into_iter().collect();
    edges.sort_unstable_by_key(|e| (e.from, e.to, e.predicate, e.inverse));

    Ok(CommonAncestorGraph {
        root,
        labels: labels.to_vec(),
        distances,
        nodes,
        edges,
        sources,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::find_lcag;
    use newslink_kg::{EntityType, GraphBuilder};

    /// Diamond: taliban has TWO 2-hop routes to khyber; tree keeps one.
    fn diamond() -> (KnowledgeGraph, LabelIndex) {
        let mut b = GraphBuilder::new();
        let khyber = b.add_node("Khyber", EntityType::Gpe);
        let w = b.add_node("Waziristan", EntityType::Gpe);
        let k = b.add_node("Kunar", EntityType::Gpe);
        let t = b.add_node("Taliban", EntityType::Organization);
        let p = b.add_node("Pakistan", EntityType::Gpe);
        b.add_edge(t, w, "operates in", 1);
        b.add_edge(t, k, "operates in", 1);
        b.add_edge(w, khyber, "located in", 1);
        b.add_edge(k, khyber, "located in", 1);
        b.add_edge(p, khyber, "contains", 1);
        let g = b.freeze();
        let idx = LabelIndex::build(&g);
        (g, idx)
    }

    fn labels(ls: &[&str]) -> Vec<String> {
        ls.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn tree_keeps_single_path_where_lcag_keeps_both() {
        let (g, idx) = diamond();
        let l = labels(&["taliban", "pakistan"]);
        let cfg = SearchConfig::default();
        let tree = find_tree_embedding(&g, &idx, &l, &cfg).unwrap();
        let lcag = find_lcag(&g, &idx, &l, &cfg).unwrap();
        assert!(lcag.node_count() > tree.node_count(), "G* must be wider");
        // Tree contains exactly one of the two mid nodes.
        let mids = [NodeId(1), NodeId(2)];
        let in_tree = mids.iter().filter(|n| tree.contains_node(**n)).count();
        assert_eq!(in_tree, 1);
        let in_lcag = mids.iter().filter(|n| lcag.contains_node(**n)).count();
        assert_eq!(in_lcag, 2);
    }

    #[test]
    fn tree_is_acyclic_and_connected() {
        let (g, idx) = diamond();
        let l = labels(&["taliban", "pakistan", "kunar"]);
        let tree = find_tree_embedding(&g, &idx, &l, &SearchConfig::default()).unwrap();
        // A tree over n nodes has at most n-1 distinct edges.
        assert!(tree.edges.len() < tree.nodes.len());
    }

    #[test]
    fn tree_root_minimizes_distance_sum() {
        let (g, idx) = diamond();
        let l = labels(&["taliban", "pakistan"]);
        let tree = find_tree_embedding(&g, &idx, &l, &SearchConfig::default()).unwrap();
        let sum: u32 = tree.distances.iter().sum();
        // Best possible meeting point is khyber (2+1) or either mid (1+2):
        // sum 3 either way.
        assert_eq!(sum, 3);
        let _ = g;
    }

    #[test]
    fn tree_single_label() {
        let (g, idx) = diamond();
        let tree =
            find_tree_embedding(&g, &idx, &labels(&["pakistan"]), &SearchConfig::default())
                .unwrap();
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.nodes.len(), 1);
        let _ = g;
    }

    #[test]
    fn tree_errors_match_lcag_errors() {
        let (g, idx) = diamond();
        assert_eq!(
            find_tree_embedding(&g, &idx, &[], &SearchConfig::default()).unwrap_err(),
            EmbedError::EmptyLabelSet
        );
        assert_eq!(
            find_tree_embedding(&g, &idx, &labels(&["atlantis"]), &SearchConfig::default())
                .unwrap_err(),
            EmbedError::NoSources("atlantis".into())
        );
    }
}
