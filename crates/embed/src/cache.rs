//! The traversal/embedding cache for the hot `G*` path.
//!
//! Figure 7 of the paper identifies embedding time as the dominant
//! indexing cost, and real corpora repeat entity groups across thousands
//! of documents. [`EmbeddingCache`] amortizes that cost at two levels:
//!
//! 1. **Group memo** — the full `Result<G*, EmbedError>` per
//!    `(model, label sequence)`. A recurring entity group skips traversal
//!    entirely. Errors are cached too: a group that cannot embed today
//!    cannot embed tomorrow (the graph is frozen).
//! 2. **Distance maps** — a [`DistanceCache`] of truncated per-source-set
//!    Dijkstra maps shared across *different* groups that mention the same
//!    entities. A novel group whose labels were each seen before
//!    reconstructs its `G*` from cached maps without touching the
//!    interleaved frontier search.
//!
//! Tier 2 is exact: the root chosen from complete-to-radius distance maps
//! is the unique compactness-order optimum (Definition 4 ties broken by
//! root id, as in [`find_lcag`]), and the shortest-path DAG is rebuilt
//! from the tightness condition `D(u) + w(u, v) = D(v)` — the same edge
//! set the frontier search retains. Configurations whose outcome depends
//! on traversal *timing* rather than distances (wall-clock timeouts, the
//! `single_path` ablation, binding `max_settled` budgets) fall back to the
//! uncached search so results stay bit-identical in every configuration.

use std::sync::Arc;

use newslink_kg::{DistanceCache, DistanceMap, KnowledgeGraph, LabelIndex, NodeId, ShardedCache};
use newslink_util::{CacheStats, FxHashSet};

use crate::algo::{find_lcag, EmbedError, SearchConfig};
use crate::model::{compactness_cmp, CommonAncestorGraph, EmbedEdge};
use crate::tree::find_tree_embedding;

/// Which embedding algorithm a cached group belongs to (the cache key
/// must separate them — same labels, different subgraphs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CachedModel {
    /// The paper's `G*` (all shortest paths).
    Lcag,
    /// The TreeEmb baseline (one path per label).
    Tree,
}

/// Group-memo key: the exact label sequence plus the model.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct GroupKey {
    model: CachedModel,
    labels: Box<[String]>,
}

type GroupResult = Arc<Result<CommonAncestorGraph, EmbedError>>;

/// The two-tier traversal/embedding cache. Safe to share across threads
/// (`&self` everywhere); create one per `(graph, SearchConfig)` pair —
/// entries encode distances of a specific graph under a specific search
/// configuration and must not be reused across either.
#[derive(Debug)]
pub struct EmbeddingCache {
    groups: ShardedCache<GroupKey, GroupResult>,
    distances: DistanceCache,
}

/// Starting radius for the progressive-deepening distance maps; most news
/// entity groups meet within a few hops (the paper's examples embed at
/// depth ≤ 2), and a deeper cached map is reused by shallower requests.
const INITIAL_RADIUS: u32 = 4;

impl EmbeddingCache {
    /// A cache bounded to `group_capacity` memoized groups and
    /// `distance_capacity` distance maps. Zero capacities disable the
    /// respective tier.
    pub fn new(group_capacity: usize, distance_capacity: usize) -> Self {
        Self {
            groups: ShardedCache::new(group_capacity),
            distances: DistanceCache::new(distance_capacity),
        }
    }

    /// Embed one entity group under `model`, consulting both cache tiers.
    ///
    /// Identical to the uncached [`find_lcag`] / [`find_tree_embedding`]
    /// in every configuration (see the module docs for why).
    pub fn embed_group(
        &self,
        graph: &KnowledgeGraph,
        index: &LabelIndex,
        labels: &[String],
        config: &SearchConfig,
        model: CachedModel,
    ) -> Result<CommonAncestorGraph, EmbedError> {
        let key = GroupKey {
            model,
            labels: labels.to_vec().into_boxed_slice(),
        };
        if let Some(cached) = self.groups.get(&key) {
            return (*cached).clone();
        }
        let result = match model {
            CachedModel::Tree => find_tree_embedding(graph, index, labels, config),
            CachedModel::Lcag => {
                match lcag_via_distances(graph, index, labels, config, &self.distances) {
                    Some(r) => r,
                    None => find_lcag(graph, index, labels, config),
                }
            }
        };
        self.groups.insert(key, Arc::new(result.clone()));
        result
    }

    /// Group-memo counters.
    pub fn group_stats(&self) -> CacheStats {
        self.groups.stats()
    }

    /// Distance-map counters.
    pub fn distance_stats(&self) -> CacheStats {
        self.distances.stats()
    }

    /// The underlying distance cache (for direct traversal reuse).
    pub fn distances(&self) -> &DistanceCache {
        &self.distances
    }

    /// Invalidate both tiers (needed only when the graph is replaced).
    pub fn clear(&self) {
        self.groups.clear();
        self.distances.clear();
    }
}

/// [`find_lcag`] with a shared [`EmbeddingCache`] in front.
pub fn find_lcag_cached(
    graph: &KnowledgeGraph,
    index: &LabelIndex,
    labels: &[String],
    config: &SearchConfig,
    cache: &EmbeddingCache,
) -> Result<CommonAncestorGraph, EmbedError> {
    cache.embed_group(graph, index, labels, config, CachedModel::Lcag)
}

/// [`find_tree_embedding`] with a shared [`EmbeddingCache`] in front.
pub fn find_tree_embedding_cached(
    graph: &KnowledgeGraph,
    index: &LabelIndex,
    labels: &[String],
    config: &SearchConfig,
    cache: &EmbeddingCache,
) -> Result<CommonAncestorGraph, EmbedError> {
    cache.embed_group(graph, index, labels, config, CachedModel::Tree)
}

/// Rebuild the `G*` from cached truncated distance maps, or `None` when
/// exactness cannot be guaranteed (fall back to the frontier search).
fn lcag_via_distances(
    graph: &KnowledgeGraph,
    index: &LabelIndex,
    labels: &[String],
    config: &SearchConfig,
    dcache: &DistanceCache,
) -> Option<Result<CommonAncestorGraph, EmbedError>> {
    // Timing-dependent configurations are not reproducible from distance
    // maps alone; let the frontier search own them.
    if config.timeout.is_some() || config.single_path {
        return None;
    }
    if labels.is_empty() {
        return Some(Err(EmbedError::EmptyLabelSet));
    }
    let mut sources_per_label = Vec::with_capacity(labels.len());
    for l in labels {
        let mut sources = index.candidates(graph, l);
        if sources.is_empty() {
            return Some(Err(EmbedError::NoSources(l.clone())));
        }
        sources.truncate(config.max_sources_per_label);
        sources_per_label.push(sources);
    }

    let mut radius = INITIAL_RADIUS;
    loop {
        let maps: Vec<Arc<DistanceMap>> = sources_per_label
            .iter()
            .map(|s| dcache.distances(graph, s, radius, config.max_settled))
            .collect();
        if maps.iter().any(|m| m.capped()) {
            // The per-label node budget bound the traversal; the frontier
            // search's own budget semantics must decide this group.
            return None;
        }
        // The maps are jointly complete up to the smallest radius.
        let complete_to = maps
            .iter()
            .map(|m| if m.exhausted() { u32::MAX } else { m.radius() })
            .min()
            .expect("at least one label");

        // Candidate roots: nodes settled by every label, within the
        // jointly complete radius so no unseen node can be more compact.
        let smallest = maps
            .iter()
            .min_by_key(|m| m.len())
            .expect("at least one map");
        let mut best: Option<(Vec<u32>, NodeId, Vec<u32>)> = None;
        'nodes: for (v, _) in smallest.iter() {
            let mut distances = Vec::with_capacity(maps.len());
            for m in &maps {
                match m.get(v) {
                    Some(d) => distances.push(d),
                    None => continue 'nodes,
                }
            }
            let mut key = distances.clone();
            key.sort_unstable_by(|a, b| b.cmp(a));
            if key[0] > complete_to {
                continue; // not provably optimal at this depth
            }
            let better = match &best {
                Some((bk, br, _)) => {
                    compactness_cmp(&key, bk).then(v.cmp(br)) == std::cmp::Ordering::Less
                }
                None => true,
            };
            if better {
                best = Some((key, v, distances));
            }
        }

        if let Some((key, root, distances)) = best {
            // Mirror the frontier search's settlement budget: it settles
            // every (label, node) pair within the optimum depth before
            // terminating; if that would have tripped `max_settled`, its
            // outcome is budget-dependent and the fallback must decide.
            let depth = key[0];
            let settled: usize = maps.iter().map(|m| m.settled_within(depth)).sum();
            if settled >= config.max_settled {
                return None;
            }
            return Some(Ok(materialize_from_maps(
                graph, labels, &maps, root, distances,
            )));
        }
        if maps.iter().all(|m| m.exhausted()) {
            // Full components explored, no common node anywhere.
            let settled: usize = maps.iter().map(|m| m.len()).sum();
            if settled >= config.max_settled {
                return None; // the frontier search would have given up earlier
            }
            return Some(Err(EmbedError::NoCommonAncestor));
        }
        radius = radius.saturating_mul(4);
    }
}

/// Expand `root` into `∪_i P(l_i → r, D)` using distance maps: an edge
/// `u → v` is on a retained shortest path iff `D(u) + w = D(v)` — exactly
/// the tight-predecessor set the frontier search accumulates.
fn materialize_from_maps(
    graph: &KnowledgeGraph,
    labels: &[String],
    maps: &[Arc<DistanceMap>],
    root: NodeId,
    distances: Vec<u32>,
) -> CommonAncestorGraph {
    let mut nodes: FxHashSet<NodeId> = FxHashSet::default();
    let mut edges: FxHashSet<EmbedEdge> = FxHashSet::default();
    let mut sources: Vec<Vec<NodeId>> = Vec::with_capacity(maps.len());
    nodes.insert(root);

    for m in maps {
        let mut reached_sources = Vec::new();
        let mut visited: FxHashSet<NodeId> = FxHashSet::default();
        let mut stack = vec![root];
        visited.insert(root);
        while let Some(v) = stack.pop() {
            nodes.insert(v);
            let dv = m.get(v).expect("walk stays inside the settled map");
            if dv == 0 {
                reached_sources.push(v);
            }
            for e in graph.neighbors(v) {
                let Some(du) = m.get(e.to) else { continue };
                if du + e.weight != dv || du >= dv {
                    continue; // not a strictly-descending tight predecessor
                }
                // `e` is v's adjacency entry toward u; the stored twin at
                // u pointing back to v carries the flipped inverse flag,
                // which is what the frontier search records.
                edges.insert(EmbedEdge {
                    from: e.to,
                    to: v,
                    predicate: e.predicate,
                    inverse: !e.inverse,
                });
                if visited.insert(e.to) {
                    stack.push(e.to);
                }
            }
        }
        reached_sources.sort_unstable();
        reached_sources.dedup();
        sources.push(reached_sources);
    }

    let mut nodes: Vec<NodeId> = nodes.into_iter().collect();
    nodes.sort_unstable();
    let mut edges: Vec<EmbedEdge> = edges.into_iter().collect();
    edges.sort_unstable_by_key(|e| (e.from, e.to, e.predicate, e.inverse));

    CommonAncestorGraph {
        root,
        labels: labels.to_vec(),
        distances,
        nodes,
        edges,
        sources,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newslink_kg::{EntityType, GraphBuilder};

    /// The paper's Figure 1 topology (same as `algo::tests::figure1`).
    fn figure1() -> (KnowledgeGraph, LabelIndex) {
        let mut b = GraphBuilder::new();
        let v0 = b.add_node("Khyber", EntityType::Gpe);
        let v1 = b.add_node("Waziristan", EntityType::Gpe);
        let v2 = b.add_node("Taliban", EntityType::Organization);
        let v3 = b.add_node("Kunar", EntityType::Gpe);
        let v6 = b.add_node("Pakistan", EntityType::Gpe);
        let v7 = b.add_node("Upper Dir", EntityType::Gpe);
        let v8 = b.add_node("Swat Valley", EntityType::Location);
        b.add_edge(v2, v1, "operates in", 1);
        b.add_edge(v2, v3, "operates in", 1);
        b.add_edge(v1, v0, "located in", 1);
        b.add_edge(v3, v0, "shares border with", 1);
        b.add_edge(v7, v0, "located in", 1);
        b.add_edge(v8, v0, "located in", 1);
        b.add_edge(v6, v0, "contains", 1);
        let g = b.freeze();
        let idx = LabelIndex::build(&g);
        (g, idx)
    }

    fn labels(ls: &[&str]) -> Vec<String> {
        ls.iter().map(|s| s.to_string()).collect()
    }

    fn assert_same_cag(a: &CommonAncestorGraph, b: &CommonAncestorGraph) {
        assert_eq!(a.root, b.root);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.distances, b.distances);
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.sources, b.sources);
    }

    #[test]
    fn cached_lcag_matches_uncached_exactly() {
        let (g, idx) = figure1();
        let cfg = SearchConfig::default();
        let cache = EmbeddingCache::new(64, 64);
        for ls in [
            labels(&["upper dir", "swat valley", "pakistan", "taliban"]),
            labels(&["taliban", "pakistan"]),
            labels(&["pakistan"]),
            labels(&["kunar", "waziristan"]),
        ] {
            let want = find_lcag(&g, &idx, &ls, &cfg).unwrap();
            let cold = find_lcag_cached(&g, &idx, &ls, &cfg, &cache).unwrap();
            let warm = find_lcag_cached(&g, &idx, &ls, &cfg, &cache).unwrap();
            assert_same_cag(&want, &cold);
            assert_same_cag(&want, &warm);
        }
        let gs = cache.group_stats();
        assert_eq!(gs.hits, 4, "second pass must hit the group memo");
        assert!(cache.distance_stats().lookups() > 0);
    }

    #[test]
    fn cached_errors_match_and_are_memoized() {
        let (g, idx) = figure1();
        let cfg = SearchConfig::default();
        let cache = EmbeddingCache::new(16, 16);
        assert_eq!(
            find_lcag_cached(&g, &idx, &labels(&["atlantis"]), &cfg, &cache).unwrap_err(),
            EmbedError::NoSources("atlantis".to_string())
        );
        assert_eq!(
            find_lcag_cached(&g, &idx, &[], &cfg, &cache).unwrap_err(),
            EmbedError::EmptyLabelSet
        );
        // Two islands: no common ancestor, cached as such.
        let mut b = GraphBuilder::new();
        b.add_node("IslandA", EntityType::Gpe);
        b.add_node("IslandB", EntityType::Gpe);
        let g2 = b.freeze();
        let idx2 = LabelIndex::build(&g2);
        let cache2 = EmbeddingCache::new(16, 16);
        for _ in 0..2 {
            assert_eq!(
                find_lcag_cached(&g2, &idx2, &labels(&["islanda", "islandb"]), &cfg, &cache2)
                    .unwrap_err(),
                EmbedError::NoCommonAncestor
            );
        }
        assert_eq!(cache2.group_stats().hits, 1);
    }

    #[test]
    fn distance_maps_shared_across_groups() {
        let (g, idx) = figure1();
        let cfg = SearchConfig::default();
        let cache = EmbeddingCache::new(64, 64);
        // Two distinct groups both mentioning taliban: the second group's
        // taliban map is a distance-cache hit even though the group memo
        // misses.
        find_lcag_cached(&g, &idx, &labels(&["taliban", "pakistan"]), &cfg, &cache).unwrap();
        let before = cache.distance_stats();
        find_lcag_cached(&g, &idx, &labels(&["taliban", "upper dir"]), &cfg, &cache).unwrap();
        let after = cache.distance_stats();
        assert!(after.hits > before.hits, "shared entity map must hit");
    }

    #[test]
    fn timing_dependent_configs_fall_back() {
        let (g, idx) = figure1();
        let cache = EmbeddingCache::new(16, 16);
        let single = SearchConfig {
            single_path: true,
            ..SearchConfig::default()
        };
        let l = labels(&["upper dir", "swat valley", "pakistan", "taliban"]);
        let want = find_lcag(&g, &idx, &l, &single).unwrap();
        let got = find_lcag_cached(&g, &idx, &l, &single, &cache).unwrap();
        assert_same_cag(&want, &got);
        assert_eq!(
            cache.distances().stats().lookups(),
            0,
            "single-path must bypass distance maps"
        );
    }

    #[test]
    fn tree_embeddings_are_memoized() {
        let (g, idx) = figure1();
        let cfg = SearchConfig::default();
        let cache = EmbeddingCache::new(16, 16);
        let l = labels(&["taliban", "pakistan"]);
        let want = find_tree_embedding(&g, &idx, &l, &cfg).unwrap();
        let cold = find_tree_embedding_cached(&g, &idx, &l, &cfg, &cache).unwrap();
        let warm = find_tree_embedding_cached(&g, &idx, &l, &cfg, &cache).unwrap();
        assert_same_cag(&want, &cold);
        assert_same_cag(&want, &warm);
        assert_eq!(cache.group_stats().hits, 1);
        // Lcag and Tree results for the same labels are cached separately.
        let lcag = find_lcag_cached(&g, &idx, &l, &cfg, &cache).unwrap();
        assert!(lcag.node_count() >= want.node_count());
    }

    #[test]
    fn weighted_graphs_reconstruct_identically() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("A", EntityType::Gpe);
        let c = b.add_node("C", EntityType::Gpe);
        let mid = b.add_node("M", EntityType::Gpe);
        b.add_edge(a, c, "direct", 5);
        b.add_edge(a, mid, "p", 1);
        b.add_edge(mid, c, "p", 1);
        let g = b.freeze();
        let idx = LabelIndex::build(&g);
        let cfg = SearchConfig::default();
        let cache = EmbeddingCache::new(16, 16);
        let l = labels(&["a", "c"]);
        let want = find_lcag(&g, &idx, &l, &cfg).unwrap();
        let got = find_lcag_cached(&g, &idx, &l, &cfg, &cache).unwrap();
        assert_same_cag(&want, &got);
    }

    #[test]
    fn clear_invalidates_both_tiers() {
        let (g, idx) = figure1();
        let cfg = SearchConfig::default();
        let cache = EmbeddingCache::new(16, 16);
        let l = labels(&["taliban", "pakistan"]);
        find_lcag_cached(&g, &idx, &l, &cfg, &cache).unwrap();
        cache.clear();
        find_lcag_cached(&g, &idx, &l, &cfg, &cache).unwrap();
        assert_eq!(cache.group_stats().hits, 0);
        assert_eq!(cache.group_stats().misses, 2);
    }
}
