//! Document embeddings: the union of per-segment `G*`s.
//!
//! §V: "Given a document with multiple entity groups identified, we take
//! the union of all `G*` as the final document subgraph embedding." Nodes
//! appearing in several groups (the orange nodes of Figure 4) carry higher
//! weight in the Bag-Of-Node model.

use newslink_kg::NodeId;
use newslink_util::FxHashMap;

use crate::model::{CommonAncestorGraph, EmbedEdge};

/// The subgraph embedding of a whole news document.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DocEmbedding {
    /// One `G*` per entity group of the maximal co-occurrence set.
    pub groups: Vec<CommonAncestorGraph>,
}

impl DocEmbedding {
    /// Wrap per-group embeddings.
    pub fn new(groups: Vec<CommonAncestorGraph>) -> Self {
        Self { groups }
    }

    /// True when no group produced an embedding.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Node → number of groups containing it (the BON term frequency).
    pub fn node_counts(&self) -> FxHashMap<NodeId, u32> {
        let mut counts: FxHashMap<NodeId, u32> = FxHashMap::default();
        for g in &self.groups {
            for &n in &g.nodes {
                *counts.entry(n).or_default() += 1;
            }
        }
        counts
    }

    /// All distinct nodes across groups, sorted.
    pub fn all_nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.node_counts().into_keys().collect();
        v.sort_unstable();
        v
    }

    /// All edges across groups, deduplicated.
    pub fn all_edges(&self) -> Vec<EmbedEdge> {
        let mut v: Vec<EmbedEdge> = self.groups.iter().flat_map(|g| g.edges.iter().copied()).collect();
        v.sort_unstable_by_key(|e| (e.from, e.to, e.predicate, e.inverse));
        v.dedup();
        v
    }

    /// All entity source nodes (path start points) across groups, sorted
    /// and deduplicated — the anchors for relationship-path explanations.
    pub fn entity_nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .groups
            .iter()
            .flat_map(|g| g.sources.iter().flatten().copied())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Nodes shared between `self` and `other` — the embedding overlap the
    /// paper uses for both scoring confidence and explanations.
    pub fn overlap(&self, other: &DocEmbedding) -> Vec<NodeId> {
        let mine = self.node_counts();
        let mut v: Vec<NodeId> = other
            .node_counts()
            .into_keys()
            .filter(|n| mine.contains_key(n))
            .collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(root: u32, nodes: &[u32], srcs: &[u32]) -> CommonAncestorGraph {
        CommonAncestorGraph {
            root: NodeId(root),
            labels: vec!["l".into()],
            distances: vec![1],
            nodes: nodes.iter().map(|&n| NodeId(n)).collect(),
            edges: vec![],
            sources: vec![srcs.iter().map(|&n| NodeId(n)).collect()],
        }
    }

    #[test]
    fn node_counts_accumulate_across_groups() {
        let e = DocEmbedding::new(vec![group(0, &[0, 1, 2], &[2]), group(0, &[0, 2, 3], &[3])]);
        let c = e.node_counts();
        assert_eq!(c[&NodeId(0)], 2);
        assert_eq!(c[&NodeId(2)], 2);
        assert_eq!(c[&NodeId(1)], 1);
        assert_eq!(c[&NodeId(3)], 1);
    }

    #[test]
    fn all_nodes_sorted_unique() {
        let e = DocEmbedding::new(vec![group(0, &[2, 0], &[]), group(0, &[1, 2], &[])]);
        assert_eq!(e.all_nodes(), vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn entity_nodes_dedupe() {
        let e = DocEmbedding::new(vec![group(0, &[0, 5], &[5]), group(0, &[0, 5], &[5])]);
        assert_eq!(e.entity_nodes(), vec![NodeId(5)]);
    }

    #[test]
    fn overlap_is_intersection() {
        let a = DocEmbedding::new(vec![group(0, &[0, 1, 2], &[])]);
        let b = DocEmbedding::new(vec![group(0, &[2, 3], &[]), group(0, &[0], &[])]);
        assert_eq!(a.overlap(&b), vec![NodeId(0), NodeId(2)]);
        assert_eq!(b.overlap(&a), vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn empty_embedding() {
        let e = DocEmbedding::default();
        assert!(e.is_empty());
        assert!(e.all_nodes().is_empty());
        assert!(e.entity_nodes().is_empty());
        assert!(e.overlap(&DocEmbedding::default()).is_empty());
    }
}
