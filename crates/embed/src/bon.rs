//! The Bag-Of-Node (BON) model (§VI).
//!
//! A document embedding is flattened to "node terms" — one occurrence per
//! group containing the node — and fed to the same inverted-index machinery
//! as words. This is the paper's *scoring compatibility*: TF-IDF/BM25
//! weighting and top-k retrieval apply unchanged with words replaced by KG
//! nodes.

use newslink_kg::NodeId;

use crate::union::DocEmbedding;

/// The index term used for a KG node in the BON index.
///
/// BON terms live in their own index, so plain decimal ids are
/// collision-free; the `n` prefix only aids debugging.
pub fn node_term(node: NodeId) -> String {
    format!("n{}", node.0)
}

/// Parse a term produced by [`node_term`].
pub fn parse_node_term(term: &str) -> Option<NodeId> {
    term.strip_prefix('n')?.parse().ok().map(NodeId)
}

/// Flatten a document embedding into BON terms: each node contributes one
/// occurrence per group containing it, so overlap across groups raises
/// term frequency exactly as Figure 4's orange nodes suggest.
pub fn bon_terms(embedding: &DocEmbedding) -> Vec<String> {
    let mut out = Vec::new();
    for (term, count) in bon_term_counts(embedding) {
        for _ in 0..count {
            out.push(term.clone());
        }
    }
    out
}

/// Pre-aggregated `(node-term, group-count)` pairs in ascending node-id
/// order — the same sequence [`bon_terms`] flattens, so feeding these to
/// `IndexBuilder::add_document_counts` builds an index identical to the
/// flattened-stream path (segment builds index straight from counts
/// without materialising repeated term strings).
pub fn bon_term_counts(embedding: &DocEmbedding) -> Vec<(String, u32)> {
    let mut counts: Vec<(NodeId, u32)> = embedding.node_counts().into_iter().collect();
    counts.sort_unstable_by_key(|(n, _)| *n);
    counts
        .into_iter()
        .map(|(node, count)| (node_term(node), count))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CommonAncestorGraph;

    fn group(nodes: &[u32]) -> CommonAncestorGraph {
        CommonAncestorGraph {
            root: NodeId(nodes[0]),
            labels: vec!["l".into()],
            distances: vec![0],
            nodes: nodes.iter().map(|&n| NodeId(n)).collect(),
            edges: vec![],
            sources: vec![],
        }
    }

    #[test]
    fn node_term_round_trips() {
        assert_eq!(node_term(NodeId(42)), "n42");
        assert_eq!(parse_node_term("n42"), Some(NodeId(42)));
        assert_eq!(parse_node_term("x42"), None);
        assert_eq!(parse_node_term("n"), None);
    }

    #[test]
    fn term_frequency_equals_group_count() {
        let e = DocEmbedding::new(vec![group(&[0, 1]), group(&[0, 2])]);
        let terms = bon_terms(&e);
        assert_eq!(terms.iter().filter(|t| *t == "n0").count(), 2);
        assert_eq!(terms.iter().filter(|t| *t == "n1").count(), 1);
        assert_eq!(terms.iter().filter(|t| *t == "n2").count(), 1);
        assert_eq!(terms.len(), 4);
    }

    #[test]
    fn empty_embedding_has_no_terms() {
        assert!(bon_terms(&DocEmbedding::default()).is_empty());
        assert!(bon_term_counts(&DocEmbedding::default()).is_empty());
    }

    #[test]
    fn counts_aggregate_the_flattened_stream() {
        let e = DocEmbedding::new(vec![group(&[0, 1]), group(&[0, 2])]);
        let counts = bon_term_counts(&e);
        assert_eq!(
            counts,
            vec![("n0".to_string(), 2), ("n1".to_string(), 1), ("n2".to_string(), 1)]
        );
        // Flattening the counts reproduces bon_terms exactly.
        let mut flat = Vec::new();
        for (t, c) in &counts {
            for _ in 0..*c {
                flat.push(t.clone());
            }
        }
        assert_eq!(flat, bon_terms(&e));
    }

    #[test]
    fn terms_deterministically_ordered() {
        let e = DocEmbedding::new(vec![group(&[3, 1, 2])]);
        assert_eq!(bon_terms(&e), vec!["n1", "n2", "n3"]);
    }
}
