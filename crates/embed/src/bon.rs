//! The Bag-Of-Node (BON) model (§VI).
//!
//! A document embedding is flattened to "node terms" — one occurrence per
//! group containing the node — and fed to the same inverted-index machinery
//! as words. This is the paper's *scoring compatibility*: TF-IDF/BM25
//! weighting and top-k retrieval apply unchanged with words replaced by KG
//! nodes.

use newslink_kg::NodeId;

use crate::union::DocEmbedding;

/// The index term used for a KG node in the BON index.
///
/// BON terms live in their own index, so plain decimal ids are
/// collision-free; the `n` prefix only aids debugging.
pub fn node_term(node: NodeId) -> String {
    format!("n{}", node.0)
}

/// Parse a term produced by [`node_term`].
pub fn parse_node_term(term: &str) -> Option<NodeId> {
    term.strip_prefix('n')?.parse().ok().map(NodeId)
}

/// Flatten a document embedding into BON terms: each node contributes one
/// occurrence per group containing it, so overlap across groups raises
/// term frequency exactly as Figure 4's orange nodes suggest.
pub fn bon_terms(embedding: &DocEmbedding) -> Vec<String> {
    let mut terms: Vec<(NodeId, u32)> = embedding.node_counts().into_iter().collect();
    terms.sort_unstable_by_key(|(n, _)| *n);
    let mut out = Vec::new();
    for (node, count) in terms {
        for _ in 0..count {
            out.push(node_term(node));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CommonAncestorGraph;

    fn group(nodes: &[u32]) -> CommonAncestorGraph {
        CommonAncestorGraph {
            root: NodeId(nodes[0]),
            labels: vec!["l".into()],
            distances: vec![0],
            nodes: nodes.iter().map(|&n| NodeId(n)).collect(),
            edges: vec![],
            sources: vec![],
        }
    }

    #[test]
    fn node_term_round_trips() {
        assert_eq!(node_term(NodeId(42)), "n42");
        assert_eq!(parse_node_term("n42"), Some(NodeId(42)));
        assert_eq!(parse_node_term("x42"), None);
        assert_eq!(parse_node_term("n"), None);
    }

    #[test]
    fn term_frequency_equals_group_count() {
        let e = DocEmbedding::new(vec![group(&[0, 1]), group(&[0, 2])]);
        let terms = bon_terms(&e);
        assert_eq!(terms.iter().filter(|t| *t == "n0").count(), 2);
        assert_eq!(terms.iter().filter(|t| *t == "n1").count(), 1);
        assert_eq!(terms.iter().filter(|t| *t == "n2").count(), 1);
        assert_eq!(terms.len(), 4);
    }

    #[test]
    fn empty_embedding_has_no_terms() {
        assert!(bon_terms(&DocEmbedding::default()).is_empty());
    }

    #[test]
    fn terms_deterministically_ordered() {
        let e = DocEmbedding::new(vec![group(&[3, 1, 2])]);
        assert_eq!(bon_terms(&e), vec!["n1", "n2", "n3"]);
    }
}
