//! Path summarization — the improvement the paper's user study motivates.
//!
//! §VII-D reports that embeddings "containing too much information
//! overwhelm users"; the paper concludes it should "present only necessary
//! path relationships and make the visualized parts more concise". This
//! module implements that follow-up:
//!
//! - rank paths by *informativeness* (specific intermediate nodes beat
//!   generic hubs — a low-degree province says more than the root of the
//!   geography tree);
//! - keep at most one path per endpoint pair;
//! - render a natural-language description per path shape, like the
//!   "Description" column of Tables II and VI.

use newslink_kg::{KnowledgeGraph, NodeId};
use newslink_util::FxHashSet;

use crate::explain::RelationshipPath;

/// Informativeness of a path: shorter is better, and intermediate nodes
/// are weighted by `1 / ln(2 + degree)` so generic hubs (country roots,
/// continents) count less than specific entities.
pub fn path_informativeness(graph: &KnowledgeGraph, path: &RelationshipPath) -> f64 {
    if path.is_empty() {
        return 0.0;
    }
    let nodes = path.nodes();
    let inner = &nodes[1..nodes.len().saturating_sub(1)];
    let specificity: f64 = inner
        .iter()
        .map(|&n| 1.0 / (2.0 + graph.degree(n) as f64).ln())
        .sum::<f64>()
        .max(0.5); // direct edges (no inner nodes) stay comparable
    specificity / path.len() as f64
}

/// Select a concise subset: the most informative path per endpoint pair,
/// globally capped at `max_total`, ordered most-informative first.
pub fn summarize_paths(
    graph: &KnowledgeGraph,
    paths: &[RelationshipPath],
    max_total: usize,
) -> Vec<RelationshipPath> {
    let mut scored: Vec<(f64, &RelationshipPath)> = paths
        .iter()
        .filter(|p| !p.is_empty())
        .map(|p| (path_informativeness(graph, p), p))
        .collect();
    scored.sort_by(|a, b| {
        b.0.total_cmp(&a.0)
            .then_with(|| a.1.len().cmp(&b.1.len()))
            .then_with(|| a.1.start.cmp(&b.1.start))
    });
    let mut seen_pairs: FxHashSet<(NodeId, NodeId)> = FxHashSet::default();
    let mut out = Vec::new();
    if max_total == 0 {
        return out;
    }
    for (_, p) in scored {
        let nodes = p.nodes();
        let (a, b) = (nodes[0], *nodes.last().expect("non-empty path"));
        let key = if a < b { (a, b) } else { (b, a) };
        if !seen_pairs.insert(key) {
            continue;
        }
        out.push(p.clone());
        if out.len() == max_total {
            break;
        }
    }
    out
}

/// A natural-language description of a path, in the spirit of the
/// "Description" column of Tables II and VI.
pub fn describe_path(graph: &KnowledgeGraph, path: &RelationshipPath) -> String {
    let name = |n: NodeId| graph.label(n).to_string();
    match path.steps.as_slice() {
        [] => format!("{} stands alone.", name(path.start)),
        [s] => {
            if s.against {
                format!("{} {} {}.", name(s.to), graph.resolve(s.predicate), name(path.start))
            } else {
                format!("{} {} {}.", name(path.start), graph.resolve(s.predicate), name(s.to))
            }
        }
        [s1, s2] if s1.predicate == s2.predicate && !s1.against && s2.against => {
            // A —p→ C ←p— B : the paper's "both candidates of the election".
            format!(
                "{} and {} are both linked to {} by \"{}\".",
                name(path.start),
                name(s2.to),
                name(s1.to),
                graph.resolve(s1.predicate)
            )
        }
        steps => {
            let mut out = name(path.start);
            for s in steps {
                if s.against {
                    out.push_str(&format!(
                        ", which {} {}",
                        reverse_phrase(graph.resolve(s.predicate)),
                        name(s.to)
                    ));
                } else {
                    out.push_str(&format!(
                        ", which {} {}",
                        graph.resolve(s.predicate),
                        name(s.to)
                    ));
                }
            }
            out.push('.');
            out
        }
    }
}

/// Phrase the reverse direction of a predicate ("located in" read
/// backwards becomes "is the location of").
fn reverse_phrase(predicate: &str) -> String {
    match predicate {
        "located in" => "contains".to_string(),
        "capital of" => "has capital".to_string(),
        "citizen of" => "has citizen".to_string(),
        "member of" => "has member".to_string(),
        "participant of" => "has participant".to_string(),
        "candidate in" => "has candidate".to_string(),
        "created by" => "created".to_string(),
        other => format!("is the target of \"{other}\" from"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{find_lcag, SearchConfig};
    use crate::explain::relationship_paths;
    use crate::union::DocEmbedding;
    use newslink_kg::{EntityType, GraphBuilder, LabelIndex};

    fn world() -> (KnowledgeGraph, LabelIndex) {
        let mut b = GraphBuilder::new();
        let election = b.add_node("2016 US presidential election", EntityType::Event);
        let clinton = b.add_node("Hillary Clinton", EntityType::Person);
        let trump = b.add_node("Donald Trump", EntityType::Person);
        let sanders = b.add_node("Bernie Sanders", EntityType::Person);
        let usa = b.add_node("United States", EntityType::Gpe);
        // Make the election node a high-degree hub and USA moderate.
        b.add_edge(clinton, election, "candidate in", 1);
        b.add_edge(trump, election, "candidate in", 1);
        b.add_edge(sanders, election, "candidate in", 1);
        b.add_edge(election, usa, "located in", 1);
        b.add_edge(clinton, usa, "citizen of", 1);
        b.add_edge(trump, usa, "citizen of", 1);
        let g = b.freeze();
        let idx = LabelIndex::build(&g);
        (g, idx)
    }

    fn paths(g: &KnowledgeGraph, idx: &LabelIndex) -> Vec<RelationshipPath> {
        let e1 = DocEmbedding::new(vec![find_lcag(
            g,
            idx,
            &["hillary clinton".into(), "bernie sanders".into()],
            &SearchConfig::default(),
        )
        .unwrap()]);
        let e2 = DocEmbedding::new(vec![
            find_lcag(
                g,
                idx,
                &["donald trump".into(), "2016 us presidential election".into()],
                &SearchConfig::default(),
            )
            .unwrap(),
            find_lcag(
                g,
                idx,
                &["donald trump".into(), "united states".into()],
                &SearchConfig::default(),
            )
            .unwrap(),
        ]);
        relationship_paths(&e1, &e2, 4, 50)
    }

    #[test]
    fn summarization_keeps_one_path_per_pair() {
        let (g, idx) = world();
        let all = paths(&g, &idx);
        let summary = summarize_paths(&g, &all, 10);
        let mut pairs = FxHashSet::default();
        for p in &summary {
            let n = p.nodes();
            let key = (n[0].min(*n.last().unwrap()), n[0].max(*n.last().unwrap()));
            assert!(pairs.insert(key), "duplicate endpoint pair");
        }
        assert!(summary.len() <= all.len());
        assert!(!summary.is_empty());
    }

    #[test]
    fn max_total_caps_output() {
        let (g, idx) = world();
        let all = paths(&g, &idx);
        assert!(summarize_paths(&g, &all, 1).len() <= 1);
        assert!(summarize_paths(&g, &all, 0).is_empty());
    }

    #[test]
    fn shorter_paths_are_more_informative() {
        let (g, idx) = world();
        let all = paths(&g, &idx);
        let one_hop = all.iter().find(|p| p.len() == 1);
        let three_hop = all.iter().find(|p| p.len() >= 3);
        if let (Some(a), Some(b)) = (one_hop, three_hop) {
            assert!(path_informativeness(&g, a) > path_informativeness(&g, b));
        }
    }

    #[test]
    fn shared_predicate_shape_describes_both_sides() {
        let (g, idx) = world();
        let all = paths(&g, &idx);
        let shared = all
            .iter()
            .map(|p| describe_path(&g, p))
            .find(|d| d.contains("are both linked to"));
        assert!(
            shared.is_some(),
            "expected a 'both linked' description: {:?}",
            all.iter().map(|p| describe_path(&g, p)).collect::<Vec<_>>()
        );
        let d = shared.unwrap();
        assert!(d.contains("candidate in") || d.contains("citizen of"), "{d}");
    }

    #[test]
    fn single_edge_description_reads_forward() {
        let (g, idx) = world();
        let all = paths(&g, &idx);
        for p in all.iter().filter(|p| p.len() == 1) {
            let d = describe_path(&g, p);
            assert!(d.ends_with('.'));
            assert!(!d.contains("which"), "single edges read plainly: {d}");
        }
    }

    #[test]
    fn reverse_phrases_known_predicates() {
        assert_eq!(reverse_phrase("located in"), "contains");
        assert_eq!(reverse_phrase("candidate in"), "has candidate");
        assert!(reverse_phrase("weird pred").contains("weird pred"));
    }

    #[test]
    fn empty_path_description() {
        let (g, _) = world();
        let p = RelationshipPath {
            start: NodeId(0),
            steps: vec![],
        };
        assert!(describe_path(&g, &p).contains("stands alone"));
        assert_eq!(path_informativeness(&g, &p), 0.0);
    }
}
