//! The NE component: subgraph embeddings from knowledge graphs (§V).
//!
//! - [`model`] — Common Ancestor Graphs and the compactness order
//!   (Definitions 3–5);
//! - [`algo`] — the `G*` search (Algorithms 1–3): per-label Dijkstra
//!   frontiers, path enumeration, candidate collection, compactness
//!   sorting;
//! - [`tree`] — the TreeEmb baseline (Group-Steiner-Tree approximation) the
//!   paper compares against in Table VII;
//! - [`cache`] — the two-tier [`cache::EmbeddingCache`] (group memo +
//!   shared distance maps) that amortizes traversal across recurring
//!   entity groups without changing any result;
//! - [`union`] — document embeddings as unions of per-segment `G*`;
//! - [`bon`] — the Bag-Of-Node representation feeding the NS component;
//! - [`explain`] — relationship-path extraction from embedding overlap, the
//!   intuitive-search feature of the paper's case study.

#![deny(unsafe_code)]

pub mod algo;
pub mod bon;
pub mod cache;
pub mod codec;
pub mod dot;
pub mod explain;
pub mod model;
pub mod summarize;
pub mod tree;
pub mod union;

pub use algo::{find_lcag, find_top_cags, EmbedError, SearchConfig};
pub use bon::{bon_term_counts, bon_terms, node_term, parse_node_term};
pub use cache::{find_lcag_cached, find_tree_embedding_cached, CachedModel, EmbeddingCache};
pub use dot::{embedding_to_dot, overlap_to_dot};
pub use explain::{relationship_paths, RelationshipPath};
pub use model::{compactness_cmp, CommonAncestorGraph, EmbedEdge};
pub use summarize::{describe_path, path_informativeness, summarize_paths};
pub use tree::find_tree_embedding;
pub use union::DocEmbedding;
