//! The `G*` search algorithm (Algorithms 1–3 of the paper).
//!
//! For entity labels `L = {l_1, …, l_m}` the search runs one multi-source
//! Dijkstra frontier per label (`F_i`, a distance min-priority queue). The
//! *PathEnumeration* procedure always advances the globally smallest
//! frontier (Equation 2), guaranteeing monotonically non-decreasing
//! enumeration distances (Lemma 3). *CandidateCollection* records a node as
//! a candidate root once every label's search has settled it. The loop
//! terminates when `C_1` (a candidate exists) and `C_2` (the next frontier
//! distance exceeds the collected minimum depth) both hold; the *compactness
//! sorting* step then returns the candidate that is minimal under
//! Definition 4.
//!
//! While searching, each label search keeps *all* tight predecessors, so
//! the chosen root can be expanded into the full shortest-path DAG
//! `∪_i P(l_i → r, D)` — the multi-path "width" that distinguishes `G*`
//! from tree models.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use newslink_kg::{KnowledgeGraph, LabelIndex, NodeId, Symbol};
use newslink_util::{FxHashMap, FxHashSet};

use crate::model::{compactness_cmp, CommonAncestorGraph, EmbedEdge};

/// Tuning knobs for the `G*` search.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Upper bound on total settled nodes across all frontiers (the paper's
    /// `while Not Timeout` guard, expressed deterministically).
    pub max_settled: usize,
    /// Optional wall-clock budget (checked coarsely).
    pub timeout: Option<Duration>,
    /// Cap on `|S(l)|` source nodes per label (highly ambiguous labels).
    pub max_sources_per_label: usize,
    /// Ablation knob: keep only ONE tight predecessor per node, collapsing
    /// `G*`'s multi-path width to single shortest paths (the root selection
    /// stays compactness-optimal). Used by the coverage ablation bench.
    pub single_path: bool,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            max_settled: 200_000,
            timeout: None,
            max_sources_per_label: 32,
            single_path: false,
        }
    }
}

/// Why a `G*` could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmbedError {
    /// A label had no matching KG nodes: `S(l)` is empty.
    NoSources(String),
    /// The label set was empty.
    EmptyLabelSet,
    /// The searches exhausted the graph or the budget without any node
    /// being reached by every label.
    NoCommonAncestor,
}

impl std::fmt::Display for EmbedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmbedError::NoSources(l) => write!(f, "label {l:?} matches no KG node"),
            EmbedError::EmptyLabelSet => write!(f, "empty entity label set"),
            EmbedError::NoCommonAncestor => write!(f, "no common ancestor found within budget"),
        }
    }
}

impl std::error::Error for EmbedError {}

/// A tight-predecessor record: the traversal reached the owning node from
/// `from` over `predicate`.
#[derive(Debug, Clone, Copy)]
struct Pred {
    from: NodeId,
    predicate: Symbol,
    inverse: bool,
}

/// One label's Dijkstra frontier (`F_i`).
struct LabelSearch {
    dist: FxHashMap<NodeId, u32>,
    settled: FxHashMap<NodeId, u32>,
    heap: BinaryHeap<Reverse<(u32, NodeId)>>,
    preds: FxHashMap<NodeId, Vec<Pred>>,
}

impl LabelSearch {
    fn new(sources: Vec<NodeId>) -> Self {
        let mut dist = FxHashMap::default();
        let mut heap = BinaryHeap::new();
        for &s in &sources {
            dist.insert(s, 0);
            heap.push(Reverse((0, s)));
        }
        Self {
            dist,
            settled: FxHashMap::default(),
            heap,
            preds: FxHashMap::default(),
        }
    }

    /// Current frontier head distance, skipping stale (lazy-deleted)
    /// entries.
    fn peek(&mut self) -> Option<u32> {
        while let Some(&Reverse((d, v))) = self.heap.peek() {
            if self.settled.contains_key(&v) || self.dist.get(&v) != Some(&d) {
                self.heap.pop();
            } else {
                return Some(d);
            }
        }
        None
    }

    /// Settle the head node and relax its neighbours (Algorithm 2 body).
    fn settle(&mut self, graph: &KnowledgeGraph) -> Option<(NodeId, u32)> {
        let Reverse((d, v)) = self.heap.pop()?;
        debug_assert!(!self.settled.contains_key(&v));
        self.settled.insert(v, d);
        for e in graph.neighbors(v) {
            let nd = d + e.weight;
            match self.dist.get(&e.to) {
                Some(&old) if nd > old => {}
                Some(&old) if nd == old => {
                    // A second tight predecessor: preserves path width.
                    self.preds.entry(e.to).or_default().push(Pred {
                        from: v,
                        predicate: e.predicate,
                        inverse: e.inverse,
                    });
                }
                _ => {
                    if self.settled.contains_key(&e.to) {
                        continue; // already final (can happen only if nd >= settled dist)
                    }
                    self.dist.insert(e.to, nd);
                    let preds = self.preds.entry(e.to).or_default();
                    preds.clear();
                    preds.push(Pred {
                        from: v,
                        predicate: e.predicate,
                        inverse: e.inverse,
                    });
                    self.heap.push(Reverse((nd, e.to)));
                }
            }
        }
        Some((v, d))
    }
}

/// A collected candidate root with its compactness key.
struct Candidate {
    root: NodeId,
    key: Vec<u32>,
    distances: Vec<u32>,
}

/// Find the Lowest Common Ancestor Graph for `labels` (Algorithm 1).
///
/// `labels` are normalized entity surface forms; sources are resolved
/// through [`LabelIndex::candidates`].
pub fn find_lcag(
    graph: &KnowledgeGraph,
    index: &LabelIndex,
    labels: &[String],
    config: &SearchConfig,
) -> Result<CommonAncestorGraph, EmbedError> {
    Ok(find_top_cags(graph, index, labels, config, 1)?
        .into_iter()
        .next()
        .expect("top-1 search returns one graph on success"))
}

/// Enumerate the `j` most compact candidate common-ancestor graphs, best
/// first (ties: lowest root id).
///
/// Generalizes Algorithm 1's candidate collection: the loop runs until the
/// next frontier distance exceeds the j-th smallest collected depth, which
/// guarantees (by Lemma 3's monotonicity) that no unseen root can displace
/// the returned prefix.
pub fn find_top_cags(
    graph: &KnowledgeGraph,
    index: &LabelIndex,
    labels: &[String],
    config: &SearchConfig,
    j: usize,
) -> Result<Vec<CommonAncestorGraph>, EmbedError> {
    if labels.is_empty() {
        return Err(EmbedError::EmptyLabelSet);
    }
    if j == 0 {
        return Ok(Vec::new());
    }
    let mut searches = Vec::with_capacity(labels.len());
    for l in labels {
        let mut sources = index.candidates(graph, l);
        if sources.is_empty() {
            return Err(EmbedError::NoSources(l.clone()));
        }
        sources.truncate(config.max_sources_per_label);
        searches.push(LabelSearch::new(sources));
    }
    let m = searches.len();

    let start = Instant::now();
    let mut settled_total = 0usize;
    let mut candidates: Vec<Candidate> = Vec::new();
    // Depth below which the j-th best candidate must sit (C2 generalized).
    let mut jth_depth = u32::MAX;

    loop {
        // Equation 2: pick the label whose frontier head is globally
        // smallest (ties: lowest label index, deterministically).
        let mut best: Option<(u32, usize)> = None;
        for (i, s) in searches.iter_mut().enumerate() {
            if let Some(d) = s.peek() {
                if best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, i));
                }
            }
        }
        let Some((next_dist, li)) = best else {
            break; // all frontiers exhausted
        };

        // Termination test C1 ∧ C2 (lines 11–13 of Algorithm 1),
        // generalized to the j-th smallest collected depth.
        if candidates.len() >= j && jth_depth < next_dist {
            break;
        }

        // PathEnumeration: settle one node of the chosen frontier.
        let Some((v_f, _)) = searches[li].settle(graph) else {
            continue;
        };
        settled_total += 1;

        // CandidateCollection (Algorithm 3): has every label settled v_f?
        let mut distances = Vec::with_capacity(m);
        let mut complete = true;
        for s in &searches {
            match s.settled.get(&v_f) {
                Some(&d) => distances.push(d),
                None => {
                    complete = false;
                    break;
                }
            }
        }
        if complete && !candidates.iter().any(|c| c.root == v_f) {
            let mut key = distances.clone();
            key.sort_unstable_by(|a, b| b.cmp(a));
            candidates.push(Candidate {
                root: v_f,
                key,
                distances,
            });
            // j-th smallest depth among collected candidates.
            let mut depths: Vec<u32> = candidates.iter().map(|c| c.key[0]).collect();
            depths.sort_unstable();
            jth_depth = depths[(j - 1).min(depths.len() - 1)];
            if candidates.len() < j {
                jth_depth = u32::MAX;
            }
        }

        // Budget guards (the paper's `while Not Timeout`).
        if settled_total >= config.max_settled {
            break;
        }
        if let Some(t) = config.timeout {
            if settled_total.is_multiple_of(256) && start.elapsed() > t {
                break;
            }
        }
    }

    // Compactness sorting (Definition 4; ties: lowest root id).
    if candidates.is_empty() {
        return Err(EmbedError::NoCommonAncestor);
    }
    candidates.sort_by(|a, b| compactness_cmp(&a.key, &b.key).then(a.root.cmp(&b.root)));
    candidates.truncate(j);
    Ok(candidates
        .into_iter()
        .map(|c| materialize(labels, &searches, c, config.single_path))
        .collect())
}

/// Expand the chosen root into `∪_i P(l_i → r, D)` by walking each label's
/// tight-predecessor DAG backwards from the root.
fn materialize(
    labels: &[String],
    searches: &[LabelSearch],
    best: Candidate,
    single_path: bool,
) -> CommonAncestorGraph {
    let mut nodes: FxHashSet<NodeId> = FxHashSet::default();
    let mut edges: FxHashSet<EmbedEdge> = FxHashSet::default();
    let mut sources: Vec<Vec<NodeId>> = Vec::with_capacity(searches.len());
    nodes.insert(best.root);

    for s in searches {
        let mut reached_sources = Vec::new();
        let mut visited: FxHashSet<NodeId> = FxHashSet::default();
        let mut stack = vec![best.root];
        visited.insert(best.root);
        while let Some(v) = stack.pop() {
            nodes.insert(v);
            if s.dist.get(&v) == Some(&0) {
                reached_sources.push(v);
            }
            if let Some(preds) = s.preds.get(&v) {
                let dv = s.settled.get(&v).copied().unwrap_or(u32::MAX);
                let mut taken = 0usize;
                for p in preds {
                    // Only tight predecessors on *final* shortest paths: the
                    // predecessor's settled distance must step down exactly.
                    let Some(&du) = s.settled.get(&p.from) else {
                        continue;
                    };
                    if du >= dv {
                        continue;
                    }
                    if single_path && taken == 1 {
                        break;
                    }
                    taken += 1;
                    edges.insert(EmbedEdge {
                        from: p.from,
                        to: v,
                        predicate: p.predicate,
                        inverse: p.inverse,
                    });
                    if visited.insert(p.from) {
                        stack.push(p.from);
                    }
                }
            }
        }
        reached_sources.sort_unstable();
        reached_sources.dedup();
        sources.push(reached_sources);
    }

    let mut nodes: Vec<NodeId> = nodes.into_iter().collect();
    nodes.sort_unstable();
    let mut edges: Vec<EmbedEdge> = edges.into_iter().collect();
    edges.sort_unstable_by_key(|e| (e.from, e.to, e.predicate, e.inverse));

    CommonAncestorGraph {
        root: best.root,
        labels: labels.to_vec(),
        distances: best.distances,
        nodes,
        edges,
        sources,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newslink_kg::{EntityType, GraphBuilder};

    /// The paper's Figure 1 topology (weights 1):
    /// v2 (Taliban) → v1 (Waziristan) → v0 (Khyber)
    /// v2 (Taliban) → v3 (Kunar)      → v0 (Khyber)
    /// v7 (Upper Dir) → v0, v8 (Swat Valley) → v0, v6 (Pakistan) → v0
    fn figure1() -> (KnowledgeGraph, LabelIndex) {
        let mut b = GraphBuilder::new();
        let v0 = b.add_node("Khyber", EntityType::Gpe); // 0
        let v1 = b.add_node("Waziristan", EntityType::Gpe); // 1
        let v2 = b.add_node("Taliban", EntityType::Organization); // 2
        let v3 = b.add_node("Kunar", EntityType::Gpe); // 3
        let v6 = b.add_node("Pakistan", EntityType::Gpe); // 4
        let v7 = b.add_node("Upper Dir", EntityType::Gpe); // 5
        let v8 = b.add_node("Swat Valley", EntityType::Location); // 6
        b.add_edge(v2, v1, "operates in", 1);
        b.add_edge(v2, v3, "operates in", 1);
        b.add_edge(v1, v0, "located in", 1);
        b.add_edge(v3, v0, "shares border with", 1);
        b.add_edge(v7, v0, "located in", 1);
        b.add_edge(v8, v0, "located in", 1);
        b.add_edge(v6, v0, "contains", 1);
        let g = b.freeze();
        let idx = LabelIndex::build(&g);
        (g, idx)
    }

    fn labels(ls: &[&str]) -> Vec<String> {
        ls.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn figure1_query_embedding() {
        let (g, idx) = figure1();
        let l = labels(&["upper dir", "swat valley", "pakistan", "taliban"]);
        let e = find_lcag(&g, &idx, &l, &SearchConfig::default()).unwrap();
        assert_eq!(g.label(e.root), "Khyber");
        let mut key = e.compactness_key();
        key.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(key, vec![2, 1, 1, 1]);
        // Width: BOTH two-hop Taliban paths are retained.
        assert!(e.contains_node(NodeId(1)), "Waziristan path kept");
        assert!(e.contains_node(NodeId(3)), "Kunar path kept");
        assert_eq!(e.depth(), 2);
    }

    #[test]
    fn figure1_edges_are_oriented_toward_root() {
        let (g, idx) = figure1();
        let l = labels(&["taliban", "pakistan"]);
        let e = find_lcag(&g, &idx, &l, &SearchConfig::default()).unwrap();
        // Every non-root node has an outgoing edge chain reaching the root.
        assert!(e.edges.iter().any(|ed| ed.to == e.root));
        for ed in &e.edges {
            assert!(e.contains_node(ed.from));
            assert!(e.contains_node(ed.to));
        }
        let _ = g;
    }

    #[test]
    fn single_label_is_its_own_ancestor() {
        let (g, idx) = figure1();
        let l = labels(&["pakistan"]);
        let e = find_lcag(&g, &idx, &l, &SearchConfig::default()).unwrap();
        assert_eq!(g.label(e.root), "Pakistan");
        assert_eq!(e.depth(), 0);
        assert_eq!(e.nodes.len(), 1);
        assert!(e.edges.is_empty());
    }

    #[test]
    fn missing_label_is_reported() {
        let (g, idx) = figure1();
        let l = labels(&["atlantis"]);
        assert_eq!(
            find_lcag(&g, &idx, &l, &SearchConfig::default()).unwrap_err(),
            EmbedError::NoSources("atlantis".to_string())
        );
    }

    #[test]
    fn empty_label_set_is_reported() {
        let (g, idx) = figure1();
        assert_eq!(
            find_lcag(&g, &idx, &[], &SearchConfig::default()).unwrap_err(),
            EmbedError::EmptyLabelSet
        );
    }

    #[test]
    fn disconnected_labels_have_no_ancestor() {
        let mut b = GraphBuilder::new();
        b.add_node("IslandA", EntityType::Gpe);
        b.add_node("IslandB", EntityType::Gpe);
        let g = b.freeze();
        let idx = LabelIndex::build(&g);
        let l = labels(&["islanda", "islandb"]);
        assert_eq!(
            find_lcag(&g, &idx, &l, &SearchConfig::default()).unwrap_err(),
            EmbedError::NoCommonAncestor
        );
    }

    #[test]
    fn two_entities_meet_in_the_middle() {
        // a - b - c: LCAG of {a, c} may root anywhere with key {1,1}
        // (b) rather than {2,0} (a or c); {1,1} < {2,0}.
        let mut b = GraphBuilder::new();
        let a = b.add_node("Alpha", EntityType::Gpe);
        let mid = b.add_node("Mid", EntityType::Gpe);
        let c = b.add_node("Gamma", EntityType::Gpe);
        b.add_edge(a, mid, "p", 1);
        b.add_edge(mid, c, "p", 1);
        let g = b.freeze();
        let idx = LabelIndex::build(&g);
        let e = find_lcag(&g, &idx, &labels(&["alpha", "gamma"]), &SearchConfig::default())
            .unwrap();
        assert_eq!(e.root, mid);
        assert_eq!(e.compactness_key(), vec![1, 1]);
        let _ = (a, c);
    }

    #[test]
    fn ambiguous_label_uses_closest_source() {
        // Two nodes named "Springfield": one adjacent to "Capital", one far.
        let mut b = GraphBuilder::new();
        let near = b.add_node("Springfield", EntityType::Gpe);
        let far = b.add_node("Springfield", EntityType::Gpe);
        let capital = b.add_node("Capital", EntityType::Gpe);
        let hop = b.add_node("Hop", EntityType::Gpe);
        b.add_edge(near, capital, "p", 1);
        b.add_edge(far, hop, "p", 1);
        b.add_edge(hop, capital, "p", 1);
        let g = b.freeze();
        let idx = LabelIndex::build(&g);
        let e = find_lcag(
            &g,
            &idx,
            &labels(&["springfield", "capital"]),
            &SearchConfig::default(),
        )
        .unwrap();
        // Entity-node distance (Definition 2) is the min over S(l).
        assert_eq!(e.depth(), 1);
        assert!(e.sources[0].contains(&near));
        assert!(!e.sources[0].contains(&far));
    }

    #[test]
    fn weighted_edges_respected() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("A", EntityType::Gpe);
        let c = b.add_node("C", EntityType::Gpe);
        let mid = b.add_node("M", EntityType::Gpe);
        b.add_edge(a, c, "direct", 5);
        b.add_edge(a, mid, "p", 1);
        b.add_edge(mid, c, "p", 1);
        let g = b.freeze();
        let idx = LabelIndex::build(&g);
        let e =
            find_lcag(&g, &idx, &labels(&["a", "c"]), &SearchConfig::default()).unwrap();
        // Shortest A–C route is through M (cost 2), so the best root has
        // key {1,1}; the direct weight-5 edge must not be in the embedding.
        assert_eq!(e.root, mid);
        assert!(!e
            .edges
            .iter()
            .any(|ed| g.resolve(ed.predicate) == "direct"));
    }

    #[test]
    fn budget_exhaustion_still_returns_candidate_if_found() {
        let (g, idx) = figure1();
        let l = labels(&["taliban", "pakistan"]);
        let tight = SearchConfig {
            max_settled: 4,
            ..SearchConfig::default()
        };
        // With a tiny budget we may or may not find the optimum, but we
        // must never panic; either a candidate or NoCommonAncestor.
        match find_lcag(&g, &idx, &l, &tight) {
            Ok(e) => assert!(e.depth() >= 1),
            Err(EmbedError::NoCommonAncestor) => {}
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn single_path_ablation_drops_width() {
        let (g, idx) = figure1();
        let l = labels(&["upper dir", "swat valley", "pakistan", "taliban"]);
        let full = find_lcag(&g, &idx, &l, &SearchConfig::default()).unwrap();
        let narrow = find_lcag(
            &g,
            &idx,
            &l,
            &SearchConfig {
                single_path: true,
                ..SearchConfig::default()
            },
        )
        .unwrap();
        assert_eq!(full.root, narrow.root, "root selection unchanged");
        assert!(narrow.node_count() < full.node_count());
        // Exactly one of the two Taliban mid nodes survives.
        let mids = [NodeId(1), NodeId(3)];
        assert_eq!(
            mids.iter().filter(|n| narrow.contains_node(**n)).count(),
            1
        );
    }

    #[test]
    fn top_cags_are_sorted_by_compactness() {
        let (g, idx) = figure1();
        let l = labels(&["taliban", "pakistan"]);
        let cags = find_top_cags(&g, &idx, &l, &SearchConfig::default(), 4).unwrap();
        assert!(!cags.is_empty());
        assert!(cags.len() <= 4);
        for w in cags.windows(2) {
            use std::cmp::Ordering;
            assert_ne!(
                crate::model::compactness_cmp(&w[1].compactness_key(), &w[0].compactness_key()),
                Ordering::Less,
                "candidates out of order"
            );
        }
        // Top-1 agrees with find_lcag.
        let best = find_lcag(&g, &idx, &l, &SearchConfig::default()).unwrap();
        assert_eq!(cags[0].root, best.root);
        assert_eq!(cags[0].nodes, best.nodes);
    }

    #[test]
    fn top_cags_roots_are_distinct() {
        let (g, idx) = figure1();
        let l = labels(&["upper dir", "taliban"]);
        let cags = find_top_cags(&g, &idx, &l, &SearchConfig::default(), 10).unwrap();
        let roots: FxHashSet<_> = cags.iter().map(|c| c.root).collect();
        assert_eq!(roots.len(), cags.len());
    }

    #[test]
    fn top_cags_zero_is_empty() {
        let (g, idx) = figure1();
        let l = labels(&["taliban"]);
        assert!(find_top_cags(&g, &idx, &l, &SearchConfig::default(), 0)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn lemma2_pairwise_distance_bound() {
        // Every pair of embedding nodes is within 2·d(G*) in the embedding
        // (via the root), hence also in the graph.
        let (g, idx) = figure1();
        let l = labels(&["upper dir", "swat valley", "pakistan", "taliban"]);
        let e = find_lcag(&g, &idx, &l, &SearchConfig::default()).unwrap();
        let bound = 2 * e.depth();
        // BFS in the bidirected graph between all embedding node pairs.
        for &a in &e.nodes {
            let mut dist: FxHashMap<NodeId, u32> = FxHashMap::default();
            dist.insert(a, 0);
            let mut q = std::collections::VecDeque::from([a]);
            while let Some(v) = q.pop_front() {
                let dv = dist[&v];
                for ed in g.neighbors(v) {
                    dist.entry(ed.to).or_insert_with(|| {
                        q.push_back(ed.to);
                        dv + 1
                    });
                }
            }
            for &bn in &e.nodes {
                assert!(
                    dist[&bn] <= bound,
                    "nodes {a:?},{bn:?} exceed 2·depth bound"
                );
            }
        }
    }
}
