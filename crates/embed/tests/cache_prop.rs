//! Property tests: the two-tier [`EmbeddingCache`] is a pure
//! memoization — cached, warm-cached and uncached group embeddings are
//! bit-identical on randomized synthetic worlds, successes and errors
//! alike, for both models.

use proptest::prelude::*;

use newslink_embed::{
    find_lcag, find_tree_embedding, CachedModel, CommonAncestorGraph, EmbedError, EmbeddingCache,
    SearchConfig,
};
use newslink_kg::{synth, LabelIndex, NodeId, SynthConfig};

fn assert_same_graph(a: &CommonAncestorGraph, b: &CommonAncestorGraph) {
    assert_eq!(a.root, b.root, "root");
    assert_eq!(a.labels, b.labels, "labels");
    assert_eq!(a.distances, b.distances, "distances");
    assert_eq!(a.nodes, b.nodes, "nodes");
    assert_eq!(a.edges, b.edges, "edges");
    assert_eq!(a.sources, b.sources, "sources");
}

fn assert_same(
    a: &Result<CommonAncestorGraph, EmbedError>,
    b: &Result<CommonAncestorGraph, EmbedError>,
) {
    match (a, b) {
        (Ok(x), Ok(y)) => assert_same_graph(x, y),
        (Err(x), Err(y)) => assert_eq!(x, y, "error payload"),
        _ => panic!("cached/uncached disagree on success: {a:?} vs {b:?}"),
    }
}

/// Entity nodes worth naming in a query group.
fn entity_pool(world: &synth::SynthWorld) -> Vec<NodeId> {
    world
        .countries
        .iter()
        .chain(&world.provinces)
        .chain(&world.cities)
        .chain(&world.people)
        .chain(&world.organizations)
        .copied()
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cached_group_embedding_matches_uncached(
        seed in 0u64..64,
        picks in prop::collection::vec(any::<usize>(), 1..5),
        tight_budget in any::<bool>(),
    ) {
        let world = synth::generate(&SynthConfig::small(seed));
        let index = LabelIndex::build(&world.graph);
        let pool = entity_pool(&world);
        prop_assume!(!pool.is_empty());
        let labels: Vec<String> = picks
            .iter()
            .map(|&p| world.graph.label(pool[p % pool.len()]).to_string())
            .collect();

        // A binding settled budget must fall back to the uncached search
        // (timing-dependent), still bit-identically.
        let config = SearchConfig {
            max_settled: if tight_budget { 64 } else { 200_000 },
            ..SearchConfig::default()
        };
        let cache = EmbeddingCache::new(128, 128);

        for model in [CachedModel::Lcag, CachedModel::Tree] {
            let uncached = match model {
                CachedModel::Lcag => find_lcag(&world.graph, &index, &labels, &config),
                CachedModel::Tree => {
                    find_tree_embedding(&world.graph, &index, &labels, &config)
                }
            };
            let cold = cache.embed_group(&world.graph, &index, &labels, &config, model);
            assert_same(&cold, &uncached);
            let warm = cache.embed_group(&world.graph, &index, &labels, &config, model);
            assert_same(&warm, &uncached);
        }
        prop_assert!(cache.group_stats().hits >= 2, "warm pass must hit the memo");
    }

    #[test]
    fn distance_maps_are_shared_across_overlapping_groups(
        seed in 0u64..32,
        a in any::<usize>(),
        b in any::<usize>(),
        c in any::<usize>(),
    ) {
        let world = synth::generate(&SynthConfig::small(seed));
        let index = LabelIndex::build(&world.graph);
        let pool = entity_pool(&world);
        prop_assume!(pool.len() >= 3);
        let name = |i: usize| world.graph.label(pool[i % pool.len()]).to_string();
        // Two distinct groups sharing one entity.
        let g1 = vec![name(a), name(b)];
        let g2 = vec![name(a), name(c)];
        prop_assume!(g1 != g2);

        let config = SearchConfig::default();
        let cache = EmbeddingCache::new(128, 128);
        let r1 = cache.embed_group(&world.graph, &index, &g1, &config, CachedModel::Lcag);
        let r2 = cache.embed_group(&world.graph, &index, &g2, &config, CachedModel::Lcag);
        assert_same(&r1, &find_lcag(&world.graph, &index, &g1, &config));
        assert_same(&r2, &find_lcag(&world.graph, &index, &g2, &config));
        // Both groups consult per-label distance maps; the shared label's
        // map is computed at most once.
        let d = cache.distance_stats();
        prop_assert!(d.lookups() == 0 || d.misses <= 3, "shared label recomputed: {d:?}");
    }
}
