//! `newslink-serve`: an HTTP search service over the NewsLink engine.
//!
//! The serving layer the paper's system demo implies but never details:
//! a small, dependency-free HTTP/1.1 server (plain `std::net`, no async
//! runtime — the offline build rules out tokio) that exposes the
//! engine's request-based search API over real TCP:
//!
//! The wire surface is versioned under `/v1/`:
//!
//! | Endpoint                | Body                        | Answer |
//! |-------------------------|-----------------------------|--------|
//! | `POST /v1/search`       | a [`SearchRequest`] as JSON | the `SearchResponse` (hits, timers, cache info, explanations) |
//! | `POST /v1/search/batch` | `{"requests": [...]}`       | the `BatchResponse` |
//! | `POST /v1/docs`         | `{"text": "..."}`           | `{"id": n, "index": {...}}` — seal a one-doc segment, compact if needed |
//! | `DELETE /v1/docs/<id>`  | —                           | tombstone a live document |
//! | `POST /v1/admin/snapshot` | —                         | checkpoint the durable store (snapshot + WAL reset); `400` without `--data-dir` |
//! | `GET /v1/healthz`       | —                           | `{"status":"ok"}`, or `{"status":"degraded",...}` after a lossy recovery |
//! | `GET /v1/metrics`       | —                           | counters, latency histogram, cache stats, segment/tombstone/compaction gauges, durability + storage gauges |
//!
//! The bare, unprefixed spellings (`/search`, …) remain as aliases for
//! one release: they answer identically but carry a
//! `Deprecation: true` response header. Every non-2xx response body is
//! the typed envelope `{"error": {"code": "...", "message": "..."}}`
//! (see [`router::error_code`] for the code vocabulary).
//!
//! Production shape, in miniature:
//!
//! - **Worker pool** — a fixed number of scoped handler threads
//!   borrowing one shared engine (and its caches), fed by the accept
//!   loop over a channel.
//! - **Admission control** — at most `workers + queue_depth`
//!   connections in flight; the rest are shed with `429` straight from
//!   the accept loop.
//! - **Deadlines** — a per-request budget (server default and/or the
//!   request's own `timeout_ms`) anchored at accept time and checked
//!   between pipeline stages; expiry yields `503` with a partial
//!   component-timer report.
//! - **Graceful shutdown** — a [`ServerHandle`] trigger stops the
//!   accept loop, drains every already-accepted request, then joins the
//!   pool.
//! - **Durability (opt-in)** — [`Server::run_durable`] takes a
//!   [`DurableState`] wrapping a [`newslink_core::DurableStore`]:
//!   mutations are write-ahead logged and fsynced before they are
//!   acknowledged, `POST /admin/snapshot` checkpoints, and the recovery
//!   report (quarantined segments, WAL replay counters) is surfaced on
//!   `/healthz` and `/metrics`.
//!
//! ```no_run
//! use newslink_core::{NewsLink, NewsLinkConfig};
//! use newslink_kg::{synth, LabelIndex, SynthConfig};
//! use newslink_serve::{ServeConfig, Server};
//!
//! let world = synth::generate(&SynthConfig::small(1));
//! let labels = LabelIndex::build(&world.graph);
//! let engine = NewsLink::new(&world.graph, &labels, NewsLinkConfig::default());
//! let index = parking_lot::RwLock::new(engine.index_corpus(&["Some news text.".to_string()]));
//!
//! let server = Server::bind("127.0.0.1:8080", ServeConfig::default()).unwrap();
//! println!("listening on {}", server.local_addr());
//! server.run(&engine, &index).unwrap(); // blocks until handle().shutdown()
//! ```
//!
//! [`SearchRequest`]: newslink_core::SearchRequest

// Handlers answer errors over the wire; a panic (or a lazy unwrap that
// becomes one) turns into a blanket 500 and loses the diagnosis.
#![warn(clippy::unwrap_used)]
#![deny(unsafe_code)]

pub mod cluster;
pub mod durable;
pub mod metrics;
pub mod protocol;
pub mod router;
pub mod server;

pub use cluster::{parse_shards, Cluster, FlagError, ResilienceConfig, SpecError};
pub use durable::DurableState;
pub use metrics::{KgStats, Route, ServerMetrics};
pub use protocol::{client, HttpRequest};
pub use router::{parse_search_request, RequestError};
pub use server::{ServeConfig, Server, ServerHandle};
