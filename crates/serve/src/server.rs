//! The TCP server: accept loop, fixed worker pool, admission control,
//! and graceful shutdown.
//!
//! Threading model: one accept loop (the caller's thread) plus
//! `workers` handler threads, all inside a [`std::thread::scope`] so the
//! workers may borrow the engine (a [`NewsLink`] borrows its graph and
//! cannot be moved into `'static` threads). Accepted connections travel
//! over an mpsc channel whose receiver the workers share behind a mutex.
//!
//! Admission control is a counting gate, not a lock: the accept loop is
//! the only incrementer of `in_flight`, workers decrement when done. The
//! capacity is `workers + queue_depth`; a connection arriving above it
//! is answered `429` inline from the accept loop without ever touching
//! the pool, so overload sheds in O(µs) instead of queueing unboundedly.
//!
//! Graceful shutdown: triggering the [`ServerHandle`] makes the accept
//! loop stop accepting and drop the channel sender. Workers keep
//! draining whatever was already queued (every accepted request gets its
//! response), then see the channel hang up and exit; the scope joins
//! them before [`Server::run`] returns.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use newslink_core::{NewsLink, NewsLinkIndex};
use newslink_util::ShutdownFlag;
use parking_lot::{Mutex, RwLock};

use crate::cluster::{dispatch_cluster, Cluster, ClusterContext};
use crate::durable::DurableState;
use crate::metrics::{Route, ServerMetrics};
use crate::protocol::{read_request, write_response, write_response_conn, write_response_with, HttpRequest, RecvError};
use crate::router::{dispatch, error_body, RequestContext, Routed};

/// Tunables for one server instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Handler threads. Each serves one connection at a time.
    pub workers: usize,
    /// Accepted connections allowed to wait beyond the ones being
    /// served; admission capacity is `workers + queue_depth`.
    pub queue_depth: usize,
    /// Default per-request deadline budget, anchored at accept time.
    /// Requests carrying their own `timeout_ms` get the tighter of the
    /// two. `None` = no server-imposed deadline.
    pub default_timeout_ms: Option<u64>,
    /// Largest accepted request body; bigger bodies are answered `413`.
    pub max_body_bytes: usize,
    /// Socket read timeout, so a stalled client cannot pin a worker.
    pub read_timeout_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_depth: 64,
            default_timeout_ms: None,
            max_body_bytes: 1 << 20,
            read_timeout_ms: 5_000,
        }
    }
}

impl ServeConfig {
    /// Set the worker count (min 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Set the admission queue depth.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Set the default deadline budget.
    pub fn with_default_timeout(mut self, budget: Duration) -> Self {
        self.default_timeout_ms = Some(u64::try_from(budget.as_millis()).unwrap_or(u64::MAX));
        self
    }

    /// Connections admitted at once (serving + queued).
    pub fn capacity(&self) -> usize {
        self.workers + self.queue_depth
    }
}

/// A clonable remote control for a running server: its address plus the
/// shutdown trigger.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: ShutdownFlag,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begin graceful shutdown; returns `true` on the first call.
    pub fn shutdown(&self) -> bool {
        self.shutdown.trigger()
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.is_triggered()
    }
}

/// One accepted connection on its way to a worker.
struct Job {
    stream: TcpStream,
    accepted: Instant,
}

/// A bound (but not yet running) HTTP search server.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    config: ServeConfig,
    shutdown: ShutdownFlag,
    metrics: Arc<ServerMetrics>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    pub fn bind(addr: &str, config: ServeConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        // Nonblocking accept lets the loop poll the shutdown flag.
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        Ok(Self {
            listener,
            addr,
            config,
            shutdown: ShutdownFlag::new(),
            metrics: Arc::new(ServerMetrics::new()),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// This server's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The live metrics registry (shared with the handler threads).
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// A handle for triggering shutdown from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.addr,
            shutdown: self.shutdown.clone(),
        }
    }

    /// Serve until the handle triggers shutdown, then drain and return.
    /// Blocks the calling thread; spawns `config.workers` scoped handler
    /// threads that borrow `engine` and `index`. The index sits behind a
    /// reader-writer lock: searches share the read side, `/docs`
    /// mutations briefly take the write side to seal a new segment or
    /// tombstone a document.
    pub fn run(&self, engine: &NewsLink<'_>, index: &RwLock<NewsLinkIndex>) -> io::Result<()> {
        self.run_durable(engine, index, None)
    }

    /// Like [`run`](Self::run), but with durability wiring: when
    /// `durable` is present, `/docs` mutations are write-ahead logged
    /// before they are acknowledged, `POST /admin/snapshot` checkpoints
    /// the store, and `/healthz` + `/metrics` surface the recovery
    /// report.
    pub fn run_durable(
        &self,
        engine: &NewsLink<'_>,
        index: &RwLock<NewsLinkIndex>,
        durable: Option<&DurableState>,
    ) -> io::Result<()> {
        self.serve_with(|request, accepted, in_flight| {
            let ctx = RequestContext {
                engine,
                index,
                config: &self.config,
                metrics: &self.metrics,
                accepted,
                in_flight,
                durable,
            };
            dispatch(request, &ctx)
        })
    }

    /// Serve in *router* mode: no local corpus — every `/v1/search`
    /// scatters across the cluster's shard groups and the merged answer
    /// comes back bit-identical to a single process searching the union
    /// (see [`crate::cluster`]). A background thread probes every
    /// replica's `/healthz` on the cluster's configured cadence
    /// (`--probe-interval-ms`); it stops when the server's shutdown
    /// handle triggers.
    pub fn run_router(&self, engine: &NewsLink<'_>, cluster: &Cluster) -> io::Result<()> {
        std::thread::scope(|scope| {
            let stop = self.shutdown.clone();
            scope.spawn(move || cluster.probe_loop(&stop));
            let result = self.serve_with(|request, accepted, in_flight| {
                let ctx = ClusterContext {
                    cluster,
                    engine,
                    config: &self.config,
                    metrics: &self.metrics,
                    accepted,
                    in_flight,
                };
                dispatch_cluster(request, &ctx)
            });
            // serve_with returns only once shutdown triggered (or the
            // listener failed, which also triggers it), so the prober
            // exits and the scope joins it.
            self.shutdown.trigger();
            result
        })
    }

    /// The serving machinery behind every mode: accept loop, worker
    /// pool, admission gate, graceful drain — parameterized over the
    /// per-request handler. [`run_durable`](Self::run_durable) plugs in
    /// the standalone dispatcher; router mode plugs in the
    /// scatter-gather one. The handler receives the parsed request, the
    /// deadline anchor (accept time for a connection's first request,
    /// arrival time for later requests on a kept-alive connection) and
    /// the in-flight gauge.
    pub fn serve_with<H>(&self, handler: H) -> io::Result<()>
    where
        H: Fn(&HttpRequest, Instant, usize) -> Routed + Sync,
    {
        let capacity = self.config.capacity().max(1);
        let in_flight = AtomicUsize::new(0);
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Mutex::new(receiver);

        std::thread::scope(|scope| {
            for _ in 0..self.config.workers.max(1) {
                let receiver = &receiver;
                let in_flight = &in_flight;
                let handler = &handler;
                scope.spawn(move || loop {
                    // Hold the lock only while waiting; release before
                    // handling so peers can pick up the next job.
                    let job = receiver.lock().recv();
                    let Ok(job) = job else {
                        break; // sender dropped and queue drained
                    };
                    let gauge = in_flight.load(Ordering::Relaxed);
                    self.handle_connection(job, handler, gauge);
                    in_flight.fetch_sub(1, Ordering::Release);
                });
            }

            // Accept loop: poll for connections and the shutdown flag.
            while !self.shutdown.is_triggered() {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        let admitted = in_flight.fetch_add(1, Ordering::Acquire) < capacity;
                        if admitted {
                            let job = Job {
                                stream,
                                accepted: Instant::now(),
                            };
                            if sender.send(job).is_err() {
                                break; // workers gone; nothing left to do
                            }
                        } else {
                            in_flight.fetch_sub(1, Ordering::Release);
                            self.metrics.observe_shed();
                            shed(stream);
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        // Listener failure: shut the pool down cleanly
                        // before surfacing the error.
                        self.shutdown.trigger();
                        drop(sender);
                        return Err(e);
                    }
                }
            }
            // Graceful drain: stop accepting, let queued jobs finish.
            drop(sender);
            Ok(())
        })
    }

    /// Serve one connection end to end. A client that sent
    /// `Connection: keep-alive` gets its connection back for the next
    /// request (each anchored at its own arrival); everyone else gets
    /// the classic one-request `Connection: close` exchange. A
    /// kept-alive connection occupies its worker (and its admission
    /// slot) until the client closes it or stalls past the read
    /// timeout — which is exactly the accounting admission control
    /// wants, since the connection really is holding a worker.
    fn handle_connection<H>(&self, job: Job, handler: &H, in_flight: usize)
    where
        H: Fn(&HttpRequest, Instant, usize) -> Routed + Sync,
    {
        let mut stream = job.stream;
        let _ = stream.set_nonblocking(false);
        // Responses go out in one write; disable Nagle anyway so no
        // future multi-write path can trip over delayed ACKs.
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(self.config.read_timeout_ms.max(1))));
        let mut anchor = job.accepted;
        let mut first = true;
        loop {
            let request = match read_request(&mut stream, self.config.max_body_bytes) {
                Ok(request) => {
                    // The first request's budget is anchored at accept
                    // (queue wait counts against it); later requests on a
                    // kept-alive connection anchor at their own arrival.
                    if !first {
                        anchor = Instant::now();
                    }
                    first = false;
                    request
                }
                Err(RecvError::Closed) => return,
                Err(RecvError::BadRequest(msg)) => {
                    let _ = write_response(&mut stream, 400, &error_body(400, &msg));
                    self.metrics.observe(Route::Other, 400, anchor.elapsed());
                    return;
                }
                Err(RecvError::TooLarge) => {
                    let _ =
                        write_response(&mut stream, 413, &error_body(413, "request body too large"));
                    self.metrics.observe(Route::Other, 413, anchor.elapsed());
                    return;
                }
                Err(RecvError::Io(_)) => {
                    // Read timeout or reset mid-request; the peer is gone.
                    self.metrics.observe(Route::Other, 500, anchor.elapsed());
                    return;
                }
            };
            // A panic inside a handler must not take down the pool:
            // answer 500 and keep serving.
            let routed = catch_unwind(AssertUnwindSafe(|| handler(&request, anchor, in_flight)));
            let (route, status, body, deprecated) = match routed {
                Ok(r) => (r.route, r.status, r.body, r.deprecated),
                Err(_) => (Route::Other, 500, error_body(500, "internal error"), false),
            };
            // Legacy unversioned paths still answer, but tell the client
            // to move to `/v1/...`.
            let extra: &[(&str, &str)] = if deprecated {
                &[("Deprecation", "true")]
            } else {
                &[]
            };
            let keep = request.keep_alive;
            if write_response_conn(&mut stream, status, extra, &body, keep).is_err() {
                self.metrics.observe(route, status, anchor.elapsed());
                return;
            }
            self.metrics.observe(route, status, anchor.elapsed());
            if !keep || self.shutdown.is_triggered() {
                return;
            }
        }
    }
}

/// Answer an over-capacity connection `429` without handling its request.
/// `Retry-After` tells well-behaved clients how long to back off before
/// reconnecting.
fn shed(mut stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    let _ = write_response_with(
        &mut stream,
        429,
        &[("Retry-After", "1")],
        &error_body(429, "server at capacity, retry later"),
    );
    // Closing with unread request bytes in the socket makes the kernel
    // send RST, which can destroy the 429 before the client reads it.
    // Signal end-of-response, then briefly drain what the client sent —
    // bounded reads only, since this runs on the accept thread.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut sink = [0u8; 4096];
    for _ in 0..4 {
        match io::Read::read(&mut stream, &mut sink) {
            Ok(n) if n > 0 => {}
            _ => break,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_and_builders() {
        let c = ServeConfig::default();
        assert!(c.workers >= 1);
        assert_eq!(c.capacity(), c.workers + c.queue_depth);
        let c = ServeConfig::default()
            .with_workers(0)
            .with_queue_depth(2)
            .with_default_timeout(Duration::from_millis(750));
        assert_eq!(c.workers, 1, "workers floor at one");
        assert_eq!(c.capacity(), 3);
        assert_eq!(c.default_timeout_ms, Some(750));
    }

    #[test]
    fn bind_ephemeral_and_handle_shutdown() {
        let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
        assert_ne!(server.local_addr().port(), 0);
        let handle = server.handle();
        assert_eq!(handle.addr(), server.local_addr());
        assert!(!handle.is_shutdown());
        assert!(handle.shutdown(), "first trigger wins");
        assert!(!handle.shutdown(), "second trigger is a no-op");
        assert!(handle.is_shutdown());
    }
}
