//! Request routing: map parsed HTTP requests onto the engine's
//! request-based search API.
//!
//! The wire format *is* [`SearchRequest`]'s serde form — there is no
//! parallel DTO layer. Incoming JSON is validated (object, known keys,
//! required `"query"`), merged over a default request, and handed to the
//! derived `Deserialize` impl, so clients may omit any optional field
//! and the engine's defaults apply.
//!
//! Deadlines are anchored at *accept* time: the server's default budget
//! starts counting the moment the connection is accepted, so time spent
//! queued behind the worker pool eats into it. A request that also
//! carries its own `timeout_ms` gets the tighter of the two.

use std::time::Instant;

use newslink_core::{DocId, NewsLink, NewsLinkIndex, SearchRequest};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize, Value};

use crate::metrics::{Route, ServerMetrics};
use crate::protocol::HttpRequest;
use crate::server::ServeConfig;

/// Everything a worker needs to answer one request.
pub struct RequestContext<'a, 'g> {
    /// The shared engine.
    pub engine: &'a NewsLink<'g>,
    /// The corpus index being served. Searches take the read lock and
    /// fan out over its segments; `/docs` mutations take the write lock
    /// for the (short) seal-and-compact window.
    pub index: &'a RwLock<NewsLinkIndex>,
    /// Server configuration (default deadline budget).
    pub config: &'a ServeConfig,
    /// Server counters, for the `/metrics` document.
    pub metrics: &'a ServerMetrics,
    /// When the connection was accepted (deadline anchor).
    pub accepted: Instant,
    /// Current admission gauge, for the `/metrics` document.
    pub in_flight: usize,
}

/// The routing outcome: which route matched, the status, and the body.
pub struct Routed {
    /// Route label for metrics.
    pub route: Route,
    /// HTTP status code.
    pub status: u16,
    /// JSON response body.
    pub body: String,
}

fn routed(route: Route, status: u16, body: String) -> Routed {
    Routed {
        route,
        status,
        body,
    }
}

/// A JSON error body: `{"error": msg}` with proper escaping.
pub fn error_body(msg: &str) -> String {
    Value::Object(vec![("error".into(), Value::String(msg.into()))]).to_compact_string()
}

/// Dispatch one parsed request to its handler.
pub fn dispatch(req: &HttpRequest, ctx: &RequestContext<'_, '_>) -> Routed {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => routed(
            Route::Healthz,
            200,
            Value::Object(vec![("status".into(), Value::String("ok".into()))])
                .to_compact_string(),
        ),
        ("GET", "/metrics") => {
            let index_stats = ctx.index.read().stats();
            let snap = ctx
                .metrics
                .snapshot(ctx.in_flight, &ctx.engine.cache_stats(), index_stats);
            routed(Route::Metrics, 200, snap.to_compact_string())
        }
        ("POST", "/search") => handle_search(req, ctx),
        ("POST", "/search/batch") => handle_batch(req, ctx),
        ("POST", "/docs") => handle_insert(req, ctx),
        ("DELETE", path) if path.strip_prefix("/docs/").is_some() => handle_delete(path, ctx),
        (_, "/healthz" | "/metrics" | "/search" | "/search/batch" | "/docs") => routed(
            Route::Other,
            405,
            error_body(&format!("method {} not allowed here", req.method)),
        ),
        (_, path) if path.strip_prefix("/docs/").is_some() => routed(
            Route::Other,
            405,
            error_body(&format!("method {} not allowed here", req.method)),
        ),
        (_, path) => routed(Route::Other, 404, error_body(&format!("no route {path}"))),
    }
}

/// `POST /search`: one [`SearchRequest`] in, one serialized
/// `SearchResponse` out. A response whose deadline expired mid-pipeline
/// comes back as `503` but still carries the partial timer report.
fn handle_search(req: &HttpRequest, ctx: &RequestContext<'_, '_>) -> Routed {
    let request = match parse_body(&req.body).and_then(|v| request_from_value(&v)) {
        Ok(r) => apply_deadline(r, ctx),
        Err(msg) => return routed(Route::Search, 400, error_body(&msg)),
    };
    let response = ctx.engine.execute(&ctx.index.read(), &request);
    let status = if response.timed_out { 503 } else { 200 };
    routed(Route::Search, status, response.serialize_value().to_compact_string())
}

/// `POST /search/batch`: `{"requests": [...]}` in, a serialized
/// `BatchResponse` out. Individual deadline expiries are reported per
/// response; the batch itself is `200` as long as it parsed.
fn handle_batch(req: &HttpRequest, ctx: &RequestContext<'_, '_>) -> Routed {
    let requests = match parse_batch(&req.body, ctx) {
        Ok(r) => r,
        Err(msg) => return routed(Route::Batch, 400, error_body(&msg)),
    };
    let response = ctx.engine.execute_batch(&ctx.index.read(), &requests);
    routed(Route::Batch, 200, response.serialize_value().to_compact_string())
}

/// `POST /docs`: `{"text": "..."}` in, `{"id": n, "index": {...}}` out.
/// The new document lands in its own sealed segment; if that pushes the
/// segment count past the engine's `max_segments`, the insert also runs
/// compaction before the write lock is released.
fn handle_insert(req: &HttpRequest, ctx: &RequestContext<'_, '_>) -> Routed {
    let text = match parse_insert_body(&req.body) {
        Ok(t) => t,
        Err(msg) => return routed(Route::Docs, 400, error_body(&msg)),
    };
    let mut index = ctx.index.write();
    let id = ctx.engine.insert_document(&mut index, &text);
    let stats = index.stats();
    drop(index);
    let body = Value::Object(vec![
        ("id".into(), Value::Number(serde::Number::from_i128(id.0 as i128))),
        ("index".into(), index_stats_value(stats)),
    ]);
    routed(Route::Docs, 200, body.to_compact_string())
}

/// `DELETE /docs/<id>`: tombstone a live document. Unknown or already
/// deleted ids answer `404`; the id itself must be a decimal integer.
fn handle_delete(path: &str, ctx: &RequestContext<'_, '_>) -> Routed {
    let raw = path.strip_prefix("/docs/").unwrap_or_default();
    let Ok(id) = raw.parse::<u32>() else {
        return routed(Route::Docs, 400, error_body(&format!("bad document id {raw:?}")));
    };
    let mut index = ctx.index.write();
    let deleted = ctx.engine.delete_document(&mut index, DocId(id));
    let stats = index.stats();
    drop(index);
    if !deleted {
        return routed(Route::Docs, 404, error_body(&format!("no live document {id}")));
    }
    let body = Value::Object(vec![
        ("deleted".into(), Value::Number(serde::Number::from_i128(id as i128))),
        ("index".into(), index_stats_value(stats)),
    ]);
    routed(Route::Docs, 200, body.to_compact_string())
}

/// Render [`newslink_core::IndexStats`] as a JSON object (shared by the
/// `/docs` responses and sanity-checked against the `/metrics` gauges).
fn index_stats_value(stats: newslink_core::IndexStats) -> Value {
    let num = |n: u64| Value::Number(serde::Number::from_i128(n as i128));
    Value::Object(vec![
        ("docs".into(), num(stats.docs as u64)),
        ("segments".into(), num(stats.segments as u64)),
        ("tombstones".into(), num(stats.tombstones as u64)),
        ("compactions".into(), num(stats.compactions)),
    ])
}

/// Validate a `POST /docs` body: an object whose only field is a string
/// `"text"`.
fn parse_insert_body(body: &str) -> Result<String, String> {
    let v = parse_body(body)?;
    let obj = v
        .as_object()
        .ok_or_else(|| "insert body must be a JSON object".to_string())?;
    for (key, _) in obj {
        if key != "text" {
            return Err(format!("unknown field {key:?} (expected \"text\")"));
        }
    }
    v.get("text")
        .and_then(|t| t.as_str())
        .map(str::to_string)
        .ok_or_else(|| "missing required string field \"text\"".to_string())
}

fn parse_body(body: &str) -> Result<Value, String> {
    serde_json::from_str(body).map_err(|e| format!("invalid JSON: {e}"))
}

fn parse_batch(body: &str, ctx: &RequestContext<'_, '_>) -> Result<Vec<SearchRequest>, String> {
    let v = parse_body(body)?;
    let obj = v
        .as_object()
        .ok_or_else(|| "batch body must be a JSON object".to_string())?;
    for (key, _) in obj {
        if key != "requests" {
            return Err(format!("unknown field {key:?} (expected \"requests\")"));
        }
    }
    let items = v
        .get("requests")
        .and_then(|r| r.as_array())
        .ok_or_else(|| "missing required array field \"requests\"".to_string())?;
    items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            request_from_value(item)
                .map(|r| apply_deadline(r, ctx))
                .map_err(|msg| format!("requests[{i}]: {msg}"))
        })
        .collect()
}

/// Tighten `request`'s deadline with the server default, both anchored at
/// accept time: `execute` starts its own clock, so hand it only what is
/// left of the accept-anchored budget — time spent queued behind the
/// worker pool counts against the request. A budget that is already gone
/// becomes a zero remainder: the request still runs up to the first
/// inter-stage gate and comes back `timed_out` with its partial timer,
/// the same shape as any other expiry.
fn apply_deadline(mut request: SearchRequest, ctx: &RequestContext<'_, '_>) -> SearchRequest {
    let budget_ms = match (request.timeout_ms, ctx.config.default_timeout_ms) {
        (Some(r), Some(s)) => Some(r.min(s)),
        (r, s) => r.or(s),
    };
    if let Some(budget_ms) = budget_ms {
        let elapsed_ms = ctx.accepted.elapsed().as_millis() as u64;
        request.timeout_ms = Some(budget_ms.saturating_sub(elapsed_ms));
    }
    request
}

/// Build a [`SearchRequest`] from user JSON: must be an object with a
/// string `"query"`; all other fields are optional and unknown fields
/// are rejected. Omitted fields fall back to [`SearchRequest::new`]'s
/// defaults by merging the user object over the serialized default
/// request, keeping the derived serde impl as the single wire format.
pub fn request_from_value(v: &Value) -> Result<SearchRequest, String> {
    const KNOWN: [&str; 6] = ["query", "k", "beta", "explain", "use_cache", "timeout_ms"];
    let obj = v
        .as_object()
        .ok_or_else(|| "request must be a JSON object".to_string())?;
    for (key, _) in obj {
        if !KNOWN.contains(&key.as_str()) {
            return Err(format!("unknown field {key:?}"));
        }
    }
    let query = v
        .get("query")
        .and_then(|q| q.as_str())
        .ok_or_else(|| "missing required string field \"query\"".to_string())?;
    let mut merged = SearchRequest::new(query).serialize_value();
    let Value::Object(pairs) = &mut merged else {
        unreachable!("a derived struct serializes as an object");
    };
    for (key, user_value) in obj {
        if key == "query" {
            continue;
        }
        let value = if key == "explain" {
            explain_value(user_value)?
        } else {
            user_value.clone()
        };
        if let Some(slot) = pairs.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        }
    }
    let request = SearchRequest::deserialize_value(&merged).map_err(|e| e.to_string())?;
    if let Some(beta) = request.beta {
        if !(0.0..=1.0).contains(&beta) {
            return Err(format!("beta must be in [0, 1], got {beta}"));
        }
    }
    Ok(request)
}

/// Normalize the `"explain"` field: `null`/`false` = off, `true` = on
/// with defaults, an object = merged over the default options.
fn explain_value(v: &Value) -> Result<Value, String> {
    let defaults = newslink_core::ExplainOptions::default();
    match v {
        Value::Null | Value::Bool(false) => Ok(Value::Null),
        Value::Bool(true) => Ok(defaults.serialize_value()),
        Value::Object(pairs) => {
            let mut merged = defaults.serialize_value();
            let Value::Object(slots) = &mut merged else {
                unreachable!("ExplainOptions serializes as an object");
            };
            for (key, value) in pairs {
                let Some(slot) = slots.iter_mut().find(|(k, _)| k == key) else {
                    return Err(format!("unknown explain field {key:?}"));
                };
                slot.1 = value.clone();
            }
            Ok(merged)
        }
        _ => Err("explain must be null, a bool, or an options object".to_string()),
    }
}

/// Convenience used by tests and the example: parse body text straight
/// into a request.
pub fn parse_search_request(body: &str) -> Result<SearchRequest, String> {
    parse_body(body).and_then(|v| request_from_value(&v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_request_gets_defaults() {
        let r = parse_search_request(r#"{"query": "taliban in kunar"}"#).unwrap();
        assert_eq!(r, SearchRequest::new("taliban in kunar"));
    }

    #[test]
    fn full_request_round_trips() {
        let r = parse_search_request(
            r#"{"query": "q", "k": 3, "beta": 0.5, "explain": {"max_len": 2, "max_paths": 1},
               "use_cache": false, "timeout_ms": 250}"#,
        )
        .unwrap();
        assert_eq!(r.k, 3);
        assert_eq!(r.beta, Some(0.5));
        let e = r.explain.unwrap();
        assert_eq!((e.max_len, e.max_paths), (2, 1));
        assert!(!r.use_cache);
        assert_eq!(r.timeout_ms, Some(250));
    }

    #[test]
    fn explain_bool_and_partial_object() {
        let r = parse_search_request(r#"{"query": "q", "explain": true}"#).unwrap();
        assert_eq!(r.explain, Some(newslink_core::ExplainOptions::default()));
        let r = parse_search_request(r#"{"query": "q", "explain": false}"#).unwrap();
        assert!(r.explain.is_none());
        let r = parse_search_request(r#"{"query": "q", "explain": {"max_paths": 2}}"#).unwrap();
        let e = r.explain.unwrap();
        assert_eq!(e.max_paths, 2);
        assert_eq!(e.max_len, newslink_core::ExplainOptions::default().max_len);
    }

    #[test]
    fn rejects_bad_requests() {
        assert!(parse_search_request("not json").is_err());
        assert!(parse_search_request(r#"["query"]"#).is_err());
        assert!(parse_search_request(r#"{"k": 3}"#).is_err(), "query is required");
        assert!(parse_search_request(r#"{"query": 7}"#).is_err(), "query must be a string");
        assert!(parse_search_request(r#"{"query": "q", "knn": 3}"#).is_err(), "unknown field");
        assert!(parse_search_request(r#"{"query": "q", "beta": 1.5}"#).is_err(), "beta range");
        assert!(
            parse_search_request(r#"{"query": "q", "explain": {"depth": 3}}"#).is_err(),
            "unknown explain field"
        );
    }

    #[test]
    fn error_body_escapes() {
        assert_eq!(error_body("bad \"x\""), r#"{"error":"bad \"x\""}"#);
    }
}
